"""Serving benchmark: ingest latency percentiles under an open-loop sweep.

The front-door's acceptance story is latency at offered rate, not
throughput on a materialized stream: an open-loop generator
(:mod:`repro.serve.loadgen`) offers the RFID workload at a sweep of
constant rates over real sockets, and each point records

* client ack p50/p95/p99 (send -> 202/429),
* server ingest->decision and ingest->delivery p50/p95/p99 (the
  service's fine-bucket histograms, one monotonic clock),
* shed rate and drain report (``lost`` must be 0 at every point).

Rows merge into ``benchmarks/out/BENCH_serve.json`` under
``serve_open_loop`` via the engine's fail-soft ``write_bench_json``
(a corrupt existing file is reset with a warning, never a crash --
asserted here against a deliberately corrupted file).

Latency-threshold checks are **fail-soft**: a loaded CI machine warns
(so drift is visible in the log) instead of failing the build;
structural invariants -- zero loss, every context decided, shedding
accounted -- are asserted hard.
"""

import pathlib
import warnings

from conftest import write_report

from repro.engine import write_bench_json
from repro.serve.loadgen import format_sweep, run_sweep

OUT_JSON = pathlib.Path(__file__).parent / "out" / "BENCH_serve.json"

RATES = (500.0, 1500.0, 4000.0)
N_CONTEXTS = 300

#: Fail-soft ceiling on server-side ingest->decision p95 at the lowest
#: offered rate (generous: the point is visibility, not flakes).
P95_DECISION_CEILING_S = 0.25


def test_open_loop_latency_sweep():
    record = run_sweep(
        "rfid",
        RATES,
        n_contexts=N_CONTEXTS,
        err_rate=0.3,
        seed=1,
        shards=2,
        strategy="drop-bad",
        json_path=str(OUT_JSON),
    )

    assert [row["offered_rate"] for row in record["rows"]] == list(RATES)
    for row in record["rows"]:
        # Hard invariants: open-loop sent everything, nothing was lost,
        # and the decision histogram saw every admitted context.
        assert row["sent"] == N_CONTEXTS
        assert row["errors"] == 0
        assert row["drain"]["lost"] == 0
        decision = row["server"]["ingest_to_decision_s"]
        assert decision["count"] == row["accepted"]
        assert decision["p50"] <= decision["p95"] <= decision["p99"]

    write_report("serve_open_loop", format_sweep(record))

    p95 = record["rows"][0]["server"]["ingest_to_decision_s"]["p95"]
    if p95 > P95_DECISION_CEILING_S:
        warnings.warn(
            f"ingest->decision p95 at {RATES[0]:.0f}/s is {p95 * 1e3:.1f}ms "
            f"(soft ceiling {P95_DECISION_CEILING_S * 1e3:.0f}ms) -- "
            "serving latency regression?",
            stacklevel=1,
        )


def test_overload_point_sheds_explicitly():
    """With a server-side admission rate far below the offered rate,
    the excess must be shed with reason ``rate`` -- not queued into
    divergent latency, not lost."""
    from repro.serve import ServeConfig

    record = run_sweep(
        "rfid",
        (2000.0,),
        n_contexts=200,
        shards=2,
        serve_config=ServeConfig(rate=200.0, burst=20.0),
        json_path=None,
    )
    row = record["rows"][0]
    assert row["shed"] > 0
    assert row["shed_rate"] > 0.3
    assert row["drain"]["lost"] == 0
    shed_reasons = row["server"]["admission"]["shed"]
    assert shed_reasons["rate"] == row["shed"]
    # Admitted contexts all decided despite the overload.
    decision = row["server"]["ingest_to_decision_s"]
    assert decision["count"] == row["accepted"]


def test_bench_json_is_fail_soft_on_corruption(tmp_path):
    """The BENCH_serve.json merge path resets a corrupt file loudly
    instead of crashing the benchmark run."""
    path = tmp_path / "BENCH_serve.json"
    path.write_text("{not json at all", encoding="utf-8")
    document = write_bench_json(
        str(path), "serve_open_loop", {"rows": [], "rates": []}
    )
    assert "serve_open_loop" in document
    # And a second merge under another key preserves the first.
    write_bench_json(str(path), "other_workload", {"x": 1})
    import json

    final = json.loads(path.read_text())
    assert set(final) >= {"serve_open_loop", "other_workload"}
