"""Section 5.3 ablation: impact of the time window on drop-bad.

The paper argues that with a zero window drop-bad degenerates to
drop-latest-like behaviour and that the window is what buys count
evidence; it leaves the quantitative study as future work.  This
benchmark performs it: drop-bad vs drop-latest context-use rates as
the use window grows.
"""

from conftest import write_report

from repro.apps.rfid_anomalies import RFIDAnomaliesApp
from repro.experiments.ablations import run_window_ablation
from repro.experiments.report import format_window_ablation

WINDOWS = (0, 2, 5, 10, 20, 40)


def _run(groups: int):
    return run_window_ablation(
        RFIDAnomaliesApp(),
        windows=WINDOWS,
        err_rate=0.3,
        groups=groups,
        workload_kwargs={"items": 10},
    )


def test_window_ablation(benchmark, bench_groups):
    points = benchmark.pedantic(
        _run, args=(bench_groups,), rounds=1, iterations=1
    )
    write_report(
        "sec5_3_window_ablation",
        "Section 5.3 -- use-window ablation (RFID, err_rate 30%)\n"
        + format_window_ablation(points),
    )

    by_window = {p.window: p for p in points}
    # Drop-latest is window-invariant (decides at detection).
    latest_rates = [p.drop_latest_use_rate for p in points]
    assert max(latest_rates) - min(latest_rates) < 3.0
    # A grown window must help drop-bad substantially vs window 0.
    assert (
        by_window[WINDOWS[-1]].drop_bad_use_rate
        > by_window[0].drop_bad_use_rate
    )
    # The degeneration claim, read quantitatively: at zero window
    # drop-bad has collected no count evidence, so its edge over
    # drop-latest must be far below the full-window edge (it need not
    # be exactly zero -- used contexts leaving the checking scope
    # already differentiates the two implementations slightly).
    assert (
        by_window[0].advantage
        < 0.6 * by_window[WINDOWS[-1]].advantage + 1.0
    )
    assert by_window[WINDOWS[-1]].advantage > 0.0
    # The count evidence is what the window buys: removal precision
    # must grow substantially from window 0 to the full window.
    assert (
        by_window[WINDOWS[-1]].drop_bad_precision
        > by_window[0].drop_bad_precision + 0.2
    )
