"""Shared benchmark configuration.

Every figure/table of the paper's evaluation has one benchmark module
that regenerates it and prints the series.  Scale is controlled by
environment variables so the full paper-scale grid (20 groups per
point, 320 groups per application) can be requested without editing
code:

    REPRO_BENCH_GROUPS=20 pytest benchmarks/ --benchmark-only -s

The default (5 groups per point) reproduces the figures' shape in a
few minutes.  Regenerated tables are also written to
``benchmarks/out/`` for inspection.
"""

import os
import pathlib

import pytest

#: Groups per (strategy, error-rate) point; the paper uses 20.
BENCH_GROUPS = int(os.environ.get("REPRO_BENCH_GROUPS", "5"))

#: Where regenerated tables are written.
OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_report(name: str, text: str) -> None:
    """Persist a regenerated table and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def bench_groups() -> int:
    return BENCH_GROUPS
