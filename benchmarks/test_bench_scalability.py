"""Substrate benchmark: middleware scalability with workload size.

The paper ran on a single P4 machine and argued resolution is cheap
enough to live in the middleware; this benchmark quantifies how the
full pipeline (incremental detection + drop-bad resolution + situation
evaluation) scales as the number of concurrently tracked items grows,
on the RFID workload.
"""

import pytest

from conftest import write_report

from repro.apps.rfid_anomalies import RFIDAnomaliesApp
from repro.core.strategy import make_strategy
from repro.experiments.harness import run_group
from repro.experiments.report import format_table

APP = RFIDAnomaliesApp()
SIZES = (5, 10, 20, 40)
_STREAMS = {
    size: APP.generate_workload(0.3, seed=900 + size, items=size)
    for size in SIZES
}


@pytest.mark.parametrize("items", SIZES)
def test_pipeline_scalability(benchmark, items):
    contexts = _STREAMS[items]

    def run():
        return run_group(
            APP,
            make_strategy("drop-bad"),
            contexts,
            err_rate=0.3,
            seed=900 + items,
            use_window=20,
        )

    metrics = benchmark.pedantic(run, rounds=2, iterations=1)
    assert metrics.contexts_total == len(contexts)
    # Quality must not degrade with scale: precision stays meaningful.
    assert metrics.removal_precision > 0.5


def test_scalability_summary(benchmark):
    """One pass over all sizes, reporting contexts/second."""
    import time

    def run():
        rows = []
        for items in SIZES:
            contexts = _STREAMS[items]
            start = time.perf_counter()
            run_group(
                APP,
                make_strategy("drop-bad"),
                contexts,
                err_rate=0.3,
                seed=900 + items,
                use_window=20,
            )
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    items,
                    len(contexts),
                    f"{elapsed * 1000:7.1f}",
                    f"{len(contexts) / elapsed:8.0f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "substrate_scalability",
        "Substrate -- pipeline scalability (RFID, drop-bad, err 30%)\n"
        + format_table(
            ["items", "contexts", "ms/run", "ctx/sec"], rows
        ),
    )
    # Throughput should not collapse by more than ~8x from the
    # smallest to the largest workload (detection is incremental, but
    # the live pool grows with concurrent items).
    smallest = float(rows[0][3])
    largest = float(rows[-1][3])
    assert largest > smallest / 8.0
