"""Engine benchmark: sharded resolution throughput per shard count.

The sharded engine's scope analysis splits independent constraint
families onto separate shards, so each arrival pays pool-scan and
checking-scope costs proportional to its own family instead of the
whole deployment.  This benchmark measures contexts/second at 1, 2 and
4 shards on the scalability workload (4 independent scope groups), and
records the numbers machine-readably into
``benchmarks/out/BENCH_engine.json``.

Acceptance: 4 shards must be at least 2x the single-shard throughput.
Decisions are asserted identical across all shard counts inside the
runner -- sharding that changed any outcome would abort the benchmark.
"""

import pathlib

from conftest import write_report

from repro.engine import write_bench_json
from repro.engine.workload import run_scalability_bench

OUT_JSON = pathlib.Path(__file__).parent / "out" / "BENCH_engine.json"
SHARD_COUNTS = (1, 2, 4)
N_CONTEXTS = 2000


def test_engine_scalability(benchmark):
    def run():
        return run_scalability_bench(
            SHARD_COUNTS,
            n_contexts=N_CONTEXTS,
            use_window=20,
            strategy="drop-latest",
            mode="inline",
            repeats=2,
        )

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    by_shards = record["contexts_per_second_by_shards"]

    lines = ["Engine scalability -- contexts/second by shard count",
             f"(workload: {N_CONTEXTS} contexts, 4 independent scopes, "
             "drop-latest, window 20)", ""]
    for shards in sorted(by_shards, key=int):
        row = by_shards[shards]
        lines.append(
            f"  {shards:>2} shard(s): {row['contexts_per_second']:>9.1f} ctx/s"
            f"  ({row['elapsed_s']:.3f}s, {row['delivered']} delivered, "
            f"{row['discarded']} discarded)"
        )
    for label, ratio in record["speedup"].items():
        lines.append(f"  speedup {label}: {ratio:.2f}x")
    write_report("engine_scalability", "\n".join(lines))
    write_bench_json(OUT_JSON, "engine_scalability", record)

    speedup = record["speedup"]["4_shards_vs_1"]
    assert speedup >= 2.0, (
        f"expected >= 2x throughput at 4 shards vs 1, measured {speedup}x"
    )
