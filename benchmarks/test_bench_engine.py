"""Engine benchmark: sharded resolution throughput per shard count.

The sharded engine's scope analysis splits independent constraint
families onto separate shards, so each arrival pays pool-scan and
checking-scope costs proportional to its own family instead of the
whole deployment.  This benchmark measures contexts/second at 1, 2 and
4 shards on the scalability workload (4 independent scope groups), and
records the numbers machine-readably into
``benchmarks/out/BENCH_engine.json``.

The run is fully instrumented: its telemetry sidecar
(``benchmarks/out/TELEMETRY_engine_bench.json``) carries the per-stage
latency histograms and span counts, and the sidecar's own consistency
is asserted -- stage histograms non-empty, deliver/discard span counts
equal to the registry's delivered/discarded totals.

Acceptance: 4 shards must be at least 2x the single-shard throughput.
Decisions are asserted identical across all shard counts inside the
runner -- sharding that changed any outcome would abort the benchmark.
"""

import pathlib

from conftest import write_report

from repro.engine import write_bench_json
from repro.engine.workload import run_scalability_bench
from repro.obs import Telemetry, read_sidecar, stage_histogram_nonempty, write_sidecar

OUT_JSON = pathlib.Path(__file__).parent / "out" / "BENCH_engine.json"
OUT_TELEMETRY = pathlib.Path(__file__).parent / "out" / "TELEMETRY_engine_bench.json"
SHARD_COUNTS = (1, 2, 4)
N_CONTEXTS = 2000


def test_engine_scalability(benchmark):
    telemetry = Telemetry(enabled=True)

    def run():
        return run_scalability_bench(
            SHARD_COUNTS,
            n_contexts=N_CONTEXTS,
            use_window=20,
            strategy="drop-latest",
            mode="inline",
            repeats=2,
            telemetry=telemetry,
        )

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    by_shards = record["contexts_per_second_by_shards"]

    lines = ["Engine scalability -- contexts/second by shard count",
             f"(workload: {N_CONTEXTS} contexts, 4 independent scopes, "
             "drop-latest, window 20)", ""]
    for shards in sorted(by_shards, key=int):
        row = by_shards[shards]
        lines.append(
            f"  {shards:>2} shard(s): {row['contexts_per_second']:>9.1f} ctx/s"
            f"  ({row['elapsed_s']:.3f}s, {row['delivered']} delivered, "
            f"{row['discarded']} discarded)"
        )
    for label, ratio in record["speedup"].items():
        lines.append(f"  speedup {label}: {ratio:.2f}x")
    write_report("engine_scalability", "\n".join(lines))
    write_bench_json(OUT_JSON, "engine_scalability", record)
    write_sidecar(
        OUT_TELEMETRY,
        telemetry,
        meta={
            "benchmark": "engine_scalability",
            "shard_counts": list(SHARD_COUNTS),
            "n_contexts": N_CONTEXTS,
            "strategy": "drop-latest",
            "mode": "inline",
        },
    )

    # The sidecar must be self-consistent and non-trivial: every hot
    # pipeline stage observed latency, and the tracer saw exactly one
    # deliver/discard span per delivered/discarded context the
    # registry accounted (cumulatively, across all runs).
    sidecar = read_sidecar(OUT_TELEMETRY)
    for stage in ("receive", "check", "resolve", "deliver"):
        assert stage_histogram_nonempty(sidecar, stage), (
            f"stage {stage!r} histogram empty in {OUT_TELEMETRY}"
        )
    registry = telemetry.registry
    delivered_total = sum(
        registry.value("engine_shard_delivered_total", {"shard": str(s)})
        for s in range(max(SHARD_COUNTS))
    )
    discarded_total = sum(
        registry.value("engine_shard_discarded_total", {"shard": str(s)})
        for s in range(max(SHARD_COUNTS))
    )
    span_counts = sidecar["span_counts"]
    assert span_counts.get("stage.deliver", 0) == delivered_total
    assert span_counts.get("stage.discard", 0) == discarded_total

    speedup = record["speedup"]["4_shards_vs_1"]
    assert speedup >= 2.0, (
        f"expected >= 2x throughput at 4 shards vs 1, measured {speedup}x"
    )
