"""Engine benchmark: sharded resolution throughput per shard count.

The sharded engine's scope analysis splits independent constraint
families onto separate shards, so each arrival pays pool-scan and
checking-scope costs proportional to its own family instead of the
whole deployment.  This benchmark measures contexts/second at 1, 2 and
4 shards on the scalability workload (4 independent scope groups), and
records the numbers machine-readably into
``benchmarks/out/BENCH_engine.json``.

The run is fully instrumented: its telemetry sidecar
(``benchmarks/out/TELEMETRY_engine_bench.json``) carries the per-stage
latency histograms and span counts, and the sidecar's own consistency
is asserted -- stage histograms non-empty, deliver/discard span counts
equal to the registry's delivered/discarded totals.

Acceptance: 4 shards must be at least 2x the single-shard throughput.
Decisions are asserted identical across all shard counts inside the
runner -- sharding that changed any outcome would abort the benchmark.
"""

import gc
import pathlib
import time
import warnings

from conftest import write_report

from repro.apps import CallForwardingApp
from repro.engine import EngineConfig, ShardedEngine, write_bench_json
from repro.engine.workload import run_scalability_bench
from repro.obs import Telemetry, read_sidecar, stage_histogram_nonempty, write_sidecar

OUT_JSON = pathlib.Path(__file__).parent / "out" / "BENCH_engine.json"
OUT_TELEMETRY = pathlib.Path(__file__).parent / "out" / "TELEMETRY_engine_bench.json"
SHARD_COUNTS = (1, 2, 4)
N_CONTEXTS = 2000


def test_engine_scalability(benchmark):
    telemetry = Telemetry(enabled=True)

    def run():
        # batch_kernels off: this benchmark isolates the shard-count
        # variable on the per-context detection path (whose pool-scan
        # cost sharding removes); columnar batched detection attacks
        # the same cost and has its own column (``detection_batch``).
        return run_scalability_bench(
            SHARD_COUNTS,
            n_contexts=N_CONTEXTS,
            use_window=20,
            strategy="drop-latest",
            mode="inline",
            repeats=2,
            telemetry=telemetry,
            batch_kernels=False,
        )

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    by_shards = record["contexts_per_second_by_shards"]

    lines = ["Engine scalability -- contexts/second by shard count",
             f"(workload: {N_CONTEXTS} contexts, 4 independent scopes, "
             "drop-latest, window 20)", ""]
    for shards in sorted(by_shards, key=int):
        row = by_shards[shards]
        lines.append(
            f"  {shards:>2} shard(s): {row['contexts_per_second']:>9.1f} ctx/s"
            f"  ({row['elapsed_s']:.3f}s, {row['delivered']} delivered, "
            f"{row['discarded']} discarded)"
        )
    for label, ratio in record["speedup"].items():
        lines.append(f"  speedup {label}: {ratio:.2f}x")
    write_report("engine_scalability", "\n".join(lines))
    write_bench_json(OUT_JSON, "engine_scalability", record)
    write_sidecar(
        OUT_TELEMETRY,
        telemetry,
        meta={
            "benchmark": "engine_scalability",
            "shard_counts": list(SHARD_COUNTS),
            "n_contexts": N_CONTEXTS,
            "strategy": "drop-latest",
            "mode": "inline",
        },
    )

    # The sidecar must be self-consistent and non-trivial: every hot
    # pipeline stage observed latency, and the tracer saw exactly one
    # deliver/discard span per delivered/discarded context the
    # registry accounted (cumulatively, across all runs).
    sidecar = read_sidecar(OUT_TELEMETRY)
    for stage in ("receive", "check", "resolve", "deliver"):
        assert stage_histogram_nonempty(sidecar, stage), (
            f"stage {stage!r} histogram empty in {OUT_TELEMETRY}"
        )
    registry = telemetry.registry
    delivered_total = sum(
        registry.value("engine_shard_delivered_total", {"shard": str(s)})
        for s in range(max(SHARD_COUNTS))
    )
    discarded_total = sum(
        registry.value("engine_shard_discarded_total", {"shard": str(s)})
        for s in range(max(SHARD_COUNTS))
    )
    span_counts = sidecar["span_counts"]
    assert span_counts.get("stage.deliver", 0) == delivered_total
    assert span_counts.get("stage.discard", 0) == discarded_total

    speedup = record["speedup"]["4_shards_vs_1"]
    assert speedup >= 2.0, (
        f"expected >= 2x throughput at 4 shards vs 1, measured {speedup}x"
    )


def test_runtime_batch_column():
    """A/B the amortized runtime batch path on the call-forwarding stream.

    Records a ``runtime_batch`` column into ``BENCH_engine.json``:
    contexts/second through :func:`repro.runtime.batch.receive_batch`
    (the default) vs the per-context ``driver.receive`` reference path
    (``--no-runtime-batch``), on the same inline engine.  Decision
    identity between the two paths is asserted hard; throughput is
    fail-soft -- a >30% regression of the batch path warns rather than
    fails, because the column exists to make drift visible across
    commits, not to flake CI on a loaded machine.
    """
    app = CallForwardingApp()
    stream = app.generate_workload(0.3, seed=88, duration=400.0)
    constraints = app.build_checker().constraints()

    def run(runtime_batch):
        engine = ShardedEngine(
            constraints,
            strategy="drop-bad",
            registry_factory=app.build_registry,
            config=EngineConfig(
                shards=2, use_window=10, runtime_batch=runtime_batch
            ),
        )
        started = time.perf_counter()
        result = engine.run(stream)
        return time.perf_counter() - started, result

    def best_of(runtime_batch, repeats=3):
        best_elapsed, kept = float("inf"), None
        for _ in range(repeats):
            elapsed, result = run(runtime_batch)
            if elapsed < best_elapsed:
                best_elapsed, kept = elapsed, result
        return best_elapsed, kept

    batch_s, batch_result = best_of(True)
    perctx_s, perctx_result = best_of(False)
    assert batch_result.delivered_ids == perctx_result.delivered_ids
    assert batch_result.discarded_ids == perctx_result.discarded_ids

    ratio = perctx_s / batch_s if batch_s > 0 else float("inf")
    record = {
        "n_contexts": len(stream),
        "batch_contexts_per_second": len(stream) / batch_s,
        "per_context_contexts_per_second": len(stream) / perctx_s,
        "batch_vs_per_context": ratio,
        "delivered": len(batch_result.delivered_ids),
        "discarded": len(batch_result.discarded_ids),
    }
    write_bench_json(OUT_JSON, "runtime_batch", record)
    write_report(
        "runtime_batch",
        "Runtime batch path -- call-forwarding stream, 2 shards, window 10\n"
        f"  batch:       {record['batch_contexts_per_second']:>9.1f} ctx/s\n"
        f"  per-context: {record['per_context_contexts_per_second']:>9.1f} ctx/s\n"
        f"  batch/per-context ratio: {ratio:.2f}x",
    )
    if ratio < 0.7:
        warnings.warn(
            "runtime batch path is >30% slower than per-context receive "
            f"({ratio:.2f}x); investigate before shipping",
            stacklevel=1,
        )


def test_ledger_column(tmp_path):
    """A/B the decision ledger on the call-forwarding stream.

    Records a ``ledger`` column into ``BENCH_engine.json``: contexts/
    second with the hash-chained ledger off vs on, on the same inline
    engine.  Decision identity is asserted hard (the ledger is an
    observer, never an actor); overhead is fail-soft -- a >30%
    throughput drop warns rather than fails, for the same
    loaded-machine reasons as the ``runtime_batch`` column.  The
    acceptance budget for the feature itself is <=10% on this stream;
    the recorded ``off_vs_on`` ratio is how drift shows up in review.
    """
    from repro.ledger import verify_ledger

    app = CallForwardingApp()
    stream = app.generate_workload(0.3, seed=88, duration=400.0)
    constraints = app.build_checker().constraints()
    ledger_path = tmp_path / "bench.ledger.jsonl"

    def run(with_ledger):
        engine = ShardedEngine(
            constraints,
            strategy="drop-bad",
            registry_factory=app.build_registry,
            config=EngineConfig(
                shards=2,
                use_window=10,
                ledger_path=str(ledger_path) if with_ledger else None,
            ),
        )
        # Collect, then pause the collector for the timed region (both
        # arms identically).  Mid-run generational passes walk the
        # whole heap -- dominated by the engine's own event objects --
        # and fire at allocation thresholds, so which arm pays them is
        # an artifact of allocation phase, not of ledger cost; pausing
        # is the same hygiene pyperf/timeit apply.
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            result = engine.run(stream)
            return time.perf_counter() - started, result
        finally:
            gc.enable()

    # Interleave the arms (off, on, off, on, ...) so a load spike hits
    # both sides instead of biasing whichever arm it lands on; best-of
    # per arm then compares like with like.  Load noise here is
    # multiplicative (the on arm does ~10% more work, so a busy core
    # stretches it more), which is exactly the noise shape best-of
    # handles and averages don't -- hence 9 rounds, not a mean.
    run(False), run(True)  # warmup: prime caches outside the timings
    off_s = on_s = float("inf")
    off_result = on_result = None
    for _ in range(9):
        elapsed, result = run(False)
        if elapsed < off_s:
            off_s, off_result = elapsed, result
        elapsed, result = run(True)
        if elapsed < on_s:
            on_s, on_result = elapsed, result
    assert off_result.delivered_ids == on_result.delivered_ids
    assert off_result.discarded_ids == on_result.discarded_ids
    check = verify_ledger(str(ledger_path))
    assert check.ok, check.summary()

    ratio = off_s / on_s if on_s > 0 else float("inf")
    record = {
        "n_contexts": len(stream),
        "ledger_off_contexts_per_second": len(stream) / off_s,
        "ledger_on_contexts_per_second": len(stream) / on_s,
        "off_vs_on": ratio,
        "ledger_entries": check.entries,
        "ledger_bytes": ledger_path.stat().st_size,
        "delivered": len(on_result.delivered_ids),
        "discarded": len(on_result.discarded_ids),
    }
    write_bench_json(OUT_JSON, "ledger", record)
    write_report(
        "ledger",
        "Decision ledger overhead -- call-forwarding stream, 2 shards, "
        "window 10\n"
        f"  ledger off: {record['ledger_off_contexts_per_second']:>9.1f} ctx/s\n"
        f"  ledger on:  {record['ledger_on_contexts_per_second']:>9.1f} ctx/s\n"
        f"  off/on ratio: {ratio:.2f}x "
        f"({check.entries} entries, {record['ledger_bytes']} bytes)",
    )
    if ratio < 0.7:
        warnings.warn(
            "ledger-on throughput is >30% below ledger-off "
            f"({ratio:.2f}x); the audit trail has become a hot-path cost",
            stacklevel=1,
        )
