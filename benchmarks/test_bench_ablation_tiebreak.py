"""Section 5.1 ablation: the tie case.

The paper identifies ties at the maximal count value as drop-bad's
main weakness and proposes studying which tied context to discard as
future work.  This benchmark compares the tie-break policies of
``repro.core.tiebreak`` plus the conservative variant that refuses to
discard on a pure tie.
"""

from conftest import write_report

from repro.apps.call_forwarding import CallForwardingApp
from repro.experiments.ablations import run_tiebreak_ablation
from repro.experiments.report import format_tiebreak_ablation


def _run(groups: int):
    return run_tiebreak_ablation(
        CallForwardingApp(),
        err_rate=0.3,
        groups=groups,
        use_window=10,
        workload_kwargs={"duration": 300.0},
    )


def test_tiebreak_ablation(benchmark, bench_groups):
    points = benchmark.pedantic(
        _run, args=(bench_groups,), rounds=1, iterations=1
    )
    write_report(
        "sec5_1_tiebreak_ablation",
        "Section 5.1 -- tie-break ablation (Call Forwarding, err 30%)\n"
        + format_tiebreak_ablation(points),
    )

    assert len(points) == 6  # five policies + conservative variant
    for point in points:
        assert 0.0 <= point.ctx_use_rate <= 100.0 + 1e-9
        assert 0.0 <= point.removal_precision <= 1.0
    # The conservative variant trades recall for survival: it must not
    # lose MORE expected contexts than the tie-discarding default.
    default = next(
        p for p in points if p.policy == "oldest" and p.discard_on_tie
    )
    conservative = next(p for p in points if not p.discard_on_tie)
    assert conservative.survival_rate >= default.survival_rate - 0.02
