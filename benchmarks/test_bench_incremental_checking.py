"""Performance benchmark: the constraint-detection hot path.

Two claims are measured on one call-forwarding stream:

* the substrate claim behind [17] (incremental consistency checking)
  that the middleware relies on -- detection work per context addition
  should not rescale with the whole pool (incremental vs full
  re-evaluation); and
* the compiled-kernel + equality-join-index layer
  (:mod:`repro.constraints.compile` / :mod:`repro.constraints.index`)
  must make incremental detection at least 2.5x faster than the
  interpreted reference path while producing the identical violation
  sequence.

The detection loop runs pool-attached (contexts live in a
:class:`~repro.middleware.pool.ContextPool` with expiry), so the
persistent candidate indexes engage exactly as they do under the
middleware.  The kernels-on throughput is recorded machine-readably
under ``detection_kernels`` in ``benchmarks/out/BENCH_engine.json``;
a run that regresses more than 30% below the committed baseline warns
(fail-soft -- CI surfaces the warning without going red on noisy
hosts).
"""

import datetime
import json
import pathlib
import statistics
import time
import warnings

import pytest

from conftest import write_report

from repro.apps.call_forwarding import CallForwardingApp
from repro.engine import write_bench_json
from repro.experiments.report import format_table
from repro.middleware.pool import ContextPool

APP = CallForwardingApp()
STREAM = APP.generate_workload(0.3, seed=77, duration=240.0)
OUT_JSON = pathlib.Path(__file__).parent / "out" / "BENCH_engine.json"
#: Fail-soft regression bar vs the committed baseline record.
REGRESSION_TOLERANCE = 0.30

MODES = {
    "kernels": dict(incremental=True, kernels=True),
    "interp": dict(incremental=True, kernels=False),
    "full": dict(incremental=False, kernels=False),
}


def _detect_all(mode: str, trace: bool = False):
    """Run the whole stream through a pool-attached checker.

    Returns the number of inconsistencies detected, plus (with
    ``trace=True``) the full per-arrival violation sequence for
    equivalence assertions.
    """
    checker = APP.build_checker(**MODES[mode])
    pool = ContextPool()
    checker.attach_pool(pool)
    detected = 0
    sequence = [] if trace else None
    for ctx in STREAM:
        # Expiry keeps the pool bounded the way the middleware would
        # (workload contexts carry a 60 s lifespan).
        pool.expire(ctx.timestamp)
        found = checker.detect(ctx, pool.contents(), now=ctx.timestamp)
        detected += len(found)
        if sequence is not None:
            sequence.append(
                (
                    ctx.ctx_id,
                    sorted(
                        (
                            inc.constraint,
                            tuple(sorted(c.ctx_id for c in inc.contexts)),
                        )
                        for inc in found
                    ),
                )
            )
        pool.add(ctx)
    return (detected, sequence) if trace else detected


def _timed_throughput(mode: str, repeats: int = 3) -> float:
    """Best-of-``repeats`` contexts/second for one detection mode."""
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        _detect_all(mode)
        elapsed = time.perf_counter() - started
        best = max(best, len(STREAM) / elapsed)
    return best


@pytest.mark.parametrize("mode", list(MODES), ids=list(MODES))
def test_detection_throughput(benchmark, mode):
    detected = benchmark(_detect_all, mode)
    assert detected > 0


def test_all_modes_agree_end_to_end(benchmark):
    def run():
        return {mode: _detect_all(mode, trace=True) for mode in MODES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    kernels_detected, kernels_trace = results["kernels"]
    interp_detected, interp_trace = results["interp"]
    full_detected, _ = results["full"]
    write_report(
        "substrate_incremental_checking",
        "Substrate -- detection modes on one CF stream\n"
        + format_table(
            ["mode", "inconsistencies detected"],
            [
                ["incremental + kernels/indexes", kernels_detected],
                ["incremental, interpreted", interp_detected],
                ["full re-evaluation", full_detected],
            ],
        ),
    )
    # Kernels/indexes must be invisible in the results: identical
    # violation sequence, not just identical totals.
    assert kernels_trace == interp_trace
    assert kernels_detected == interp_detected == full_detected
    assert kernels_detected > 0


def test_kernel_speedup_recorded(benchmark):
    def run():
        return {mode: _timed_throughput(mode) for mode in ("kernels", "interp")}

    throughput = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = throughput["kernels"] / throughput["interp"]

    baseline = None
    if OUT_JSON.exists():
        try:
            committed = json.loads(OUT_JSON.read_text(encoding="utf-8"))
            baseline = committed["detection_kernels"]["contexts_per_second"]
        except (ValueError, KeyError, TypeError):
            baseline = None

    record = {
        "contexts_per_second": round(throughput["kernels"], 1),
        "contexts_per_second_interpreted": round(throughput["interp"], 1),
        "speedup_vs_interpreted": round(speedup, 2),
        "workload": {
            "app": "call_forwarding",
            "err_rate": 0.3,
            "seed": 77,
            "duration_s": 240.0,
            "n_contexts": len(STREAM),
        },
        "measured_at": datetime.datetime.now().isoformat(timespec="seconds"),
    }
    write_bench_json(OUT_JSON, "detection_kernels", record)
    write_report(
        "detection_kernels",
        "Detection hot path -- compiled kernels + candidate indexes\n"
        + format_table(
            ["mode", "contexts/second"],
            [
                ["kernels + indexes", f"{throughput['kernels']:.1f}"],
                ["interpreted", f"{throughput['interp']:.1f}"],
                ["speedup", f"{speedup:.2f}x"],
            ],
        ),
    )

    if baseline and throughput["kernels"] < (1 - REGRESSION_TOLERANCE) * baseline:
        warnings.warn(
            f"detection throughput regressed: {throughput['kernels']:.1f} ctx/s "
            f"vs committed baseline {baseline:.1f} ctx/s "
            f"(> {REGRESSION_TOLERANCE:.0%} drop)",
            stacklevel=1,
        )

    assert speedup >= 2.5, (
        f"expected >= 2.5x detection throughput from kernels + indexes, "
        f"measured {speedup:.2f}x"
    )


# -- columnar batched detection (ISSUE 9) ---------------------------------

#: Serve-like batch sizes: the adaptive batcher's typical window (16)
#: and a saturated front-door burst (64).
BATCH_SIZES = (16, 64)


def _detect_all_batched(batch_size: int, batch_kernels: bool = True,
                        trace: bool = False):
    """The same stream through ``detect_batch`` in fixed-size chunks."""
    checker = APP.build_checker(incremental=True, kernels=True)
    checker.batch_kernels = batch_kernels and checker.batch_kernels
    pool = ContextPool()
    checker.attach_pool(pool)
    detected = 0
    sequence = [] if trace else None
    for start in range(0, len(STREAM), batch_size):
        chunk = STREAM[start : start + batch_size]
        # The runtime sweeps expiry before a batch; mid-batch expiry is
        # detect_batch's per-row cutoff's job.
        pool.expire(chunk[0].timestamp)
        verdicts = checker.detect_batch(
            chunk, pool.contents(), now=[c.timestamp for c in chunk]
        )
        for ctx, found in zip(chunk, verdicts):
            detected += len(found)
            if sequence is not None:
                sequence.append(
                    (
                        ctx.ctx_id,
                        sorted(
                            (
                                inc.constraint,
                                tuple(sorted(c.ctx_id for c in inc.contexts)),
                            )
                            for inc in found
                        ),
                    )
                )
            pool.add(ctx)
    return (detected, sequence) if trace else detected


def test_detection_batch_agrees_with_per_context():
    # Byte-identical verdicts: batched detection at every size, with
    # batch kernels on and off, vs the per-context kernel reference.
    _, reference = _detect_all("kernels", trace=True)
    for batch_size in BATCH_SIZES:
        for batch_kernels in (True, False):
            _, batched = _detect_all_batched(
                batch_size, batch_kernels=batch_kernels, trace=True
            )
            assert batched == reference, (
                f"verdicts diverged at batch_size={batch_size}, "
                f"batch_kernels={batch_kernels}"
            )


def test_detection_batch_recorded(benchmark):
    """Columnar batched detection vs the per-context kernel path.

    Measured interleaved (per-context, batched, per-context, ...) so a
    load spike hits both arms, and the speedup is the *median of the
    per-rep ratios* -- each rep's ratio pairs arms measured back to
    back, so multiplicative host noise cancels instead of landing on
    whichever arm it hit.  The acceptance bar is >= 1.5x at serve-like
    batch sizes; the committed ``detection_batch`` baseline gets the
    same fail-soft 30% regression warning as ``detection_kernels``.
    """
    def run():
        best = {"seq": 0.0, **{size: 0.0 for size in BATCH_SIZES}}
        rep_ratios = {size: [] for size in BATCH_SIZES}
        _detect_all("kernels")  # warmup: prime plans and indexes
        _detect_all_batched(BATCH_SIZES[0])
        for _ in range(7):
            started = time.perf_counter()
            _detect_all("kernels")
            seq_tp = len(STREAM) / (time.perf_counter() - started)
            best["seq"] = max(best["seq"], seq_tp)
            for size in BATCH_SIZES:
                started = time.perf_counter()
                _detect_all_batched(size)
                tp = len(STREAM) / (time.perf_counter() - started)
                best[size] = max(best[size], tp)
                rep_ratios[size].append(tp / seq_tp)
        return best, rep_ratios

    throughput, rep_ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = {
        size: statistics.median(rep_ratios[size]) for size in BATCH_SIZES
    }
    headline_size = max(BATCH_SIZES, key=lambda size: ratios[size])

    baseline = None
    if OUT_JSON.exists():
        try:
            committed = json.loads(OUT_JSON.read_text(encoding="utf-8"))
            baseline = committed["detection_batch"]["contexts_per_second"]
        except (ValueError, KeyError, TypeError):
            baseline = None

    record = {
        "contexts_per_second": round(throughput[headline_size], 1),
        "contexts_per_second_per_context": round(throughput["seq"], 1),
        "batch_size": headline_size,
        "speedup_vs_per_context_by_batch_size": {
            str(size): round(ratios[size], 2) for size in BATCH_SIZES
        },
        "workload": {
            "app": "call_forwarding",
            "err_rate": 0.3,
            "seed": 77,
            "duration_s": 240.0,
            "n_contexts": len(STREAM),
        },
        "measured_at": datetime.datetime.now().isoformat(timespec="seconds"),
    }
    write_bench_json(OUT_JSON, "detection_batch", record)
    write_report(
        "detection_batch",
        "Columnar batched detection -- detect_batch vs per-context kernels\n"
        + format_table(
            ["mode", "contexts/second"],
            [["per-context kernels", f"{throughput['seq']:.1f}"]]
            + [
                [
                    f"detect_batch({size})",
                    f"{throughput[size]:.1f} ({ratios[size]:.2f}x)",
                ]
                for size in BATCH_SIZES
            ],
        ),
    )

    if baseline and throughput[headline_size] < (
        1 - REGRESSION_TOLERANCE
    ) * baseline:
        warnings.warn(
            f"batched detection throughput regressed: "
            f"{throughput[headline_size]:.1f} ctx/s vs committed baseline "
            f"{baseline:.1f} ctx/s (> {REGRESSION_TOLERANCE:.0%} drop)",
            stacklevel=1,
        )

    best_ratio = ratios[headline_size]
    assert best_ratio >= 1.5, (
        f"expected >= 1.5x detection throughput from batched evaluation "
        f"at serve-like batch sizes, measured {best_ratio:.2f}x"
    )
