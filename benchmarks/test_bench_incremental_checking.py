"""Performance benchmark: incremental vs full constraint checking.

Not a paper figure, but the substrate claim behind [17] (incremental
consistency checking) that the middleware relies on: detection work
per context addition should not rescale with the whole pool.  The
benchmark measures end-to-end detection over the same stream with the
incremental fast path on and off.
"""

import pytest

from conftest import write_report

from repro.apps.call_forwarding import CallForwardingApp
from repro.experiments.report import format_table

APP = CallForwardingApp()
STREAM = APP.generate_workload(0.3, seed=77, duration=240.0)


def _detect_all(incremental: bool) -> int:
    checker = APP.build_checker(incremental=incremental)
    seen = []
    detected = 0
    for ctx in STREAM:
        detected += len(checker.detect(ctx, seen, now=ctx.timestamp))
        seen.append(ctx)
        # Keep the pool bounded the way the middleware's expiry would.
        cutoff = ctx.timestamp - 60.0
        seen = [c for c in seen if c.timestamp >= cutoff]
    return detected


@pytest.mark.parametrize("incremental", [True, False], ids=["incr", "full"])
def test_detection_throughput(benchmark, incremental):
    detected = benchmark(_detect_all, incremental)
    assert detected > 0


def test_incremental_and_full_agree_end_to_end(benchmark):
    def run():
        return _detect_all(True), _detect_all(False)

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "substrate_incremental_checking",
        "Substrate -- incremental vs full checking on one CF stream\n"
        + format_table(
            ["mode", "inconsistencies detected"],
            [["incremental", fast], ["full re-evaluation", slow]],
        ),
    )
    assert fast == slow
