"""Performance benchmark: the constraint-detection hot path.

Two claims are measured on one call-forwarding stream:

* the substrate claim behind [17] (incremental consistency checking)
  that the middleware relies on -- detection work per context addition
  should not rescale with the whole pool (incremental vs full
  re-evaluation); and
* the compiled-kernel + equality-join-index layer
  (:mod:`repro.constraints.compile` / :mod:`repro.constraints.index`)
  must make incremental detection at least 2.5x faster than the
  interpreted reference path while producing the identical violation
  sequence.

The detection loop runs pool-attached (contexts live in a
:class:`~repro.middleware.pool.ContextPool` with expiry), so the
persistent candidate indexes engage exactly as they do under the
middleware.  The kernels-on throughput is recorded machine-readably
under ``detection_kernels`` in ``benchmarks/out/BENCH_engine.json``;
a run that regresses more than 30% below the committed baseline warns
(fail-soft -- CI surfaces the warning without going red on noisy
hosts).
"""

import datetime
import json
import pathlib
import time
import warnings

import pytest

from conftest import write_report

from repro.apps.call_forwarding import CallForwardingApp
from repro.engine import write_bench_json
from repro.experiments.report import format_table
from repro.middleware.pool import ContextPool

APP = CallForwardingApp()
STREAM = APP.generate_workload(0.3, seed=77, duration=240.0)
OUT_JSON = pathlib.Path(__file__).parent / "out" / "BENCH_engine.json"
#: Fail-soft regression bar vs the committed baseline record.
REGRESSION_TOLERANCE = 0.30

MODES = {
    "kernels": dict(incremental=True, kernels=True),
    "interp": dict(incremental=True, kernels=False),
    "full": dict(incremental=False, kernels=False),
}


def _detect_all(mode: str, trace: bool = False):
    """Run the whole stream through a pool-attached checker.

    Returns the number of inconsistencies detected, plus (with
    ``trace=True``) the full per-arrival violation sequence for
    equivalence assertions.
    """
    checker = APP.build_checker(**MODES[mode])
    pool = ContextPool()
    checker.attach_pool(pool)
    detected = 0
    sequence = [] if trace else None
    for ctx in STREAM:
        # Expiry keeps the pool bounded the way the middleware would
        # (workload contexts carry a 60 s lifespan).
        pool.expire(ctx.timestamp)
        found = checker.detect(ctx, pool.contents(), now=ctx.timestamp)
        detected += len(found)
        if sequence is not None:
            sequence.append(
                (
                    ctx.ctx_id,
                    sorted(
                        (
                            inc.constraint,
                            tuple(sorted(c.ctx_id for c in inc.contexts)),
                        )
                        for inc in found
                    ),
                )
            )
        pool.add(ctx)
    return (detected, sequence) if trace else detected


def _timed_throughput(mode: str, repeats: int = 3) -> float:
    """Best-of-``repeats`` contexts/second for one detection mode."""
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        _detect_all(mode)
        elapsed = time.perf_counter() - started
        best = max(best, len(STREAM) / elapsed)
    return best


@pytest.mark.parametrize("mode", list(MODES), ids=list(MODES))
def test_detection_throughput(benchmark, mode):
    detected = benchmark(_detect_all, mode)
    assert detected > 0


def test_all_modes_agree_end_to_end(benchmark):
    def run():
        return {mode: _detect_all(mode, trace=True) for mode in MODES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    kernels_detected, kernels_trace = results["kernels"]
    interp_detected, interp_trace = results["interp"]
    full_detected, _ = results["full"]
    write_report(
        "substrate_incremental_checking",
        "Substrate -- detection modes on one CF stream\n"
        + format_table(
            ["mode", "inconsistencies detected"],
            [
                ["incremental + kernels/indexes", kernels_detected],
                ["incremental, interpreted", interp_detected],
                ["full re-evaluation", full_detected],
            ],
        ),
    )
    # Kernels/indexes must be invisible in the results: identical
    # violation sequence, not just identical totals.
    assert kernels_trace == interp_trace
    assert kernels_detected == interp_detected == full_detected
    assert kernels_detected > 0


def test_kernel_speedup_recorded(benchmark):
    def run():
        return {mode: _timed_throughput(mode) for mode in ("kernels", "interp")}

    throughput = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = throughput["kernels"] / throughput["interp"]

    baseline = None
    if OUT_JSON.exists():
        try:
            committed = json.loads(OUT_JSON.read_text(encoding="utf-8"))
            baseline = committed["detection_kernels"]["contexts_per_second"]
        except (ValueError, KeyError, TypeError):
            baseline = None

    record = {
        "contexts_per_second": round(throughput["kernels"], 1),
        "contexts_per_second_interpreted": round(throughput["interp"], 1),
        "speedup_vs_interpreted": round(speedup, 2),
        "workload": {
            "app": "call_forwarding",
            "err_rate": 0.3,
            "seed": 77,
            "duration_s": 240.0,
            "n_contexts": len(STREAM),
        },
        "measured_at": datetime.datetime.now().isoformat(timespec="seconds"),
    }
    write_bench_json(OUT_JSON, "detection_kernels", record)
    write_report(
        "detection_kernels",
        "Detection hot path -- compiled kernels + candidate indexes\n"
        + format_table(
            ["mode", "contexts/second"],
            [
                ["kernels + indexes", f"{throughput['kernels']:.1f}"],
                ["interpreted", f"{throughput['interp']:.1f}"],
                ["speedup", f"{speedup:.2f}x"],
            ],
        ),
    )

    if baseline and throughput["kernels"] < (1 - REGRESSION_TOLERANCE) * baseline:
        warnings.warn(
            f"detection throughput regressed: {throughput['kernels']:.1f} ctx/s "
            f"vs committed baseline {baseline:.1f} ctx/s "
            f"(> {REGRESSION_TOLERANCE:.0%} drop)",
            stacklevel=1,
        )

    assert speedup >= 2.5, (
        f"expected >= 2.5x detection throughput from kernels + indexes, "
        f"measured {speedup:.2f}x"
    )
