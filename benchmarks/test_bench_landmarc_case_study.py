"""Section 5.2: the Landmarc case study.

Regenerates the paper's reported numbers -- location context survival
rate (96.5%), removal precision (84.7%), Rule 1 satisfaction (always)
and Rule 2' satisfaction (91.7%) -- on the simulated Landmarc
deployment, averaged over several seeds.
"""

from conftest import write_report

from repro.experiments.case_study import CaseStudyConfig, run_case_study
from repro.experiments.report import format_case_study, format_table

SEEDS = (3, 7, 11, 19, 23)


def _run():
    return [run_case_study(seed=s) for s in SEEDS]


def test_landmarc_case_study(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    def mean(attr):
        return sum(getattr(r, attr) for r in results) / len(results)

    rows = [
        ["survival rate", f"{mean('survival_rate'):.1%}", "96.5%"],
        ["removal precision", f"{mean('removal_precision'):.1%}", "84.7%"],
        ["Rule 1 held", f"{mean('rule1_rate'):.1%}", "100%"],
        ["Rule 2' held", f"{mean('rule2_relaxed_rate'):.1%}", "91.7%"],
        [
            "mean error raw -> delivered",
            f"{mean('mean_error_raw'):.2f}m -> "
            f"{mean('mean_error_delivered'):.2f}m",
            "(improves)",
        ],
    ]
    report = (
        f"Section 5.2 -- Landmarc case study (mean over {len(SEEDS)} seeds)\n"
        + format_table(["metric", "measured", "paper"], rows)
        + "\n\nPer-seed detail:\n"
        + format_case_study(results[0])
    )
    write_report("sec5_2_landmarc_case_study", report)

    # Shape assertions mirroring the paper's claims.
    assert mean("survival_rate") > 0.9
    assert mean("removal_precision") > 0.7
    assert mean("rule1_rate") == 1.0
    assert 0.7 < mean("rule2_relaxed_rate") <= 1.0
    assert mean("mean_error_delivered") < mean("mean_error_raw")
