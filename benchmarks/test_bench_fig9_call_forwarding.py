"""Figure 9: resolution comparison for the Call Forwarding application.

Regenerates both panels (context use rate, situation activation rate)
for OPT-R / D-BAD / D-LAT / D-ALL at error rates 10-40%, normalized
against OPT-R -- the paper's headline experiment.

Expected shape (Section 4.2): OPT-R = 100%; D-BAD clearly best among
practical strategies; D-LAT and D-ALL reduced by roughly 20-40%;
D-ALL worst.
"""

from conftest import write_report

from repro.apps.call_forwarding import CallForwardingApp
from repro.experiments.harness import ComparisonConfig, run_comparison
from repro.experiments.report import format_comparison


def _run(groups: int):
    config = ComparisonConfig(
        groups_per_point=groups,
        use_window=10,
        workload_kwargs=(("duration", 300.0),),
    )
    return run_comparison(CallForwardingApp(), config)


def test_fig9_call_forwarding(benchmark, bench_groups):
    result = benchmark.pedantic(
        _run, args=(bench_groups,), rounds=1, iterations=1
    )
    write_report(
        "fig9_call_forwarding",
        format_comparison(
            result,
            f"Figure 9 -- Call Forwarding ({bench_groups} groups/point, "
            f"paper: 20)",
        ),
    )
    # The paper's ordering must hold at every error rate for ctxUseRate.
    for err_rate in result.config.err_rates:
        bad = result.point("drop-bad", err_rate)
        latest = result.point("drop-latest", err_rate)
        all_ = result.point("drop-all", err_rate)
        assert bad.ctx_use_rate > all_.ctx_use_rate
        assert latest.ctx_use_rate > all_.ctx_use_rate
        assert bad.ctx_use_rate <= 100.0 + 1e-9
