"""Figure 9: resolution comparison for the Call Forwarding application.

Regenerates both panels (context use rate, situation activation rate)
for OPT-R / D-BAD / D-LAT / D-ALL at error rates 10-40%, normalized
against OPT-R -- the paper's headline experiment.

Expected shape (Section 4.2): OPT-R = 100%; D-BAD clearly best among
practical strategies; D-LAT and D-ALL reduced by roughly 20-40%;
D-ALL worst.

The whole grid runs under one telemetry bundle; the sidecar
(``benchmarks/out/TELEMETRY_fig9_call_forwarding.json``) aggregates
per-stage latency histograms over every group, and its deliver/discard
span counts are asserted to equal the groups' delivered/discarded
context totals.
"""

import pathlib

from conftest import write_report

from repro.apps.call_forwarding import CallForwardingApp
from repro.experiments.harness import ComparisonConfig, run_comparison
from repro.experiments.report import format_comparison
from repro.obs import Telemetry, read_sidecar, stage_histogram_nonempty, write_sidecar

OUT_TELEMETRY = (
    pathlib.Path(__file__).parent / "out" / "TELEMETRY_fig9_call_forwarding.json"
)


def _run(groups: int, telemetry: Telemetry):
    config = ComparisonConfig(
        groups_per_point=groups,
        use_window=10,
        workload_kwargs=(("duration", 300.0),),
    )
    return run_comparison(CallForwardingApp(), config, telemetry=telemetry)


def test_fig9_call_forwarding(benchmark, bench_groups):
    telemetry = Telemetry(enabled=True)
    result = benchmark.pedantic(
        _run, args=(bench_groups, telemetry), rounds=1, iterations=1
    )
    write_report(
        "fig9_call_forwarding",
        format_comparison(
            result,
            f"Figure 9 -- Call Forwarding ({bench_groups} groups/point, "
            f"paper: 20)",
        ),
    )
    write_sidecar(
        OUT_TELEMETRY,
        telemetry,
        meta={
            "benchmark": "fig9_call_forwarding",
            "groups_per_point": bench_groups,
            "total_groups": result.config.total_groups,
        },
    )
    sidecar = read_sidecar(OUT_TELEMETRY)
    for stage in ("receive", "check", "resolve", "use", "deliver"):
        assert stage_histogram_nonempty(sidecar, stage), (
            f"stage {stage!r} histogram empty in {OUT_TELEMETRY}"
        )
    span_counts = sidecar["span_counts"]
    delivered_total = sum(g.contexts_used for g in result.groups)
    discarded_total = sum(g.contexts_discarded for g in result.groups)
    assert span_counts.get("stage.deliver", 0) == delivered_total
    assert span_counts.get("stage.discard", 0) == discarded_total

    # The paper's ordering must hold at every error rate for ctxUseRate.
    for err_rate in result.config.err_rates:
        bad = result.point("drop-bad", err_rate)
        latest = result.point("drop-latest", err_rate)
        all_ = result.point("drop-all", err_rate)
        assert bad.ctx_use_rate > all_.ctx_use_rate
        assert latest.ctx_use_rate > all_.ctx_use_rate
        assert bad.ctx_use_rate <= 100.0 + 1e-9
