"""Figure 10: resolution comparison for the RFID data anomalies
application -- the second of the paper's two headline experiments.

Same panels and strategies as Figure 9, on the RFID zone-read
workload.  Together with Figure 9 this is the paper's 320-group grid
per application at paper scale (REPRO_BENCH_GROUPS=20).
"""

from conftest import write_report

from repro.apps.rfid_anomalies import RFIDAnomaliesApp
from repro.experiments.harness import ComparisonConfig, run_comparison
from repro.experiments.report import format_comparison


def _run(groups: int):
    config = ComparisonConfig(
        groups_per_point=groups,
        use_window=20,
        workload_kwargs=(("items", 10),),
    )
    return run_comparison(RFIDAnomaliesApp(), config)


def test_fig10_rfid_anomalies(benchmark, bench_groups):
    result = benchmark.pedantic(
        _run, args=(bench_groups,), rounds=1, iterations=1
    )
    write_report(
        "fig10_rfid_anomalies",
        format_comparison(
            result,
            f"Figure 10 -- RFID data anomalies ({bench_groups} "
            f"groups/point, paper: 20)",
        ),
    )
    for err_rate in result.config.err_rates:
        bad = result.point("drop-bad", err_rate)
        all_ = result.point("drop-all", err_rate)
        assert bad.ctx_use_rate > all_.ctx_use_rate
        assert bad.ctx_use_rate <= 100.0 + 1e-9
