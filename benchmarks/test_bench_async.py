"""Asynchrony degradation benchmark: drop-bad vs OPT-R off the happy path.

The paper's reliability story for drop-bad is measured on synchronized
streams.  This benchmark perturbs the smart-phone workload with the
:mod:`repro.sensing.perturb` adapters (delay / reorder / duplicate /
per-source clock skew at three intensities each) and records
drop-bad's OPT-R-normalized
quality with the runtime as-is versus behind the snapshot-window
async-check ingress.  The grid lands machine-readably as the
``async_degradation`` record of ``benchmarks/out/BENCH_engine.json``
(alongside the scalability records) and as a regenerated table.

Acceptance here is sanity, not a quality bar -- the experiment is the
measurement: every cell must complete (the duplicate rows used to
crash the pool before the duplicate-refusal fix), rates must be
finite, and the async rows must exist for every sync row.
"""

import pathlib

from conftest import write_report

from repro.apps import SmartPhoneApp
from repro.engine import write_bench_json
from repro.experiments.asynchrony import (
    DEFAULT_PERTURBATIONS,
    format_asynchrony_table,
    points_as_records,
    run_asynchrony,
)

OUT_JSON = pathlib.Path(__file__).parent / "out" / "BENCH_engine.json"
GROUPS = 3


def test_async_degradation(benchmark):
    def run():
        return run_asynchrony(
            SmartPhoneApp(),
            groups=GROUPS,
            use_window=10,
            max_lag=6.0,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    expected_cells = 2 * sum(
        len(levels) for _, levels in DEFAULT_PERTURBATIONS
    )
    assert len(points) == expected_cells
    for point in points:
        assert point.groups == GROUPS
        assert 0.0 <= point.ctx_use_rate < 1000.0
        assert 0.0 <= point.sit_act_rate < 1000.0
        assert 0.0 <= point.survival_rate <= 1.0
    # Every (perturbation, intensity) cell has a paired async-on row.
    sync_cells = {
        (p.perturbation, p.intensity) for p in points if not p.async_check
    }
    async_cells = {
        (p.perturbation, p.intensity) for p in points if p.async_check
    }
    assert sync_cells == async_cells

    table = format_asynchrony_table(points)
    write_report("async_degradation", table)
    write_bench_json(
        OUT_JSON,
        "async_degradation",
        {
            "app": "smart-phone",
            "groups": GROUPS,
            "max_lag": 6.0,
            "points": points_as_records(points),
        },
    )
