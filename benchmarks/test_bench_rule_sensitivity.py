"""Section 5.2's open question: how much Rule 2' is enough?

The paper ends its case study investigating "what percentage value
[of Rule 2' satisfaction] is sufficient for guaranteeing satisfactory
results from the drop-bad resolution strategy".  This benchmark sweeps
the error rate on the Call Forwarding workload, measuring per-run
Rule 1 / Rule 2' satisfaction (with the instrumented strategy) next to
the run's removal precision and survival rate, exposing the
rule-satisfaction -> resolution-quality relationship.
"""

from conftest import write_report

from repro.apps.call_forwarding import CallForwardingApp
from repro.experiments.report import format_rule_sensitivity
from repro.experiments.rules_sweep import run_rule_sensitivity


def _run(groups: int):
    return run_rule_sensitivity(
        CallForwardingApp(),
        groups=groups,
        use_window=10,
        workload_kwargs={"duration": 300.0},
    )


def test_rule_sensitivity(benchmark, bench_groups):
    points = benchmark.pedantic(
        _run, args=(bench_groups,), rounds=1, iterations=1
    )
    write_report(
        "sec5_2_rule_sensitivity",
        "Section 5.2 open question -- rule satisfaction vs drop-bad "
        "quality (Call Forwarding)\n" + format_rule_sensitivity(points),
    )

    for point in points:
        # Rule 1 must hold essentially always: our constraints are
        # correct, so only corrupted contexts trigger them.  (A tiny
        # slack absorbs corrupted-vs-threshold borderline artefacts.)
        assert point.rule1_rate > 0.9
        assert 0.0 <= point.rule2_relaxed_rate <= 1.0
        assert point.observations > 0

    # Across the sweep, better rule-2' satisfaction must accompany
    # better removal precision (Spearman-style: the orderings agree on
    # the extremes).
    ordered = sorted(points, key=lambda p: p.rule2_relaxed_rate)
    assert (
        ordered[-1].removal_precision >= ordered[0].removal_precision - 0.05
    )
