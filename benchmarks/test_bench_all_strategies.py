"""The complete strategy survey (paper Section 2).

Figures 9/10 plot four strategies; Section 2.3 additionally discusses
drop-random and user-specified policies, noting their results are
"unreliable (depending on random choices and user policies)".  This
benchmark runs all six on the Call Forwarding workload so the whole
survey is on one table, including the discard confusion scores.
"""

from conftest import write_report

from repro.analysis.confusion import confusion_from_log
from repro.apps.call_forwarding import CallForwardingApp
from repro.core.strategy import make_strategy
from repro.experiments.harness import (
    ComparisonConfig,
    default_strategy_factory as _instantiate_strategy,
    run_comparison,
)
from repro.experiments.report import STRATEGY_LABELS, format_table

STRATEGIES = (
    "opt-r",
    "drop-bad",
    "drop-latest",
    "drop-all",
    "drop-random",
    "user-specified",
)
ERR_RATE = 0.3


def _run(groups: int):
    config = ComparisonConfig(
        strategies=STRATEGIES,
        err_rates=(ERR_RATE,),
        groups_per_point=groups,
        use_window=10,
        workload_kwargs=(("duration", 300.0),),
    )
    return run_comparison(CallForwardingApp(), config)


def test_all_strategies_survey(benchmark, bench_groups):
    result = benchmark.pedantic(
        _run, args=(bench_groups,), rounds=1, iterations=1
    )
    rows = []
    for name in STRATEGIES:
        point = result.point(name, ERR_RATE)
        rows.append(
            [
                STRATEGY_LABELS.get(name, name),
                f"{point.ctx_use_rate:6.1f} ±{point.ctx_use_rate_std:4.1f}",
                f"{point.sit_act_rate:6.1f}",
                f"{point.raw['removal_precision']:.3f}",
                f"{point.raw['survival_rate']:.3f}",
            ]
        )
    write_report(
        "survey_all_strategies",
        f"Section 2 survey -- all six strategies "
        f"(Call Forwarding, err {ERR_RATE:.0%}, {bench_groups} groups)\n"
        + format_table(
            ["strategy", "ctxUse%", "sitAct%", "precision", "survival"],
            rows,
        ),
    )

    bad = result.point("drop-bad", ERR_RATE)
    for name in ("drop-latest", "drop-all", "drop-random", "user-specified"):
        other = result.point(name, ERR_RATE)
        assert bad.ctx_use_rate > other.ctx_use_rate, name
    assert result.point("opt-r", ERR_RATE).ctx_use_rate == 100.0
