"""Extension benchmark: impact-oriented drop-bad (paper future work).

The paper's conclusion proposes adjusting resolution actions by their
estimated impact on applications; `repro.core.impact_aware` implements
it.  This benchmark compares plain drop-bad against the impact-aware
variant whose model protects situation-relevant badge contexts, on the
Call Forwarding workload.
"""

from conftest import write_report

from repro.apps.call_forwarding import CallForwardingApp
from repro.core.impact_aware import ImpactAwareDropBad, situation_relevance_model
from repro.core.strategy import make_strategy
from repro.experiments.harness import run_group
from repro.experiments.metrics import average_metrics, normalized_rate
from repro.experiments.report import format_table

ERR_RATE = 0.3

#: Badge values the Call Forwarding situations care about.
_RELEVANT_ROOMS = {"office-2", "meeting"}


def _impact_strategy():
    return ImpactAwareDropBad(
        impact=situation_relevance_model(
            lambda ctx: ctx.ctx_type == "badge"
            and ctx.value in _RELEVANT_ROOMS
        )
    )


def _run(groups: int):
    app = CallForwardingApp()
    streams = [
        app.generate_workload(ERR_RATE, seed=600 + g, duration=300.0)
        for g in range(groups)
    ]
    variants = {
        "opt-r": lambda: make_strategy("opt-r"),
        "drop-bad": lambda: make_strategy("drop-bad"),
        "drop-bad-impact": _impact_strategy,
    }
    averaged = {}
    for name, factory in variants.items():
        averaged[name] = average_metrics(
            [
                run_group(
                    app,
                    factory(),
                    stream,
                    err_rate=ERR_RATE,
                    seed=600 + g,
                    use_window=10,
                )
                for g, stream in enumerate(streams)
            ]
        )
    return averaged


def test_impact_extension(benchmark, bench_groups):
    averaged = benchmark.pedantic(
        _run, args=(bench_groups,), rounds=1, iterations=1
    )
    base = averaged["opt-r"]
    rows = []
    for name in ("drop-bad", "drop-bad-impact"):
        metrics = averaged[name]
        rows.append(
            [
                name,
                f"{normalized_rate(metrics['contexts_used_expected'], base['contexts_used_expected']):6.1f}",
                f"{normalized_rate(metrics['situations_activated_correct'], base['situations_activated_correct']):6.1f}",
                f"{metrics['removal_precision']:.3f}",
                f"{metrics['survival_rate']:.3f}",
            ]
        )
    write_report(
        "extension_impact_aware",
        "Extension -- impact-oriented drop-bad (CF, err 30%)\n"
        + format_table(
            ["strategy", "ctxUse%", "sitAct%", "precision", "survival"],
            rows,
        ),
    )

    impact = averaged["drop-bad-impact"]
    plain = averaged["drop-bad"]
    # Protecting situation-relevant contexts must not lose expected
    # contexts overall...
    assert (
        impact["contexts_used_expected"]
        >= plain["contexts_used_expected"] - 1.0
    )
    # ...and must preserve at least as many correct activations.
    assert (
        impact["situations_activated_correct"]
        >= plain["situations_activated_correct"] - 1.0
    )
