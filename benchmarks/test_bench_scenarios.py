"""Figures 1-5: the scenario walkthroughs.

Regenerates the tracked inconsistency sets and count values of both
scenarios under the basic and refined constraints (Figures 1, 4, 5),
and the per-strategy resolution outcomes of Figures 2 and 3, asserting
the paper's narrative: drop-latest fails scenario B, drop-all loses
correct contexts in both, drop-bad discards exactly d3 everywhere.
"""

from conftest import write_report

from repro.experiments.report import format_scenarios, format_table
from repro.experiments.scenarios import (
    SCENARIOS,
    count_values,
    replay_strategy,
    tracked_inconsistencies,
)

STRATEGIES = ("opt-r", "drop-bad", "drop-latest", "drop-all")


def _run():
    counts = {
        (scenario, refined): count_values(scenario, refined)
        for scenario in SCENARIOS
        for refined in (False, True)
    }
    outcomes = [
        replay_strategy(strategy, scenario, refined=refined)
        for strategy in STRATEGIES
        for scenario in SCENARIOS
        for refined in (False, True)
    ]
    return counts, outcomes


def test_scenario_walkthroughs(benchmark):
    counts, outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)

    count_rows = [
        [
            scenario,
            "refined" if refined else "basic",
            *[values[f"d{i}"] for i in range(1, 6)],
        ]
        for (scenario, refined), values in sorted(counts.items())
    ]
    write_report(
        "fig1_5_scenarios",
        "Figures 1-5 -- count values per scenario\n"
        + format_table(
            ["scenario", "constraints", "d1", "d2", "d3", "d4", "d5"],
            count_rows,
        )
        + "\n\nResolution outcomes (Figures 2-3 + Section 3):\n"
        + format_scenarios(outcomes),
    )

    # Figure 4/5 count values.
    assert counts[("A", False)] == {"d1": 0, "d2": 1, "d3": 2, "d4": 1, "d5": 0}
    assert counts[("A", True)] == {"d1": 1, "d2": 1, "d3": 4, "d4": 1, "d5": 1}
    assert counts[("B", True)] == {"d1": 0, "d2": 0, "d3": 2, "d4": 1, "d5": 1}

    # Figure 1's Δ.
    assert tracked_inconsistencies("A", False) == {
        frozenset({"d2", "d3"}),
        frozenset({"d3", "d4"}),
    }

    # The narrative: drop-bad and OPT-R always correct, drop-latest
    # wrong on scenario B, drop-all never correct.
    by_key = {(o.strategy, o.scenario, o.refined): o for o in outcomes}
    for scenario in SCENARIOS:
        for refined in (False, True):
            assert by_key[("drop-bad", scenario, refined)].correct
            assert by_key[("opt-r", scenario, refined)].correct
            assert not by_key[("drop-all", scenario, refined)].correct
    assert not by_key[("drop-latest", "B", False)].correct
    assert by_key[("drop-latest", "A", False)].correct
