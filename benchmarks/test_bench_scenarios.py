"""Scenario-pack bench: per-pack throughput and inconsistency measures.

Runs every registered pack once per host (middleware and the inline
engine) at its reference error rate under ``drop-bad``, and records a
``scenario_packs`` column into ``benchmarks/out/BENCH_engine.json``:
contexts/second per (pack, host), the host throughput ratio, and the
Livshits-style inconsistency-measure summary of both the raw and the
delivered stream (the residual inconsistency the strategy let
through).

Decision identity between the two hosts is asserted hard -- the same
stream under the same strategy must hash to the same decision
signature regardless of where it ran.  Throughput is fail-soft: an
inline engine more than 50% slower than the single-pool middleware on
the same pack warns rather than fails, because the column exists to
make drift visible across commits, not to flake CI on a loaded
machine.  The measured-inconsistency invariants (resolution never
increases MI; the raw reference stream meets the pack's declared
``min_raw_mi`` floor) are quality gates and stay hard.
"""

import pathlib
import time
import warnings

from conftest import write_report

from repro.engine import write_bench_json
from repro.experiments.report import format_table
from repro.scenarios import PackRunner, get_pack, pack_names

OUT_JSON = pathlib.Path(__file__).parent / "out" / "BENCH_engine.json"
HOSTS = ("middleware", "inline")
STRATEGY = "drop-bad"


def _timed_run(runner, host):
    """One resolution run with the static measures pass kept OUTSIDE
    the timed region (it re-checks the full stream; benchmarking it
    with the pipeline would double-count detection work)."""
    started = time.perf_counter()
    result = runner.run(STRATEGY, host=host, measures=False)
    elapsed = time.perf_counter() - started
    return elapsed, result


def test_scenario_pack_throughput(benchmark):
    runners = {name: PackRunner(get_pack(name), shards=2) for name in sorted(pack_names())}

    def run():
        rows = {}
        for name, runner in runners.items():
            rows[name] = {
                host: _timed_run(runner, host) for host in HOSTS
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    record = {"strategy": STRATEGY, "packs": {}}
    table_rows = []
    for name, by_host in rows.items():
        runner = runners[name]
        pack = runner.pack
        (mw_s, mw), (il_s, il) = by_host["middleware"], by_host["inline"]

        # The pack layer's equivalence bar, at bench scale: same
        # stream, same strategy, same decisions on every host.
        assert il.signature() == mw.signature(), name

        # One measured run (host-independent: measures are a static
        # property of the raw/delivered context sets).
        measured = runner.run(STRATEGY)
        raw, res = measured.measures_raw, measured.measures_delivered
        assert raw.mi_count >= pack.envelope.min_raw_mi, name
        assert res.mi_count <= raw.mi_count, name

        n = mw.metrics.contexts_total
        mw_cps = n / mw_s if mw_s > 0 else float("inf")
        il_cps = n / il_s if il_s > 0 else float("inf")
        ratio = il_cps / mw_cps if mw_cps > 0 else float("inf")
        record["packs"][name] = {
            "n_contexts": n,
            "delivered": len(mw.delivered_ids),
            "discarded": len(mw.discarded_ids),
            "middleware_contexts_per_second": mw_cps,
            "inline_contexts_per_second": il_cps,
            "inline_vs_middleware": ratio,
            "measures_raw": raw.as_record(),
            "measures_delivered": res.as_record(),
        }
        table_rows.append(
            [
                name,
                n,
                f"{mw_cps:.0f}",
                f"{il_cps:.0f}",
                f"{ratio:.2f}x",
                raw.mi_count,
                res.mi_count,
                f"{res.problematic_ratio:.3f}",
            ]
        )
        if ratio < 0.5:
            warnings.warn(
                f"pack {name!r}: inline engine is >50% slower than the "
                f"middleware on the same stream ({ratio:.2f}x); "
                "investigate before shipping",
                stacklevel=1,
            )

    write_bench_json(OUT_JSON, "scenario_packs", record)
    write_report(
        "scenario_packs",
        "Scenario packs -- throughput and residual inconsistency "
        f"({STRATEGY}, reference error rate, 2 shards)\n"
        + format_table(
            [
                "pack",
                "n",
                "mw ctx/s",
                "inline ctx/s",
                "ratio",
                "raw MI",
                "resid MI",
                "resid I_P",
            ],
            table_rows,
        ),
    )
