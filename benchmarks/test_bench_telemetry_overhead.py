"""Telemetry overhead guard: instrumentation must stay under 10%.

Runs the engine scalability workload with telemetry off (the default:
every stage hook is one attribute check on a shared no-op) and with a
live bundle recording spans and latency histograms, and compares
best-of-N elapsed times.  The overhead percentage is recorded into
``benchmarks/out/BENCH_engine.json`` under ``telemetry_overhead`` so
regressions are visible across commits.

Measurement protocol: the off/on arms are **interleaved** -- each
round runs one uninstrumented engine and one instrumented engine
back-to-back, and each arm keeps its best round.  Sequential blocks
(all-off then all-on) are unusable here: system-load drift between the
blocks has produced apparent overheads from -12% to +25% on identical
code, an order of magnitude larger than the real effect.  Interleaving
puts both arms through the same load phases; best-of-N then converges
on each arm's true floor.

The 10% ceiling is the acceptance bound for the observability layer:
above it, "instrument the benchmarks by default" stops being a
reasonable policy.
"""

import pathlib
import time

from conftest import write_report

from repro.engine import EngineConfig, ShardedEngine, write_bench_json
from repro.engine.workload import scalability_workload
from repro.obs import Telemetry

OUT_JSON = pathlib.Path(__file__).parent / "out" / "BENCH_engine.json"
N_CONTEXTS = 2000
SHARDS = 4
ROUNDS = 7
MAX_OVERHEAD_PCT = 10.0


def _run_once(constraints, contexts, telemetry):
    engine = ShardedEngine(
        constraints,
        strategy="drop-latest",
        config=EngineConfig(shards=SHARDS, mode="inline", use_window=20),
        telemetry=telemetry,
    )
    started = time.perf_counter()
    engine.run(contexts)
    return time.perf_counter() - started


def test_telemetry_overhead(benchmark):
    constraints, contexts = scalability_workload(N_CONTEXTS)

    def run():
        best_off = best_on = None
        for _ in range(ROUNDS):
            elapsed_off = _run_once(constraints, contexts, None)
            elapsed_on = _run_once(
                constraints, contexts, Telemetry(enabled=True)
            )
            if best_off is None or elapsed_off < best_off:
                best_off = elapsed_off
            if best_on is None or elapsed_on < best_on:
                best_on = elapsed_on
        return best_off, best_on

    off, on = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead_pct = (on - off) / off * 100.0

    record = {
        "n_contexts": N_CONTEXTS,
        "shards": SHARDS,
        "rounds": ROUNDS,
        "elapsed_s_telemetry_off": off,
        "elapsed_s_telemetry_on": on,
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }
    write_bench_json(OUT_JSON, "telemetry_overhead", record)
    write_report(
        "telemetry_overhead",
        "Telemetry overhead on the engine throughput workload\n"
        f"({N_CONTEXTS} contexts, {SHARDS} shards, interleaved best of "
        f"{ROUNDS} rounds)\n\n"
        f"  telemetry off: {off:.3f}s\n"
        f"  telemetry on:  {on:.3f}s\n"
        f"  overhead:      {overhead_pct:+.1f}%  (bound: {MAX_OVERHEAD_PCT:.0f}%)",
    )
    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"telemetry overhead {overhead_pct:.1f}% exceeds "
        f"{MAX_OVERHEAD_PCT:.0f}% bound"
    )
