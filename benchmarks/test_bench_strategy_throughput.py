"""Performance benchmark: middleware throughput per strategy.

Measures contexts processed per second through the full pipeline
(detection + resolution + situation evaluation) for each strategy --
the practical overhead of hosting the resolution plug-in, mirroring
the paper's note that resolution runs as a middleware service on
commodity hardware.
"""

import pytest

from repro.apps.call_forwarding import CallForwardingApp
from repro.core.strategy import make_strategy
from repro.experiments.harness import run_group

APP = CallForwardingApp()
STREAM = APP.generate_workload(0.3, seed=88, duration=200.0)


@pytest.mark.parametrize(
    "strategy_name",
    ["opt-r", "drop-latest", "drop-all", "drop-bad"],
)
def test_pipeline_throughput(benchmark, strategy_name):
    def run():
        return run_group(
            APP,
            make_strategy(strategy_name),
            STREAM,
            err_rate=0.3,
            seed=88,
            use_window=10,
        )

    metrics = benchmark.pedantic(run, rounds=3, iterations=1)
    assert metrics.contexts_total == len(STREAM)
