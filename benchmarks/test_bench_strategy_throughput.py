"""Performance benchmark: middleware throughput per strategy.

Measures contexts processed per second through the full pipeline
(detection + resolution + situation evaluation) for each strategy --
the practical overhead of hosting the resolution plug-in, mirroring
the paper's note that resolution runs as a middleware service on
commodity hardware.
"""

import time

import pytest

from repro.apps.call_forwarding import CallForwardingApp
from repro.core.strategy import make_strategy
from repro.experiments.harness import run_group
from repro.middleware.pool import ContextPool
from tests.conftest import make_context

APP = CallForwardingApp()
STREAM = APP.generate_workload(0.3, seed=88, duration=200.0)


@pytest.mark.parametrize(
    "strategy_name",
    ["opt-r", "drop-latest", "drop-all", "drop-bad"],
)
def test_pipeline_throughput(benchmark, strategy_name):
    def run():
        return run_group(
            APP,
            make_strategy(strategy_name),
            STREAM,
            err_rate=0.3,
            seed=88,
            use_window=10,
        )

    metrics = benchmark.pedantic(run, rounds=3, iterations=1)
    assert metrics.contexts_total == len(STREAM)


def _per_remove_seconds(n_contexts: int) -> float:
    """Best-of-3 per-remove cost of draining a pool of ``n_contexts``."""
    contexts = [make_context(ctx_id=f"p{i}") for i in range(n_contexts)]
    best = float("inf")
    for _ in range(3):
        pool = ContextPool()
        for ctx in contexts:
            pool.add(ctx)
        started = time.perf_counter()
        for ctx in contexts:
            pool.remove(ctx)
        best = min(best, (time.perf_counter() - started) / n_contexts)
    return best


def test_pool_remove_stays_constant_time_at_10k_contexts():
    # Discard is on the resolution hot path.  With the old side list
    # (`_order.remove`) each remove scanned/shifted O(live) entries, so
    # per-remove cost grew ~20x from 1k to 20k contexts; the ordered
    # dict keeps it flat.  The bound is generous (timing noise), but
    # far below the linear blow-up it guards against.
    small = _per_remove_seconds(1_000)
    large = _per_remove_seconds(20_000)
    assert large < small * 8, (
        f"pool remove degraded super-linearly: {small * 1e9:.0f}ns/remove "
        f"at 1k contexts vs {large * 1e9:.0f}ns/remove at 20k"
    )
