"""Performance benchmark: middleware throughput per strategy.

Measures contexts processed per second through the full pipeline
(detection + resolution + situation evaluation) for each strategy --
the practical overhead of hosting the resolution plug-in, mirroring
the paper's note that resolution runs as a middleware service on
commodity hardware.
"""

import time

import pytest

from repro.apps.call_forwarding import CallForwardingApp
from repro.core.strategy import make_strategy
from repro.experiments.harness import run_group
from repro.middleware.pool import ContextPool
from tests.conftest import make_context

APP = CallForwardingApp()
STREAM = APP.generate_workload(0.3, seed=88, duration=200.0)


@pytest.mark.parametrize(
    "strategy_name",
    ["opt-r", "drop-latest", "drop-all", "drop-bad"],
)
def test_pipeline_throughput(benchmark, strategy_name):
    def run():
        return run_group(
            APP,
            make_strategy(strategy_name),
            STREAM,
            err_rate=0.3,
            seed=88,
            use_window=10,
        )

    metrics = benchmark.pedantic(run, rounds=3, iterations=1)
    assert metrics.contexts_total == len(STREAM)


def _per_remove_seconds(n_contexts: int) -> float:
    """Best-of-3 per-remove cost of draining a pool of ``n_contexts``."""
    contexts = [make_context(ctx_id=f"p{i}") for i in range(n_contexts)]
    best = float("inf")
    for _ in range(3):
        pool = ContextPool()
        for ctx in contexts:
            pool.add(ctx)
        started = time.perf_counter()
        for ctx in contexts:
            pool.remove(ctx)
        best = min(best, (time.perf_counter() - started) / n_contexts)
    return best


def test_pool_remove_stays_constant_time_at_10k_contexts():
    # Discard is on the resolution hot path.  With the old side list
    # (`_order.remove`) each remove scanned/shifted O(live) entries, so
    # per-remove cost grew ~20x from 1k to 20k contexts; the ordered
    # dict keeps it flat.  The bound is generous (timing noise), but
    # far below the linear blow-up it guards against.
    small = _per_remove_seconds(1_000)
    large = _per_remove_seconds(20_000)
    assert large < small * 8, (
        f"pool remove degraded super-linearly: {small * 1e9:.0f}ns/remove "
        f"at 1k contexts vs {large * 1e9:.0f}ns/remove at 20k"
    )


def _per_discard_seconds(n_pending: int) -> float:
    """Best-of-3 per-discard cost with ``n_pending`` scheduled uses."""
    from repro.runtime.scheduler import UseScheduler

    contexts = [make_context(ctx_id=f"q{i}") for i in range(n_pending)]
    best = float("inf")
    for _ in range(3):
        scheduler = UseScheduler(use_window=n_pending + 1)
        for ctx in contexts:
            scheduler.schedule(ctx, 0, ctx.timestamp)
        started = time.perf_counter()
        for ctx in contexts:
            scheduler.discard(ctx.ctx_id)
        best = min(best, (time.perf_counter() - started) / n_pending)
    return best


def test_scheduler_discard_stays_constant_time_at_20k_pending():
    # The historical unschedule rebuilt the whole pending-use deque per
    # discard (`Middleware._unschedule` / `StreamDriver._unschedule`):
    # O(pending) each, quadratic to drain a window.  The UseScheduler's
    # id-index + tombstones make discard amortized O(1): per-discard
    # cost must not scale with the queue length.
    small = _per_discard_seconds(1_000)
    large = _per_discard_seconds(20_000)
    assert large < small * 8, (
        f"scheduler discard scales with queue length: "
        f"{small * 1e9:.0f}ns/discard at 1k pending vs "
        f"{large * 1e9:.0f}ns/discard at 20k"
    )
