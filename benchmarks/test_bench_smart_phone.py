"""Extension benchmark: the smart-phone motivating example at scale.

The paper's Section 1 motivates context-awareness with the adaptive
smart phone; this benchmark runs the same Figure 9/10-style comparison
on that application (three heterogeneous context types: venue, noise,
calendar), with paired significance tests confirming the orderings.

The workload deliberately contains corruptions that only a *single*
constraint can expose (a mildly wrong microphone level violates just
the noise/venue agreement), which produces 1-vs-1 count ties --
drop-bad's known weak spot (Section 5.1).  The comparison therefore
also includes the conservative no-tie-discard drop-bad variant, which
recovers the lost ground.
"""

from conftest import write_report

from repro.apps.smart_phone import SmartPhoneApp
from repro.core.drop_bad import DropBadStrategy
from repro.experiments.harness import (
    ComparisonConfig,
    default_strategy_factory as _instantiate_strategy,
    run_comparison,
)
from repro.experiments.report import format_comparison
from repro.experiments.stats import compare_strategies


def _factory(name: str, seed: int):
    if name == "drop-bad-conservative":
        strategy = DropBadStrategy(discard_on_tie=False)
        strategy.name = "drop-bad-conservative"  # distinct metrics key
        return strategy
    return _instantiate_strategy(name, seed)


def _run(groups: int):
    config = ComparisonConfig(
        strategies=(
            "opt-r",
            "drop-bad",
            "drop-bad-conservative",
            "drop-latest",
            "drop-all",
        ),
        groups_per_point=groups,
        use_window=8,
        workload_kwargs=(("days", 2),),
    )
    return run_comparison(SmartPhoneApp(), config, strategy_factory=_factory)


def test_smart_phone_comparison(benchmark, bench_groups):
    result = benchmark.pedantic(
        _run, args=(bench_groups,), rounds=1, iterations=1
    )
    significance_lines = []
    for err_rate in result.config.err_rates:
        comparison = compare_strategies(
            result, "drop-bad", "drop-all", err_rate
        )
        significance_lines.append(
            f"  err {err_rate:.0%}: drop-bad - drop-all = "
            f"{comparison.mean_difference:+.1f} expected contexts/run "
            f"(paired t p={comparison.t_pvalue:.4f}, "
            f"sign p={comparison.sign_pvalue:.4f})"
        )
    write_report(
        "extension_smart_phone",
        format_comparison(
            result,
            f"Extension -- smart phone motivating example "
            f"({bench_groups} groups/point)",
            show_std=True,
        )
        + "\n\nPaired significance (drop-bad vs drop-all):\n"
        + "\n".join(significance_lines),
    )

    for err_rate in result.config.err_rates:
        bad = result.point("drop-bad", err_rate)
        conservative = result.point("drop-bad-conservative", err_rate)
        all_ = result.point("drop-all", err_rate)
        assert bad.ctx_use_rate > all_.ctx_use_rate
        assert bad.ctx_use_rate <= 100.0 + 1e-9
        # The workload's single-constraint-detectable corruptions make
        # tie discards costly; refusing them must recover context use.
        assert conservative.ctx_use_rate >= bad.ctx_use_rate
    # At 30/40% error the drop-bad advantage must be significant.
    final = compare_strategies(result, "drop-bad", "drop-all", 0.4)
    assert final.a_beats_b
    if bench_groups >= 5:
        assert final.t_pvalue < 0.05
