"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the single accounting surface of the telemetry
subsystem (docs/observability.md).  Design constraints:

* **dependency-free** -- plain stdlib, no prometheus_client;
* **thread-safe** -- one lock per registry guards family creation, one
  lock per instrument guards updates, so shard threads and bus
  subscribers can record concurrently;
* **mergeable** -- a registry serializes to a plain-dict snapshot that
  travels over the engine's process-mode result queues and merges back
  into the parent registry (counters and histograms add, gauges keep
  the maximum);
* **fixed buckets** -- histograms use fixed boundaries chosen at
  creation, so merging never has to reconcile bucket layouts.

Instruments are identified by ``(family name, label set)``; the first
``counter``/``gauge``/``histogram`` call for a family fixes its type
(and bucket boundaries), later calls with a conflicting type raise.
"""

from __future__ import annotations

import logging
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "FINE_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

_log = logging.getLogger("repro.obs")

#: Default latency buckets (seconds): 50us .. 2.5s, roughly log-spaced.
#: Wide enough for a full batch, fine enough for one incremental check.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

#: Fine-grained latency buckets (seconds): 10us .. 10s on a 1-2-5
#: ladder.  The default buckets above are throughput-oriented (the
#: coarse top end suits whole-batch timings); the serving subsystem's
#: ingest->decision percentiles live well under a millisecond at low
#: load and need the sub-100us resolution, while sustained-load tails
#: can stretch past the default 2.5s ceiling.  Pass these (or any
#: custom ladder) through the ``buckets`` parameter -- the default
#: layout is unchanged, so existing snapshots keep merging.
FINE_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00001,
    0.00002,
    0.00005,
    0.0001,
    0.0002,
    0.0005,
    0.001,
    0.002,
    0.005,
    0.01,
    0.02,
    0.05,
    0.1,
    0.2,
    0.5,
    1.0,
    2.0,
    5.0,
    10.0,
)

#: Canonical label-set key: sorted tuple of (key, value) pairs.
LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Mapping[str, str]]) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (events, contexts, discards)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value (pool size, shard constraint count)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Fixed-boundary histogram with cumulative-le bucket semantics.

    ``counts[i]`` is the number of observations ``<= buckets[i]`` minus
    those in earlier buckets; the final slot counts observations above
    the largest boundary (the implicit ``+Inf`` bucket).
    """

    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be non-empty, sorted, unique")
        self._lock = threading.Lock()
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def percentile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bucket boundary).

        ``q`` in [0, 1]; returns 0.0 for an empty histogram and the
        largest boundary for observations beyond it.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.buckets[-1]
        return self.buckets[-1]


_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named, labelled instruments with snapshot/merge support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: family name -> {"type": ..., "help": ..., "buckets": ...}
        self._families: Dict[str, Dict[str, object]] = {}
        self._series: Dict[Tuple[str, LabelsKey], object] = {}

    # -- instrument access --------------------------------------------------

    def counter(
        self,
        name: str,
        *,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        return self._get(name, "counter", help, labels)  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        *,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        return self._get(name, "gauge", help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        *,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get(name, "histogram", help, labels, buckets)  # type: ignore[return-value]

    def _get(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Optional[Mapping[str, str]],
        buckets: Optional[Sequence[float]] = None,
    ):
        key = (name, _labels_key(labels))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = {"type": kind, "help": help}
                if kind == "histogram":
                    family["buckets"] = tuple(
                        float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS)
                    )
                self._families[name] = family
            elif family["type"] != kind:
                raise ValueError(
                    f"metric {name!r} is a {family['type']}, not a {kind}"
                )
            instrument = self._series.get(key)
            if instrument is None:
                if kind == "histogram":
                    instrument = Histogram(family["buckets"])  # type: ignore[arg-type]
                else:
                    instrument = _INSTRUMENTS[kind]()
                self._series[key] = instrument
            return instrument

    # -- queries -------------------------------------------------------------

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> float:
        """Current value of a counter/gauge series; 0.0 when absent."""
        instrument = self._series.get((name, _labels_key(labels)))
        if instrument is None or isinstance(instrument, Histogram):
            return 0.0
        return instrument.value  # type: ignore[union-attr]

    def series_labels(self, name: str) -> List[Dict[str, str]]:
        """All label sets recorded for a family, sorted."""
        with self._lock:
            keys = sorted(lk for fn, lk in self._series if fn == name)
        return [dict(lk) for lk in keys]

    def families(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Serialize to a plain JSON-ready dict (queue- and file-safe)."""
        with self._lock:
            items = sorted(self._series.items())
            families = {
                name: dict(meta) for name, meta in self._families.items()
            }
        series = []
        for (name, labels_key), instrument in items:
            entry: Dict[str, object] = {
                "name": name,
                "labels": dict(labels_key),
            }
            if isinstance(instrument, Histogram):
                entry["counts"] = list(instrument.counts)
                entry["sum"] = instrument.sum
                entry["count"] = instrument.count
            else:
                entry["value"] = instrument.value
            series.append(entry)
        for meta in families.values():
            if "buckets" in meta:
                meta["buckets"] = list(meta["buckets"])  # type: ignore[index]
        return {"families": families, "series": series}

    def merge_snapshot(self, data: Optional[Mapping[str, object]]) -> int:
        """Fold a snapshot into this registry; returns series merged.

        Counters and histograms add; gauges keep the maximum (the only
        merge with a scale-free meaning across shards).  Malformed
        entries -- e.g. from a worker that died mid-serialization --
        are skipped with a warning instead of corrupting the registry.
        """
        if not isinstance(data, Mapping):
            if data is not None:
                _log.warning(
                    "ignoring non-mapping telemetry snapshot: %r", type(data)
                )
            return 0
        families = data.get("families")
        series = data.get("series")
        if not isinstance(families, Mapping) or not isinstance(series, list):
            _log.warning("ignoring malformed telemetry snapshot (no series)")
            return 0
        merged = 0
        for entry in series:
            try:
                merged += self._merge_entry(families, entry)
            except (KeyError, TypeError, ValueError) as error:
                _log.warning(
                    "skipping unmergeable telemetry series %r: %s", entry, error
                )
        return merged

    def _merge_entry(
        self, families: Mapping[str, object], entry: Mapping[str, object]
    ) -> int:
        name = entry["name"]
        meta = families[name]
        kind = meta["type"]  # type: ignore[index]
        labels = entry.get("labels") or {}
        if kind == "counter":
            self._get(name, "counter", str(meta.get("help", "")), labels).inc(  # type: ignore[union-attr]
                float(entry["value"])
            )
        elif kind == "gauge":
            gauge = self._get(name, "gauge", str(meta.get("help", "")), labels)
            gauge.set(max(gauge.value, float(entry["value"])))  # type: ignore[union-attr]
        elif kind == "histogram":
            buckets = tuple(float(b) for b in meta["buckets"])  # type: ignore[index]
            histogram = self._get(
                name, "histogram", str(meta.get("help", "")), labels, buckets
            )
            counts = list(entry["counts"])
            if len(counts) != len(histogram.counts):  # type: ignore[union-attr]
                raise ValueError("bucket layout mismatch")
            with histogram._lock:  # type: ignore[union-attr]
                for index, count in enumerate(counts):
                    histogram.counts[index] += int(count)  # type: ignore[union-attr]
                histogram.sum += float(entry["sum"])  # type: ignore[union-attr]
                histogram.count += int(entry["count"])  # type: ignore[union-attr]
        else:
            raise ValueError(f"unknown instrument type {kind!r}")
        return 1

    def merge(self, other: "MetricsRegistry") -> int:
        """Fold another live registry into this one."""
        return self.merge_snapshot(other.snapshot())

    def clear(self) -> None:
        """Drop every family and series (between experiment groups)."""
        with self._lock:
            self._families.clear()
            self._series.clear()
