"""The telemetry bundle: one registry + one tracer, pluggable anywhere.

``Telemetry`` is what instrumented components hold: the middleware
manager, the resolution service, the constraint checker and the engine
shards all accept one and record through it.  A disabled bundle turns
every hot-path hook into a shared no-op, so un-instrumented runs pay
one attribute check per stage and nothing else.

The canonical instrument names (see docs/observability.md):

* ``repro_stage_seconds{stage=receive|check|resolve|use|deliver|discard}``
  -- per-stage latency histograms, fed by :meth:`Telemetry.stage`;
* ``strategy_discards_total{strategy=...}`` -- discard decisions per
  strategy plug-in;
* ``engine_shard_*_total{shard=...}`` -- the per-shard accounting the
  engine's :class:`~repro.engine.metrics.EngineMetrics` is a view of;
* ``engine_queue_wait_seconds`` / ``engine_batch_seconds`` -- process-
  mode queue wait and batch latency.

:meth:`Telemetry.stage` records **both** a span (named ``stage.<name>``,
nested under any open span) and one observation in the stage latency
histogram, so traces and metrics never disagree about what was timed.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional, Sequence

from .registry import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry
from .tracer import SpanTracer

__all__ = ["Telemetry", "NULL_TELEMETRY", "NULL_HISTOGRAM", "STAGE_HISTOGRAM"]

#: Family name of the per-stage latency histogram.
STAGE_HISTOGRAM = "repro_stage_seconds"


class _StageTimer:
    """Context manager recording one span + one histogram observation.

    The tracer's open/close protocol is inlined here (with the
    per-thread span stack cached after the first entry) so the span
    and the histogram share a single ``perf_counter`` pair, a single
    lock round-trip on the ring and no per-call method dispatch --
    stage timers run several times per context (see the telemetry
    overhead benchmark).  The cached stack pins the timer to the
    thread that first enters it, which is the documented contract:
    one owner component, one thread.
    """

    __slots__ = (
        "_tracer", "_name", "_attrs", "_histogram",
        "_stack", "_start", "_span_id", "_parent_id",
    )

    def __init__(self, tracer, name: str, attrs, histogram: Histogram) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._histogram = histogram
        self._stack = None

    def __enter__(self) -> "_StageTimer":
        tracer = self._tracer
        stack = self._stack
        if stack is None:
            stack = self._stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        span_id = next(tracer._ids)
        self._span_id = span_id
        stack.append(span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        self._histogram.observe(duration)
        stack = self._stack
        if stack:
            stack.pop()
        attrs = self._attrs
        if exc_type is not None:
            # Copy before annotating: reusable timers share one attrs
            # dict across all their spans.
            attrs = dict(attrs)
            attrs["error"] = exc_type.__name__
        tracer = self._tracer
        entry = (
            self._name, tracer._wall_base + self._start, duration,
            self._span_id, self._parent_id, attrs,
        )
        with tracer._lock:
            tracer._ring.append(entry)
            tracer.counts[self._name] = tracer.counts.get(self._name, 0) + 1


class _StageObserver:
    """Histogram-only reusable timer: latency without a span.

    The cheapest instrumented tier, for high-frequency wrapper stages
    whose interesting sub-work is already spanned (the engine
    pipeline's receive/use wrappers around the spanned check/resolve/
    deliver stages).
    """

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_StageObserver":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


#: Shared attrs dict for attr-less reusable timers; never mutated.
_NO_ATTRS: Dict[str, object] = {}


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_TIMER = _NullTimer()


class _NullHistogram:
    """Observation sink for disabled bundles (shared, never recorded)."""

    __slots__ = ()
    buckets: tuple = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        return None

    def percentile(self, q: float) -> float:
        return 0.0


#: Shared no-op histogram handed out by disabled bundles.
NULL_HISTOGRAM = _NullHistogram()


class Telemetry:
    """One registry + one tracer; enabled or a cheap no-op.

    ``stage_buckets`` overrides the bucket boundaries of the
    ``repro_stage_seconds`` histograms this bundle creates; the default
    (``None``) keeps :data:`~repro.obs.registry.DEFAULT_LATENCY_BUCKETS`,
    so existing sidecars and process-mode snapshots merge unchanged.
    Latency-sensitive surfaces (the serving front-door) pass
    :data:`~repro.obs.registry.FINE_LATENCY_BUCKETS` for sub-millisecond
    percentile resolution.  The layout is fixed per registry at first
    use -- mixing bundles with different stage buckets over one shared
    registry keeps the first layout (the family contract).
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        ring_size: int = 4096,
        stage_buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else SpanTracer(enabled=enabled, ring_size=ring_size)
        )
        self.stage_buckets = (
            tuple(float(b) for b in stage_buckets)
            if stage_buckets is not None
            else None
        )
        self._stage_histograms: Dict[str, Histogram] = {}

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A fresh disabled bundle (own registry, no-op hot path)."""
        return cls(enabled=False)

    # -- hot-path hooks -------------------------------------------------------

    def span(self, name: str, **attrs: object):
        """Open a bare span (no histogram); no-op when disabled."""
        return self.tracer.span(name, **attrs)

    def span_timer(self, name: str):
        """A reusable, pre-bound bare span (no histogram).

        Same contract as :meth:`stage_timer`: allocated once at wiring
        time, re-entered per use, never nested inside itself, single-
        threaded.  Returns the shared no-op when disabled.
        """
        if not self.enabled:
            return _NULL_TIMER
        return self.tracer.reusable_span(name)

    def _stage_histogram(self, stage: str) -> Histogram:
        histogram = self._stage_histograms.get(stage)
        if histogram is None:
            histogram = self.registry.histogram(
                STAGE_HISTOGRAM,
                help="Per-stage pipeline latency (seconds)",
                labels={"stage": stage},
                buckets=self.stage_buckets or DEFAULT_LATENCY_BUCKETS,
            )
            self._stage_histograms[stage] = histogram
        return histogram

    def histogram(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, str]] = None,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
    ):
        """A registry histogram, or the shared no-op when disabled.

        The bundle-level counterpart of :meth:`count`: components hold
        the returned instrument and ``observe`` into it on the hot path
        without re-checking ``enabled``.  ``buckets`` fixes the
        family's boundaries on first use (later calls reuse them).
        """
        if not self.enabled:
            return NULL_HISTOGRAM
        return self.registry.histogram(
            name,
            help=help,
            labels=labels,
            buckets=buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS,
        )

    def stage(self, stage: str, **attrs: object):
        """Time one pipeline stage: span ``stage.<stage>`` + histogram."""
        if not self.enabled:
            return _NULL_TIMER
        return _StageTimer(
            self.tracer, "stage." + stage, attrs, self._stage_histogram(stage)
        )

    def stage_timer(self, stage: str):
        """A reusable, pre-bound stage timer (the hot-path variant).

        Pipeline components create one per stage at wiring time and
        re-enter it for every context, skipping the per-call histogram
        lookup, kwargs dict and timer allocation that :meth:`stage`
        pays.  The same timer must not be nested inside itself and is
        single-threaded, like the component that owns it.  Returns the
        shared no-op when disabled.
        """
        if not self.enabled:
            return _NULL_TIMER
        return _StageTimer(
            self.tracer, "stage." + stage, _NO_ATTRS,
            self._stage_histogram(stage),
        )

    def stage_observer(self, stage: str):
        """A reusable histogram-only stage timer (no span).

        The cheapest tier: one ``perf_counter`` pair and one histogram
        observation per entry.  Used for high-frequency wrapper stages
        whose spanned sub-stages already tell the tracing story --
        e.g. the engine pipeline's receive/use wrappers.  Same reuse
        contract as :meth:`stage_timer`; no-op when disabled.
        """
        if not self.enabled:
            return _NULL_TIMER
        return _StageObserver(self._stage_histogram(stage))

    def count(
        self,
        name: str,
        amount: float = 1.0,
        *,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
    ) -> None:
        """Increment a counter; no-op when disabled."""
        if self.enabled:
            self.registry.counter(name, help=help, labels=labels).inc(amount)

    # -- snapshot / merge -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Queue-/file-safe dict: metrics + span counts + ringed spans."""
        return {
            "metrics": self.registry.snapshot(),
            "trace": self.tracer.snapshot(),
        }

    def merge_snapshot(self, data: Optional[Mapping[str, object]]) -> None:
        """Fold a worker bundle's snapshot into this one."""
        if not isinstance(data, Mapping):
            return
        self.registry.merge_snapshot(data.get("metrics"))  # type: ignore[arg-type]
        self.tracer.merge_snapshot(data.get("trace"))  # type: ignore[arg-type]

    def clear(self) -> None:
        self.registry.clear()
        self.tracer.clear()
        self._stage_histograms.clear()


#: Shared no-op bundle for components that were never given telemetry.
#: Nothing is ever recorded into it (all hooks check ``enabled``), so
#: sharing one instance across the process is safe.
NULL_TELEMETRY = Telemetry(enabled=False)
