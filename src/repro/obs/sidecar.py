"""Telemetry sidecars: the ``TELEMETRY_*.json`` files benchmarks emit.

A sidecar is one run's full telemetry -- registry snapshot, span
counts, and the span ring -- written next to the benchmark outputs
(``benchmarks/out/``) so a regression in per-stage latency is
diagnosable from the artifact alone, without re-running anything.

``repro obs summary|export|spans`` all operate on sidecar files
through :func:`read_sidecar`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from .telemetry import STAGE_HISTOGRAM, Telemetry

__all__ = [
    "atomic_write_text",
    "write_sidecar",
    "read_sidecar",
    "sidecar_summary",
    "sidecar_slowest_spans",
    "stage_histogram_nonempty",
]

#: Sidecar document format version (bump on incompatible change).
SIDECAR_VERSION = 1


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader never observes a half-written file and a crash mid-write
    leaves the previous version intact -- JSON artifacts (sidecars,
    BENCH files) are replaced whole or not at all.  The temp file lives
    in the target directory (``os.replace`` must not cross
    filesystems) under a pid-unique name, and is cleaned up on failure.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def write_sidecar(
    path: Union[str, Path],
    telemetry: Telemetry,
    *,
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Write one telemetry sidecar (atomically); returns the document."""
    snapshot = telemetry.snapshot()
    document: Dict[str, object] = {
        "version": SIDECAR_VERSION,
        "meta": dict(meta or {}),
        "metrics": snapshot["metrics"],
        "span_counts": snapshot["trace"]["counts"],  # type: ignore[index]
        "spans": snapshot["trace"]["spans"],  # type: ignore[index]
    }
    atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    return document


def read_sidecar(path: Union[str, Path]) -> Dict[str, object]:
    """Load a sidecar document, validating the coarse shape."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "metrics" not in document:
        raise ValueError(f"{path} is not a telemetry sidecar")
    return document


# -- human-readable rendering -------------------------------------------------


def _series(document: Mapping[str, object]) -> List[Mapping[str, object]]:
    metrics = document.get("metrics") or {}
    return list(metrics.get("series") or [])  # type: ignore[union-attr]


def _families(document: Mapping[str, object]) -> Mapping[str, object]:
    metrics = document.get("metrics") or {}
    return metrics.get("families") or {}  # type: ignore[union-attr]


def _histogram_percentile(
    buckets: List[float], counts: List[int], q: float
) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank:
            if index < len(buckets):
                return buckets[index]
            return buckets[-1] if buckets else 0.0
    return buckets[-1] if buckets else 0.0


def sidecar_summary(document: Mapping[str, object]) -> str:
    """The ``repro obs summary`` text: counters, stage latencies, spans."""
    lines: List[str] = ["Telemetry summary"]
    meta = document.get("meta") or {}
    for key in sorted(meta):  # type: ignore[arg-type]
        lines.append(f"  {key}: {meta[key]}")  # type: ignore[index]

    families = _families(document)
    series = _series(document)

    counters = [
        entry
        for entry in series
        if families.get(str(entry["name"]), {}).get("type") == "counter"  # type: ignore[union-attr]
    ]
    if counters:
        lines.append("")
        lines.append("Counters:")
        for entry in counters:
            labels = dict(entry.get("labels") or {})  # type: ignore[arg-type]
            label_text = (
                " {" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            lines.append(
                f"  {entry['name']}{label_text}: {entry.get('value', 0):g}"
            )

    gauges = [
        entry
        for entry in series
        if families.get(str(entry["name"]), {}).get("type") == "gauge"  # type: ignore[union-attr]
    ]
    if gauges:
        lines.append("")
        lines.append("Gauges:")
        for entry in gauges:
            labels = dict(entry.get("labels") or {})  # type: ignore[arg-type]
            label_text = (
                " {" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            lines.append(
                f"  {entry['name']}{label_text}: {entry.get('value', 0):g}"
            )

    histograms = [
        entry
        for entry in series
        if families.get(str(entry["name"]), {}).get("type") == "histogram"  # type: ignore[union-attr]
    ]
    if histograms:
        lines.append("")
        lines.append("Latency histograms (p50 / p95 / max-bucket, seconds):")
        for entry in histograms:
            name = str(entry["name"])
            buckets = [
                float(b)
                for b in (families.get(name, {}).get("buckets") or [])  # type: ignore[union-attr]
            ]
            counts = [int(c) for c in (entry.get("counts") or [])]  # type: ignore[union-attr]
            labels = dict(entry.get("labels") or {})  # type: ignore[arg-type]
            label_text = (
                " {" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            p50 = _histogram_percentile(buckets, counts, 0.50)
            p95 = _histogram_percentile(buckets, counts, 0.95)
            p100 = _histogram_percentile(buckets, counts, 1.0)
            lines.append(
                f"  {name}{label_text}: n={sum(counts)}"
                f"  p50<={p50:g}  p95<={p95:g}  max<={p100:g}"
                f"  sum={float(entry.get('sum', 0.0)):.6f}s"  # type: ignore[arg-type]
            )

    span_counts = document.get("span_counts") or {}
    if span_counts:
        lines.append("")
        lines.append("Span counts:")
        for name in sorted(span_counts):  # type: ignore[arg-type]
            lines.append(f"  {name}: {span_counts[name]}")  # type: ignore[index]
    return "\n".join(lines)


def sidecar_slowest_spans(
    document: Mapping[str, object], top: int = 10
) -> str:
    """The ``repro obs spans --top N`` text: slowest ringed spans."""
    spans = list(document.get("spans") or [])
    spans.sort(key=lambda s: float(s.get("duration", 0.0)), reverse=True)
    lines = [f"Slowest spans (top {top} of {len(spans)} ringed)"]
    for span in spans[: max(0, top)]:
        attrs = span.get("attrs") or {}
        attr_text = (
            " " + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            if attrs
            else ""
        )
        lines.append(
            f"  {float(span.get('duration', 0.0)) * 1e3:9.3f} ms"
            f"  {span.get('name')}{attr_text}"
        )
    if len(spans) == 0:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)


def stage_histogram_nonempty(
    document: Mapping[str, object], stage: str
) -> bool:
    """Whether the sidecar has observations for one pipeline stage."""
    for entry in _series(document):
        if str(entry["name"]) != STAGE_HISTOGRAM:
            continue
        labels = dict(entry.get("labels") or {})  # type: ignore[arg-type]
        if labels.get("stage") == stage and int(entry.get("count", 0)) > 0:  # type: ignore[arg-type]
            return True
    return False
