"""Unified telemetry: metrics registry, span tracer, exporters.

The observability layer the performance work reads its numbers from
(docs/observability.md).  Dependency-free and middleware-agnostic:

* :class:`MetricsRegistry` -- counters, gauges, fixed-bucket
  histograms; thread-safe; snapshot/merge for process-mode shards;
* :class:`SpanTracer` -- ring-buffered nested spans with a JSONL
  exporter;
* :class:`Telemetry` -- one registry + one tracer, pluggable into the
  middleware manager, the resolution service, the constraint checker
  and the sharded engine; disabled bundles cost one attribute check;
* :class:`TelemetryService` -- middleware plug-in deriving metrics
  from bus events;
* exporters (Prometheus text, JSON) and the ``TELEMETRY_*.json``
  sidecar read/write behind the ``repro obs`` CLI.
"""

from .exporters import json_text, prometheus_text, registry_prometheus
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    FINE_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .service import TelemetryService
from .sidecar import (
    atomic_write_text,
    read_sidecar,
    sidecar_slowest_spans,
    sidecar_summary,
    stage_histogram_nonempty,
    write_sidecar,
)
from .telemetry import NULL_TELEMETRY, STAGE_HISTOGRAM, Telemetry
from .tracer import SpanRecord, SpanTracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "FINE_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "SpanTracer",
    "Telemetry",
    "NULL_TELEMETRY",
    "STAGE_HISTOGRAM",
    "TelemetryService",
    "prometheus_text",
    "json_text",
    "registry_prometheus",
    "atomic_write_text",
    "write_sidecar",
    "read_sidecar",
    "sidecar_summary",
    "sidecar_slowest_spans",
    "stage_histogram_nonempty",
]
