"""Span tracer: ring-buffered timing spans with parent/child nesting.

A span covers one pipeline stage of one context -- ``receive``,
``check``, ``resolve``, ``deliver`` -- or one engine batch.  Spans
nest: entering a span while another is open records the outer span as
its parent, so a ``stage.check`` span opened inside ``mw.receive``
carries the receive span's id.

The tracer keeps the last ``ring_size`` finished spans in a ring (old
spans fall off; memory stays bounded for arbitrarily long streams) and
a cumulative per-name count that survives the ring, so span totals
remain exact even after eviction.  ``export_jsonl`` writes the ring
for offline analysis; ``slowest`` answers the ``repro obs spans``
query.

Each worker process owns its own tracer; snapshots merge in the parent
(counts add, rings concatenate).  Within one process the span stack is
per-thread, so concurrent shard threads cannot corrupt each other's
nesting.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

__all__ = ["SpanRecord", "SpanTracer"]


@dataclass
class SpanRecord:
    """One finished span; durations are wall-clock seconds."""

    name: str
    start: float
    duration: float
    span_id: int
    parent_id: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),  # type: ignore[arg-type]
            duration=float(data["duration"]),  # type: ignore[arg-type]
            span_id=int(data["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                None
                if data.get("parent_id") is None
                else int(data["parent_id"])  # type: ignore[arg-type]
            ),
            attrs=dict(data.get("attrs") or {}),  # type: ignore[arg-type]
        )


class _ActiveSpan:
    """Context manager for one span; records on clean or raising exit.

    Kept deliberately flat -- one allocation, one ``perf_counter``
    pair, one lock acquisition on exit -- because the pipeline opens
    several spans per context (see the telemetry overhead benchmark).
    The per-thread span stack is cached after the first entry, pinning
    a *reusable* span to the thread that first enters it (one owner
    component, one thread -- the documented contract); one-shot spans
    from :meth:`SpanTracer.span` only ever enter once anyway.
    """

    __slots__ = (
        "_tracer", "name", "attrs", "span_id", "parent_id",
        "_stack", "_start",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._stack: Optional[List[int]] = None
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = self._stack
        if stack is None:
            stack = self._stack = tracer._stack()
        self.parent_id = stack[-1] if stack else None
        span_id = next(tracer._ids)
        self.span_id = span_id
        stack.append(span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        stack = self._stack
        if stack:
            stack.pop()
        attrs = self.attrs
        if exc_type is not None:
            # Copy before annotating: reusable spans share one attrs
            # dict across all their uses.
            attrs = dict(attrs)
            attrs["error"] = exc_type.__name__
        tracer = self._tracer
        entry = (
            self.name, tracer._wall_base + self._start, duration,
            self.span_id, self.parent_id, attrs,
        )
        with tracer._lock:
            tracer._ring.append(entry)
            tracer.counts[self.name] = tracer.counts.get(self.name, 0) + 1


class _NullSpan:
    """Shared no-op span for disabled tracers (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class SpanTracer:
    """Produces, rings and counts spans; see the module docstring."""

    def __init__(self, *, enabled: bool = True, ring_size: int = 4096) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.enabled = enabled
        self.ring_size = ring_size
        # The ring holds plain (name, start, duration, span_id,
        # parent_id, attrs) tuples; SpanRecord objects are materialized
        # only when queried.  Dataclass construction per span is the
        # single biggest hot-path cost this avoids.
        self._ring: deque = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)  # next() is atomic under the GIL
        # Spans report wall-clock starts but are timed on perf_counter;
        # one base conversion at construction replaces a time.time()
        # call per finished span.
        self._wall_base = time.time() - time.perf_counter()
        #: Cumulative finished-span count per name (survives the ring).
        self.counts: Dict[str, int] = {}

    # -- span production ------------------------------------------------------

    def span(self, name: str, **attrs: object):
        """Open a span; use as ``with tracer.span("stage.check", ctx_id=...)``."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def reusable_span(self, name: str):
        """A pre-bound span context manager for hot loops.

        Unlike :meth:`span`, the returned object is allocated once and
        re-entered per use, skipping the per-call kwargs dict and span
        allocation.  It must not be nested inside itself and is
        single-threaded, like the component that owns it.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, {})

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self):
        """Allocate a span id and push it; returns (span_id, parent_id)."""
        span_id = next(self._ids)
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        stack.append(span_id)
        return span_id, parent_id

    def _close(
        self,
        name: str,
        start: float,
        duration: float,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, object],
    ) -> None:
        """Pop the span and ring it; counterpart of :meth:`_open`."""
        stack = self._stack()
        if stack:
            stack.pop()
        entry = (
            name, self._wall_base + start, duration, span_id, parent_id, attrs
        )
        with self._lock:
            self._ring.append(entry)
            self.counts[name] = self.counts.get(name, 0) + 1

    # -- queries --------------------------------------------------------------

    def spans(self) -> List[SpanRecord]:
        """The ring's finished spans, oldest first."""
        with self._lock:
            entries = list(self._ring)
        return [SpanRecord(*entry) for entry in entries]

    def slowest(self, n: int = 10) -> List[SpanRecord]:
        """The ``n`` longest spans still in the ring, slowest first."""
        return sorted(
            self.spans(), key=lambda s: s.duration, reverse=True
        )[: max(0, n)]

    def total_spans(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    # -- export / merge -------------------------------------------------------

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write the ring as JSON lines; returns spans written."""
        records = self.spans()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict()) + "\n")
        return len(records)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = dict(self.counts)
            entries = list(self._ring)
        return {
            "counts": counts,
            "spans": [SpanRecord(*entry).to_dict() for entry in entries],
        }

    def merge_snapshot(self, data: Optional[Mapping[str, object]]) -> None:
        """Fold a worker tracer's snapshot in (counts add, rings chain)."""
        if not isinstance(data, Mapping):
            return
        counts = data.get("counts")
        spans = data.get("spans")
        with self._lock:
            if isinstance(counts, Mapping):
                for name, count in counts.items():
                    try:
                        self.counts[str(name)] = self.counts.get(
                            str(name), 0
                        ) + int(count)  # type: ignore[arg-type]
                    except (TypeError, ValueError):
                        continue
        if isinstance(spans, list):
            for entry in spans:
                try:
                    record = SpanRecord.from_dict(entry)
                except (KeyError, TypeError, ValueError):
                    continue
                with self._lock:
                    self._ring.append((
                        record.name,
                        record.start,
                        record.duration,
                        record.span_id,
                        record.parent_id,
                        record.attrs,
                    ))

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.counts.clear()
