"""Exporters: Prometheus text format and JSON, over registry snapshots.

Both exporters consume the plain-dict snapshot form
(:meth:`~repro.obs.registry.MetricsRegistry.snapshot`), not live
registries, so the same code path serves a running process and the
``repro obs export`` CLI reading a telemetry sidecar file off disk.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Mapping, Optional

from .registry import MetricsRegistry

__all__ = ["prometheus_text", "json_text", "registry_prometheus"]


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def prometheus_text(snapshot: Mapping[str, object]) -> str:
    """Render a registry snapshot in the Prometheus text exposition
    format (``# HELP``/``# TYPE`` headers, cumulative ``le`` buckets,
    ``_sum``/``_count`` series for histograms)."""
    families = snapshot.get("families") or {}
    series = snapshot.get("series") or []
    by_family: Dict[str, List[Mapping[str, object]]] = {}
    for entry in series:  # type: ignore[union-attr]
        by_family.setdefault(str(entry["name"]), []).append(entry)

    lines: List[str] = []
    for name in sorted(by_family):
        meta = families.get(name, {})  # type: ignore[union-attr]
        kind = str(meta.get("type", "untyped"))
        help_text = str(meta.get("help", "")).strip()
        if help_text:
            lines.append(f"# HELP {name} {_escape(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in by_family[name]:
            labels = dict(entry.get("labels") or {})  # type: ignore[arg-type]
            if kind == "histogram":
                lines.extend(_histogram_lines(name, meta, labels, entry))
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(float(entry['value']))}"  # type: ignore[arg-type]
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_lines(
    name: str,
    meta: Mapping[str, object],
    labels: Mapping[str, str],
    entry: Mapping[str, object],
) -> List[str]:
    buckets = list(meta.get("buckets") or [])  # type: ignore[arg-type]
    counts = list(entry.get("counts") or [])  # type: ignore[arg-type]
    lines: List[str] = []
    cumulative = 0
    for boundary, count in zip(buckets + [math.inf], counts):
        cumulative += int(count)
        le = 'le="' + _format_value(float(boundary)) + '"'
        lines.append(
            f"{name}_bucket{_format_labels(labels, extra=le)} {cumulative}"
        )
    lines.append(
        f"{name}_sum{_format_labels(labels)} "
        f"{_format_value(float(entry.get('sum', 0.0)))}"  # type: ignore[arg-type]
    )
    lines.append(
        f"{name}_count{_format_labels(labels)} {int(entry.get('count', 0))}"  # type: ignore[arg-type]
    )
    return lines


def json_text(
    snapshot: Mapping[str, object],
    *,
    indent: Optional[int] = 2,
) -> str:
    """Render a registry snapshot as stable, sorted JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def registry_prometheus(registry: MetricsRegistry) -> str:
    """Convenience: export a live registry (snapshots then renders)."""
    return prometheus_text(registry.snapshot())
