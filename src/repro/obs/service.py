"""TelemetryService: the middleware plug-in that meters a run.

Sibling of :class:`~repro.middleware.logging_service.LoggingService`:
attach it and every bus event becomes a counter, the pool size becomes
a gauge, and -- because attaching also hands the bundle to the manager
via ``Middleware.attach_telemetry`` -- the hot-path stage timers
(receive/check/resolve/use/deliver) land in the same registry.  Code
that publishes events gets metrics coverage for free; the explicit
timer hooks cover what bus events are too coarse to see.

The service retains every handler it subscribes and removes them again
in :meth:`on_detach`, so detaching and re-attaching to a fresh
middleware never double-counts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Type

from ..middleware.bus import (
    ContextDelivered,
    ContextDiscarded,
    ContextExpired,
    ContextReceived,
    Event,
    InconsistencyDetected,
    SubscriberError,
)
from ..middleware.service import MiddlewareService
from .telemetry import Telemetry

__all__ = ["TelemetryService"]

#: Event-type -> counter family derived automatically on attach.
_EVENT_COUNTERS: Tuple[Tuple[Type[Event], str, str], ...] = (
    (ContextReceived, "contexts_received_total", "Contexts handed over by sources"),
    (ContextDelivered, "contexts_delivered_total", "Contexts delivered to applications"),
    (ContextDiscarded, "contexts_discarded_total", "Contexts discarded by the strategy"),
    (ContextExpired, "contexts_expired_total", "Contexts whose availability lapsed"),
    (InconsistencyDetected, "inconsistencies_detected_total", "Constraint violations detected"),
    (SubscriberError, "subscriber_errors_total", "Bus subscriber callbacks that raised"),
)


class TelemetryService(MiddlewareService):
    """Derives metrics from bus events; owns (or shares) a bundle."""

    name = "telemetry"

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._subscribed: List[Tuple[Type[Event], object]] = []
        self._bus = None

    def on_attach(self, middleware) -> None:
        middleware.attach_telemetry(self.telemetry)
        bus = middleware.bus
        self._bus = bus
        registry = self.telemetry.registry
        pool = middleware.pool

        events_total = registry.counter(
            "bus_events_total", help="Events published on the middleware bus"
        )
        pool_gauge = registry.gauge(
            "pool_size", help="Live contexts in the context pool"
        )

        def tap(event: Event) -> None:
            events_total.inc()
            pool_gauge.set(len(pool))

        self._subscribe(bus, Event, tap)

        for event_type, family, help_text in _EVENT_COUNTERS:
            counter = registry.counter(family, help=help_text)

            def bump(event: Event, _counter=counter) -> None:
                _counter.inc()

            self._subscribe(bus, event_type, bump)

    def on_detach(self, middleware) -> None:
        """Unsubscribe every retained handler (safe to re-attach later)."""
        if self._bus is None:
            return
        for event_type, handler in self._subscribed:
            self._bus.unsubscribe(event_type, handler)
        self._subscribed.clear()
        self._bus = None

    def _subscribe(self, bus, event_type: Type[Event], handler) -> None:
        bus.subscribe(event_type, handler)
        self._subscribed.append((event_type, handler))
