"""Situations and the situation-evaluation engine.

A *situation* is an application-meaningful condition over contexts --
"Peter is in his office", "an item reached checkout" -- whose
activation triggers adaptive behaviour (forwarding a call, raising an
alert).  The paper's second context-awareness metric counts situation
activations after inconsistency resolution: discarding the contexts a
situation needed suppresses its activation.

The engine is a middleware plug-in service: it observes every context
delivered to applications and evaluates each registered situation
against the delivered context plus a sliding view of recent
deliveries.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

from ..core.context import Context
from ..middleware.bus import ContextDelivered, SituationActivated
from ..middleware.manager import Middleware
from ..middleware.service import MiddlewareService

__all__ = ["SituationView", "Situation", "SituationEngine"]


class SituationView:
    """What a situation trigger may inspect: recent delivered contexts.

    The view deliberately exposes only contexts that survived
    resolution and were delivered -- a situation cannot peek at
    discarded or buffered contexts, which is precisely how resolution
    strategies impact situation activation.
    """

    def __init__(self, window: int = 64) -> None:
        self._recent: Deque[Context] = deque(maxlen=window)
        self.now: float = 0.0

    def push(self, ctx: Context, now: float) -> None:
        self._recent.append(ctx)
        self.now = now

    def recent(
        self,
        ctx_type: Optional[str] = None,
        subject: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Context]:
        """Recent delivered contexts, newest last, optionally filtered."""
        matches = [
            c
            for c in self._recent
            if (ctx_type is None or c.ctx_type == ctx_type)
            and (subject is None or c.subject == subject)
        ]
        if limit is not None:
            matches = matches[-limit:]
        return matches

    def previous(self, ctx: Context) -> Optional[Context]:
        """The delivered context of the same type+subject just before
        ``ctx``, if any -- the building block for "entered"/"moved"
        style situations."""
        older = [
            c
            for c in self._recent
            if c.ctx_type == ctx.ctx_type
            and c.subject == ctx.subject
            and c.ctx_id != ctx.ctx_id
            and c.timestamp <= ctx.timestamp
        ]
        if not older:
            return None
        return max(older, key=lambda c: (c.timestamp, c.ctx_id))

    def clear(self) -> None:
        self._recent.clear()
        self.now = 0.0


#: A trigger decides whether the just-delivered context activates the
#: situation, given the view of recent deliveries.
Trigger = Callable[[Context, SituationView], bool]


@dataclass(frozen=True)
class Situation:
    """A named, triggerable application situation."""

    name: str
    trigger: Trigger
    description: str = ""

    def matches(self, ctx: Context, view: SituationView) -> bool:
        return bool(self.trigger(ctx, view))


class SituationEngine(MiddlewareService):
    """Plug-in that evaluates situations on every delivered context."""

    name = "situation-engine"

    def __init__(
        self, situations: Sequence[Situation], view_window: int = 64
    ) -> None:
        names = [s.name for s in situations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate situation names in {names}")
        self.situations = list(situations)
        self.view = SituationView(window=view_window)
        self.activations: Counter = Counter()
        #: Activations triggered by corrupted contexts (spurious), kept
        #: separately for the extended analysis in EXPERIMENTS.md.
        self.spurious_activations: Counter = Counter()
        self._middleware: Optional[Middleware] = None

    def on_attach(self, middleware: Middleware) -> None:
        self._middleware = middleware
        middleware.bus.subscribe(ContextDelivered, self._on_delivered)

    def _on_delivered(self, event: ContextDelivered) -> None:
        ctx = event.context
        self.view.push(ctx, event.at)
        for situation in self.situations:
            if situation.matches(ctx, self.view):
                self.activations[situation.name] += 1
                if ctx.corrupted:
                    self.spurious_activations[situation.name] += 1
                if self._middleware is not None:
                    self._middleware.bus.publish(
                        SituationActivated(
                            at=event.at, situation=situation.name, context=ctx
                        )
                    )

    def total_activations(self) -> int:
        return sum(self.activations.values())

    def total_spurious(self) -> int:
        return sum(self.spurious_activations.values())

    def reset(self) -> None:
        self.view.clear()
        self.activations.clear()
        self.spurious_activations.clear()
