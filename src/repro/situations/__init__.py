"""Situation definitions and the situation-evaluation engine."""

from .library import (
    co_located,
    entered,
    left,
    make_situation,
    position_within,
    value_in,
    value_is,
)
from .situation import Situation, SituationEngine, SituationView

__all__ = [
    "Situation",
    "SituationEngine",
    "SituationView",
    "co_located",
    "entered",
    "left",
    "make_situation",
    "position_within",
    "value_in",
    "value_is",
]
