"""Reusable situation-trigger combinators.

The two applications assemble their situations from these building
blocks, mirroring the kinds of situations participants designed in the
authors' constraint/situation study [19]: presence in a place, moving
between places, co-location, and flow milestones.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from ..core.context import Context
from .situation import Situation, SituationView, Trigger

__all__ = [
    "value_is",
    "value_in",
    "entered",
    "left",
    "position_within",
    "co_located",
    "make_situation",
]


def make_situation(name: str, trigger: Trigger, description: str = "") -> Situation:
    """Small sugar over the Situation constructor."""
    return Situation(name=name, trigger=trigger, description=description)


def value_is(ctx_type: str, value: object, subject: Optional[str] = None) -> Trigger:
    """Activates when a delivered context of ``ctx_type`` equals ``value``."""

    def trigger(ctx: Context, view: SituationView) -> bool:
        if ctx.ctx_type != ctx_type or ctx.value != value:
            return False
        return subject is None or ctx.subject == subject

    return trigger


def value_in(
    ctx_type: str, values: Sequence[object], subject: Optional[str] = None
) -> Trigger:
    """Activates when the delivered value is any of ``values``."""
    allowed = set(values)

    def trigger(ctx: Context, view: SituationView) -> bool:
        if ctx.ctx_type != ctx_type or ctx.value not in allowed:
            return False
        return subject is None or ctx.subject == subject

    return trigger


def entered(ctx_type: str, value: object, subject: Optional[str] = None) -> Trigger:
    """Activates on a *transition into* ``value``: the delivered context
    reports it and the previous delivered context of the same subject
    reported something else (or there is no previous one)."""

    def trigger(ctx: Context, view: SituationView) -> bool:
        if ctx.ctx_type != ctx_type or ctx.value != value:
            return False
        if subject is not None and ctx.subject != subject:
            return False
        previous = view.previous(ctx)
        return previous is None or previous.value != value

    return trigger


def left(ctx_type: str, value: object, subject: Optional[str] = None) -> Trigger:
    """Activates on a transition *out of* ``value``."""

    def trigger(ctx: Context, view: SituationView) -> bool:
        if ctx.ctx_type != ctx_type or ctx.value == value:
            return False
        if subject is not None and ctx.subject != subject:
            return False
        previous = view.previous(ctx)
        return previous is not None and previous.value == value

    return trigger


def position_within(
    ctx_type: str,
    box: Tuple[float, float, float, float],
    subject: Optional[str] = None,
) -> Trigger:
    """Activates when a coordinate context falls inside a bounding box."""
    x0, y0, x1, y1 = box

    def trigger(ctx: Context, view: SituationView) -> bool:
        if ctx.ctx_type != ctx_type:
            return False
        if subject is not None and ctx.subject != subject:
            return False
        try:
            x, y = ctx.position
        except TypeError:
            return False
        return x0 <= x <= x1 and y0 <= y <= y1

    return trigger


def co_located(
    ctx_type: str, subject_a: str, subject_b: str, max_age: float = 30.0
) -> Trigger:
    """Activates when the latest deliveries place two subjects at the
    same value (room/zone) within ``max_age`` seconds of each other."""

    def trigger(ctx: Context, view: SituationView) -> bool:
        if ctx.ctx_type != ctx_type or ctx.subject not in (subject_a, subject_b):
            return False
        other = subject_b if ctx.subject == subject_a else subject_a
        other_recent = view.recent(ctx_type=ctx_type, subject=other, limit=1)
        if not other_recent:
            return False
        peer = other_recent[-1]
        return (
            peer.value == ctx.value
            and abs(peer.timestamp - ctx.timestamp) <= max_age
        )

    return trigger
