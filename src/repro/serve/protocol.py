"""Wire format: JSON context records for the ingestion transports.

The serving wire format is the trace format (:mod:`repro.middleware.
trace`) with serving affordances: ``timestamp`` may be omitted (the
server assigns its arrival wall-offset as simulation time, keeping the
runtime clock monotone for live traffic), ``lifespan`` defaults to
infinite, and an optional ``seq`` field carries the client's
per-source sequence number for the reorder buffer.

A record rejected here is a client error (HTTP 400), never a shed --
shedding is an admission verdict about load, not about malformed JSON.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional, Tuple

from ..core.context import Context

__all__ = ["ParseError", "context_from_record", "record_from_context"]

_INF = "Infinity"


class ParseError(ValueError):
    """A context record the wire format cannot accept."""


def context_from_record(
    record: Mapping[str, Any],
    *,
    default_timestamp: Optional[float] = None,
    default_source: str = "unknown",
) -> Tuple[Context, Optional[int]]:
    """Parse one JSON-decoded record; returns ``(context, seq)``.

    ``seq`` is the optional client-declared per-source sequence number
    (:mod:`repro.serve.sequencer`); it rides the record but is not part
    of the context.
    """
    if not isinstance(record, Mapping):
        raise ParseError(f"context record must be an object, got {type(record).__name__}")
    try:
        ctx_id = record["ctx_id"]
        ctx_type = record["ctx_type"]
        subject = record["subject"]
    except KeyError as error:
        raise ParseError(f"context record missing field {error.args[0]!r}") from None
    for name, field in (("ctx_id", ctx_id), ("ctx_type", ctx_type), ("subject", subject)):
        if not isinstance(field, str) or not field:
            raise ParseError(f"{name} must be a non-empty string, got {field!r}")
    value = record.get("value")
    if isinstance(value, list):
        value = tuple(value)
    timestamp = record.get("timestamp", default_timestamp)
    if timestamp is None:
        raise ParseError("context record needs a timestamp (no default given)")
    lifespan = record.get("lifespan", _INF)
    if lifespan == _INF:
        lifespan = math.inf
    seq = record.get("seq")
    if seq is not None and (not isinstance(seq, int) or seq < 0):
        raise ParseError(f"seq must be a non-negative integer, got {seq!r}")
    try:
        context = Context(
            ctx_id=ctx_id,
            ctx_type=ctx_type,
            subject=subject,
            value=value,
            timestamp=float(timestamp),
            lifespan=float(lifespan),
            source=str(record.get("source", default_source)),
            corrupted=bool(record.get("corrupted", False)),
            attributes=tuple(
                (k, v) for k, v in record.get("attributes", ())
            ),
        )
    except (TypeError, ValueError) as error:
        raise ParseError(f"invalid context record: {error}") from None
    return context, seq


def record_from_context(ctx: Context, *, seq: Optional[int] = None) -> dict:
    """One context as a JSON-ready record (the loadgen's send format)."""
    record = {
        "ctx_id": ctx.ctx_id,
        "ctx_type": ctx.ctx_type,
        "subject": ctx.subject,
        "value": list(ctx.value) if isinstance(ctx.value, tuple) else ctx.value,
        "timestamp": ctx.timestamp,
        "lifespan": _INF if math.isinf(ctx.lifespan) else ctx.lifespan,
        "source": ctx.source,
        "corrupted": ctx.corrupted,
        "attributes": list(ctx.attributes),
    }
    if seq is not None:
        record["seq"] = seq
    return record
