"""Per-source FIFO sequencing with cross-source concurrency.

A pervasive deployment's correctness story (paper Section 3.2, SECA in
PAPERS.md) assumes each *sensor's* readings are checked in the order
that sensor produced them -- a location track that enters the checker
reordered manufactures inconsistencies that never happened.  The
front-door cannot assume transports deliver in order: one source may
spread pipelined requests over several HTTP connections, and WebSocket
messages from different connections interleave arbitrarily.

:class:`SourceSequencer` restores exactly the guarantee the engine
needs and no more: contexts of one source are *released* to the
batcher in that source's sequence order, while contexts of different
sources pass each other freely.  Sources declare order either
implicitly (submission order on arrival at the service -- ``seq=None``
assigns the next slot) or explicitly (a client-supplied per-source
``seq``; gaps hold later contexts in a bounded reorder buffer until
the gap fills).

The buffer is bounded per source (``max_pending``): a source whose gap
never fills cannot grow server memory without limit -- the overflow is
surfaced as :class:`SequenceError` and shed with reason ``order``.

Boundedness alone does not prevent *starvation*: a gap that never
fills used to hold every later context of that source forever (well
past their own lifespans) until the final drain.  ``gap_timeout``
fixes that: once a source has waited longer than the timeout on its
head gap, :meth:`expire_gaps` advances ``next_seq`` past the missing
slots (counting them in :attr:`gap_skips`) and releases the
consecutive run behind them.  The service layer sweeps this
periodically and drops released contexts whose availability lapsed
while buffered (the ``serve_gap_expired_total`` metric) instead of
forwarding corpses to the engine.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Generic, List, Optional, Tuple, TypeVar

__all__ = ["SourceSequencer", "SequenceError"]

T = TypeVar("T")


class SequenceError(Exception):
    """A per-source sequencing violation (duplicate, stale, overflow)."""


class _SourceState(Generic[T]):
    __slots__ = ("next_seq", "held", "gap_since")

    def __init__(self) -> None:
        #: Next sequence number expected to be released.
        self.next_seq = 0
        #: Out-of-order arrivals waiting for their gap to fill.
        self.held: Dict[int, T] = {}
        #: Monotonic instant the current head gap opened (``None`` when
        #: nothing is held, i.e. there is no gap to wait on).
        self.gap_since: Optional[float] = None


class SourceSequencer(Generic[T]):
    """Release items in per-source sequence order.

    Single-threaded (event-loop) by design; :meth:`push` returns the
    items released *by this push* -- zero (held for a gap), one (in
    order), or several (a gap just filled).

    Parameters
    ----------
    max_pending:
        Per-source bound on gapped (held) items.
    gap_timeout:
        Seconds a source may wait on its head gap before
        :meth:`expire_gaps` skips it.  ``None`` (the default) disables
        gap skipping -- held items are only released by the gap
        filling or by :meth:`flush_held` at drain.
    clock:
        Monotonic time source (injectable for tests); defaults to
        :func:`time.monotonic`.
    """

    def __init__(
        self,
        *,
        max_pending: int = 256,
        gap_timeout: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if gap_timeout is not None and gap_timeout <= 0:
            raise ValueError(
                f"gap_timeout must be > 0 or None, got {gap_timeout}"
            )
        self.max_pending = max_pending
        self.gap_timeout = gap_timeout
        self._clock = clock
        self._sources: Dict[str, _SourceState[T]] = {}
        self.reordered = 0
        self.released = 0
        #: Sequence slots skipped by gap timeouts (the
        #: ``serve_gap_skips`` telemetry counter's source of truth).
        self.gap_skips = 0

    def _state(self, source: str) -> _SourceState[T]:
        state = self._sources.get(source)
        if state is None:
            state = self._sources[source] = _SourceState()
        return state

    def push(
        self, source: str, item: T, seq: Optional[int] = None
    ) -> List[Tuple[int, T]]:
        """Submit one item; returns ``(seq, item)`` pairs now in order.

        ``seq=None`` claims the next slot (arrival order *is* source
        order -- the HTTP single-connection case).  An explicit ``seq``
        below the release cursor is a duplicate/stale submission and
        raises; so does holding more than ``max_pending`` gapped items
        for one source.
        """
        state = self._state(source)
        if seq is None:
            seq = state.next_seq + len(state.held)
            while seq in state.held:  # implicit after explicit gaps
                seq += 1
        if seq < state.next_seq:
            raise SequenceError(
                f"source {source!r} seq {seq} already released "
                f"(cursor at {state.next_seq})"
            )
        if seq in state.held:
            raise SequenceError(f"source {source!r} seq {seq} already pending")
        if seq != state.next_seq and len(state.held) >= self.max_pending:
            raise SequenceError(
                f"source {source!r} holds {len(state.held)} out-of-order "
                f"contexts (max {self.max_pending}); dropping seq {seq}"
            )
        state.held[seq] = item
        if seq != state.next_seq:
            self.reordered += 1
        released: List[Tuple[int, T]] = []
        while state.next_seq in state.held:
            released.append((state.next_seq, state.held.pop(state.next_seq)))
            state.next_seq += 1
        self.released += len(released)
        self._mark_gap(state, head_changed=bool(released))
        return released

    def _mark_gap(
        self, state: _SourceState[T], *, head_changed: bool
    ) -> None:
        """Start/stop/restart the head-gap stopwatch after a change.

        The stopwatch times the *current head gap*: it restarts when a
        release moved the cursor onto a new gap (``head_changed``), so
        each gap gets the full timeout rather than inheriting the wait
        already spent on a previous one.
        """
        if not state.held:
            state.gap_since = None
        elif head_changed or state.gap_since is None:
            state.gap_since = self._clock()

    def expire_gaps(self, now: Optional[float] = None) -> List[Tuple[int, T]]:
        """Skip head gaps older than ``gap_timeout``; release behind them.

        For every source whose oldest gap has been open longer than the
        timeout, the cursor advances to the first *held* sequence
        number (each skipped empty slot counts in :attr:`gap_skips`)
        and the consecutive run from there is released.  If another gap
        remains after the run, its stopwatch restarts at ``now`` -- one
        sweep skips one gap per source, so a source trickling in with
        many holes pays the timeout per hole instead of flushing
        everything on the first sweep.

        Returns the released ``(seq, item)`` pairs across all sources
        (sorted by source for determinism).  No-op when ``gap_timeout``
        is ``None``.
        """
        if self.gap_timeout is None:
            return []
        if now is None:
            now = self._clock()
        released: List[Tuple[int, T]] = []
        for source in sorted(self._sources):
            state = self._sources[source]
            if (
                state.gap_since is None
                or now - state.gap_since < self.gap_timeout
            ):
                continue
            first_held = min(state.held)
            self.gap_skips += first_held - state.next_seq
            state.next_seq = first_held
            while state.next_seq in state.held:
                released.append(
                    (state.next_seq, state.held.pop(state.next_seq))
                )
                state.next_seq += 1
            state.gap_since = None
            # Restart the stopwatch if holes remain behind the run.
            self._mark_gap(state, head_changed=True)
        self.released += len(released)
        return released

    def next_gap_deadline(self) -> Optional[float]:
        """Earliest monotonic instant a head gap times out (``None`` if
        no gap is open or gap skipping is disabled)."""
        if self.gap_timeout is None:
            return None
        opened = [
            s.gap_since
            for s in self._sources.values()
            if s.gap_since is not None
        ]
        if not opened:
            return None
        return min(opened) + self.gap_timeout

    def flush_held(self) -> List[Tuple[int, T]]:
        """Release every held item in per-source seq order (shutdown).

        A graceful drain must resolve admitted-but-held contexts whose
        gaps will never fill; gaps are skipped, order within each
        source is preserved, and cursors advance past everything so a
        late duplicate is still rejected as stale.
        """
        released: List[Tuple[int, T]] = []
        for source in sorted(self._sources):
            state = self._sources[source]
            for seq in sorted(state.held):
                released.append((seq, state.held.pop(seq)))
                state.next_seq = seq + 1
            state.gap_since = None
        self.released += len(released)
        return released

    def pending(self, source: Optional[str] = None) -> int:
        """Gapped items currently held (for one source or all)."""
        if source is not None:
            state = self._sources.get(source)
            return len(state.held) if state else 0
        return sum(len(s.held) for s in self._sources.values())

    def cursor(self, source: str) -> int:
        """Next sequence number the source is expected to release."""
        state = self._sources.get(source)
        return state.next_seq if state else 0

    def stats(self) -> dict:
        return {
            "sources": len(self._sources),
            "released": self.released,
            "reordered": self.reordered,
            "held": self.pending(),
            "gap_skips": self.gap_skips,
        }
