"""Per-source FIFO sequencing with cross-source concurrency.

A pervasive deployment's correctness story (paper Section 3.2, SECA in
PAPERS.md) assumes each *sensor's* readings are checked in the order
that sensor produced them -- a location track that enters the checker
reordered manufactures inconsistencies that never happened.  The
front-door cannot assume transports deliver in order: one source may
spread pipelined requests over several HTTP connections, and WebSocket
messages from different connections interleave arbitrarily.

:class:`SourceSequencer` restores exactly the guarantee the engine
needs and no more: contexts of one source are *released* to the
batcher in that source's sequence order, while contexts of different
sources pass each other freely.  Sources declare order either
implicitly (submission order on arrival at the service -- ``seq=None``
assigns the next slot) or explicitly (a client-supplied per-source
``seq``; gaps hold later contexts in a bounded reorder buffer until
the gap fills).

The buffer is bounded per source (``max_pending``): a source whose gap
never fills cannot grow server memory without limit -- the overflow is
surfaced as :class:`SequenceError` and shed with reason ``order``.
"""

from __future__ import annotations

from typing import Dict, Generic, List, Optional, Tuple, TypeVar

__all__ = ["SourceSequencer", "SequenceError"]

T = TypeVar("T")


class SequenceError(Exception):
    """A per-source sequencing violation (duplicate, stale, overflow)."""


class _SourceState(Generic[T]):
    __slots__ = ("next_seq", "held")

    def __init__(self) -> None:
        #: Next sequence number expected to be released.
        self.next_seq = 0
        #: Out-of-order arrivals waiting for their gap to fill.
        self.held: Dict[int, T] = {}


class SourceSequencer(Generic[T]):
    """Release items in per-source sequence order.

    Single-threaded (event-loop) by design; :meth:`push` returns the
    items released *by this push* -- zero (held for a gap), one (in
    order), or several (a gap just filled).
    """

    def __init__(self, *, max_pending: int = 256) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._sources: Dict[str, _SourceState[T]] = {}
        self.reordered = 0
        self.released = 0

    def _state(self, source: str) -> _SourceState[T]:
        state = self._sources.get(source)
        if state is None:
            state = self._sources[source] = _SourceState()
        return state

    def push(
        self, source: str, item: T, seq: Optional[int] = None
    ) -> List[Tuple[int, T]]:
        """Submit one item; returns ``(seq, item)`` pairs now in order.

        ``seq=None`` claims the next slot (arrival order *is* source
        order -- the HTTP single-connection case).  An explicit ``seq``
        below the release cursor is a duplicate/stale submission and
        raises; so does holding more than ``max_pending`` gapped items
        for one source.
        """
        state = self._state(source)
        if seq is None:
            seq = state.next_seq + len(state.held)
            while seq in state.held:  # implicit after explicit gaps
                seq += 1
        if seq < state.next_seq:
            raise SequenceError(
                f"source {source!r} seq {seq} already released "
                f"(cursor at {state.next_seq})"
            )
        if seq in state.held:
            raise SequenceError(f"source {source!r} seq {seq} already pending")
        if seq != state.next_seq and len(state.held) >= self.max_pending:
            raise SequenceError(
                f"source {source!r} holds {len(state.held)} out-of-order "
                f"contexts (max {self.max_pending}); dropping seq {seq}"
            )
        state.held[seq] = item
        if seq != state.next_seq:
            self.reordered += 1
        released: List[Tuple[int, T]] = []
        while state.next_seq in state.held:
            released.append((state.next_seq, state.held.pop(state.next_seq)))
            state.next_seq += 1
        self.released += len(released)
        return released

    def flush_held(self) -> List[Tuple[int, T]]:
        """Release every held item in per-source seq order (shutdown).

        A graceful drain must resolve admitted-but-held contexts whose
        gaps will never fill; gaps are skipped, order within each
        source is preserved, and cursors advance past everything so a
        late duplicate is still rejected as stale.
        """
        released: List[Tuple[int, T]] = []
        for source in sorted(self._sources):
            state = self._sources[source]
            for seq in sorted(state.held):
                released.append((seq, state.held.pop(seq)))
                state.next_seq = seq + 1
        self.released += len(released)
        return released

    def pending(self, source: Optional[str] = None) -> int:
        """Gapped items currently held (for one source or all)."""
        if source is not None:
            state = self._sources.get(source)
            return len(state.held) if state else 0
        return sum(len(s.held) for s in self._sources.values())

    def cursor(self, source: str) -> int:
        """Next sequence number the source is expected to release."""
        state = self._sources.get(source)
        return state.next_seq if state else 0

    def stats(self) -> dict:
        return {
            "sources": len(self._sources),
            "released": self.released,
            "reordered": self.reordered,
            "held": self.pending(),
        }
