"""Admission control: token-bucket rate limiting + queue-depth shedding.

The front-door's reliability argument is the paper's drop-bad argument
transposed to arrival time: resolution only protects applications if
it keeps up with live arrivals, so an overloaded server must *shed
explicitly* (HTTP 429, counted per reason) rather than queue without
bound and let latency diverge.  Two independent guards:

* **rate** -- a token bucket refilled at ``rate`` contexts/second with
  ``burst`` capacity.  Smooth traffic at or under the rate is never
  shed; bursts borrow from the bucket and only the excess is refused.
* **depth** -- a cap on admitted-but-undecided contexts.  The batcher
  and engine queue sit behind admission; if the engine falls behind,
  depth (not client patience) is what bounds front-door memory and
  worst-case queueing latency.

A closed controller (graceful shutdown) sheds everything with reason
``closed`` so in-flight clients get a deterministic verdict while the
already-admitted backlog drains to zero loss.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from ..obs.telemetry import Telemetry

__all__ = ["TokenBucket", "AdmissionController", "SHED_RATE", "SHED_DEPTH", "SHED_CLOSED"]

#: Shed reasons (the ``reason`` label of ``serve_shed_total``).
SHED_RATE = "rate"
SHED_DEPTH = "depth"
SHED_CLOSED = "closed"


class TokenBucket:
    """Classic token bucket over a monotonic clock.

    ``clock`` is injectable for deterministic tests; production uses
    ``time.monotonic``.  Not thread-safe -- the front-door runs on one
    event loop.
    """

    __slots__ = ("rate", "capacity", "_tokens", "_updated", "_clock")

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._tokens = float(capacity)
        self._clock = clock
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; never blocks."""
        self._refill(self._clock())
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def available(self) -> float:
        """Current token count (after refill), for stats."""
        self._refill(self._clock())
        return self._tokens


class AdmissionController:
    """Admit or shed each arrival; account every verdict.

    Parameters
    ----------
    rate, burst:
        Token-bucket parameters; ``rate=None`` disables rate shedding.
    max_queue_depth:
        Depth guard over the caller-reported backlog (see
        :meth:`admit`).
    telemetry:
        Bundle receiving ``serve_admitted_total`` and
        ``serve_shed_total{reason=...}``.
    clock:
        Injectable monotonic clock shared with the bucket.
    """

    def __init__(
        self,
        *,
        rate: Optional[float] = None,
        burst: float = 1.0,
        max_queue_depth: int = 4096,
        telemetry: Optional[Telemetry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.bucket = (
            TokenBucket(rate, burst, clock) if rate is not None else None
        )
        self.max_queue_depth = max_queue_depth
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.closed = False
        self.admitted = 0
        #: Shed counts by reason; non-admission reasons (``order``)
        #: land here too via :meth:`revoke`.
        self.shed: Dict[str, int] = {SHED_RATE: 0, SHED_DEPTH: 0, SHED_CLOSED: 0}

    def admit(self, queue_depth: int) -> Optional[str]:
        """One admission verdict: ``None`` admits, else the shed reason.

        ``queue_depth`` is the caller's current admitted-but-undecided
        backlog; the controller itself is stateless about it so the
        service can count batcher + queue + in-flight without the two
        classes sharing structure.
        """
        if self.closed:
            return self._shed(SHED_CLOSED)
        if queue_depth >= self.max_queue_depth:
            return self._shed(SHED_DEPTH)
        if self.bucket is not None and not self.bucket.try_acquire():
            return self._shed(SHED_RATE)
        self.admitted += 1
        self.telemetry.count("serve_admitted_total", help="Contexts admitted")
        return None

    def _shed(self, reason: str) -> str:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        self.telemetry.count(
            "serve_shed_total",
            labels={"reason": reason},
            help="Contexts shed at admission",
        )
        return reason

    def revoke(self, reason: str) -> str:
        """Convert one just-admitted arrival into a shed (e.g. a
        sequencing violation discovered after the rate gate).  The
        monotonic ``serve_admitted_total`` counter is not rewound --
        Prometheus semantics -- but the revocation is counted, so
        ``admitted_total - admitted_revoked_total`` is the net figure;
        the integer :attr:`admitted` used by stats() is net already.
        """
        self.admitted -= 1
        self.telemetry.count(
            "serve_admitted_revoked_total",
            help="Admissions revoked post-admit (sequencing violations)",
        )
        return self._shed(reason)

    def close(self) -> None:
        """Refuse all future arrivals (graceful-shutdown gate)."""
        self.closed = True

    def stats(self) -> dict:
        total_shed = sum(self.shed.values())
        seen = self.admitted + total_shed
        return {
            "admitted": self.admitted,
            "shed": dict(self.shed),
            "shed_total": total_shed,
            "shed_rate": (total_shed / seen) if seen else 0.0,
            "tokens": self.bucket.available() if self.bucket else None,
            "closed": self.closed,
        }
