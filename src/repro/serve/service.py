"""The ingestion service: admission -> sequencing -> batching -> engine.

:class:`IngestService` is the transport-agnostic core of the
front-door; :class:`~repro.serve.http.IngestServer` merely parses
bytes into records and verdicts back into status codes.  The dataflow
per arrival:

1. **parse** -- the record becomes a :class:`~repro.core.context.Context`
   (:mod:`repro.serve.protocol`); malformed records are client errors,
   not sheds.
2. **admit** -- :class:`~repro.serve.admission.AdmissionController`
   sheds on rate or backlog depth with an explicit reason.
3. **sequence** -- :class:`~repro.serve.sequencer.SourceSequencer`
   releases the source's contexts in per-source FIFO order (explicit
   ``seq`` gaps are held, bounded).  With ``gap_timeout`` set, a gap
   that starves longer than the timeout is skipped (a periodic sweeper
   task plus an opportunistic sweep per submission); gap-released
   contexts whose availability lapsed while buffered are dropped here
   with the ``serve_gap_expired_total`` metric rather than forwarded
   to the engine as corpses.
4. **batch** -- :class:`~repro.serve.batcher.AdaptiveBatcher` coalesces
   released contexts under max-size/max-linger.
5. **resolve** -- a single *engine pump* task feeds batches in FIFO
   order into an open :class:`~repro.engine.stream.EngineStream`
   (PR 5's amortized ``receive_batch`` path), which preserves both the
   global batch order and therefore every source's FIFO order.

Latency is measured server-side with one monotonic clock, so the two
headline histograms need no cross-host clock agreement:

* ``serve_ingest_decision_seconds`` -- admission to check+resolve
  completion (the batch the context rode returned from the engine);
* ``serve_ingest_delivery_seconds`` -- admission to ``ContextDelivered``
  (the use window has elapsed and the survivor reached applications).

Graceful shutdown is :meth:`drain`: close admission (new arrivals shed
``closed``), release the sequencer's held tail, flush the batcher,
wait out the engine queue, then close the engine stream -- which uses
every context still inside its window.  Every admitted context reaches
a terminal decision; the drain report asserts the loss count is zero.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..core.context import Context
from ..middleware.bus import (
    ContextDelivered,
    ContextDiscarded,
    ContextDuplicate,
    ContextExpired,
    ContextStale,
)
from ..obs.registry import FINE_LATENCY_BUCKETS
from ..obs.telemetry import Telemetry
from .admission import AdmissionController
from .batcher import AdaptiveBatcher
from .config import ServeConfig
from .protocol import context_from_record
from .sequencer import SequenceError, SourceSequencer

__all__ = ["IngestService", "SubmitResult"]

_log = logging.getLogger("repro.serve")

#: A batcher entry: the context plus its admission wall time.
_Entry = Tuple[Context, float]


class SubmitResult:
    """Verdict for one submitted record."""

    __slots__ = ("ctx_id", "admitted", "reason", "released")

    def __init__(
        self, ctx_id: str, admitted: bool, reason: Optional[str], released: int
    ) -> None:
        self.ctx_id = ctx_id
        self.admitted = admitted
        #: Shed reason (``rate``/``depth``/``order``/``closed``) or None.
        self.reason = reason
        #: Contexts this submission released into the batcher (0 when
        #: held for an explicit-seq gap, >1 when it filled one).
        self.released = released

    def to_record(self) -> dict:
        record: Dict[str, Any] = {
            "ctx_id": self.ctx_id,
            "status": "admitted" if self.admitted else "shed",
        }
        if self.reason is not None:
            record["reason"] = self.reason
        return record


class IngestService:
    """Wire an admission-controlled, ordered, batched path to an engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.engine.facade.ShardedEngine`; the service
        opens one inline stream over it for its whole lifetime.
    config:
        :class:`~repro.serve.config.ServeConfig` knobs.
    telemetry:
        Bundle receiving the ``serve_*`` series; latency histograms use
        :data:`~repro.obs.registry.FINE_LATENCY_BUCKETS`.
    """

    def __init__(
        self,
        engine,
        *,
        config: Optional[ServeConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry.disabled()
        )
        self.stream = engine.open_stream(telemetry=self.telemetry)
        self.admission = AdmissionController(
            rate=self.config.rate,
            burst=self.config.effective_burst(),
            max_queue_depth=self.config.max_queue_depth,
            telemetry=self.telemetry,
        )
        self.sequencer: SourceSequencer[_Entry] = SourceSequencer(
            max_pending=self.config.max_pending_per_source,
            gap_timeout=self.config.gap_timeout,
        )
        #: Gap-released contexts dropped because their availability
        #: lapsed while held (the ``serve_gap_expired_total`` metric).
        self._gap_expired = 0
        self.batcher: AdaptiveBatcher[_Entry] = AdaptiveBatcher(
            self._enqueue,
            max_size=self.config.batch_max_size,
            max_delay=self.config.batch_max_delay,
            telemetry=self.telemetry,
        )
        self._queue: "asyncio.Queue[List[_Entry]]" = asyncio.Queue()
        self._queued_items = 0
        self._inflight_items = 0
        self._pump_task: Optional[asyncio.Task] = None
        self._pump_errors = 0
        #: ctx_id -> admission wall time, for undecided contexts.
        self._pending: Dict[str, float] = {}
        self._started_wall = time.perf_counter()
        self._decision_hist = self.telemetry.histogram(
            "serve_ingest_decision_seconds",
            buckets=FINE_LATENCY_BUCKETS,
            help="Admission to check+resolve completion (seconds)",
        )
        self._delivery_hist = self.telemetry.histogram(
            "serve_ingest_delivery_seconds",
            buckets=FINE_LATENCY_BUCKETS,
            help="Admission to application delivery (seconds)",
        )
        bus = self.stream.bus
        bus.subscribe(ContextDelivered, self._on_delivered)
        bus.subscribe(ContextDiscarded, self._on_terminal)
        bus.subscribe(ContextExpired, self._on_terminal)
        # Async-check ingress refusals are terminal too: a stale or
        # duplicate context never reaches a pool, so its pending entry
        # must be settled here or drain would report it as lost.
        bus.subscribe(ContextStale, self._on_terminal)
        bus.subscribe(ContextDuplicate, self._on_terminal)
        self._sweeper_task: Optional[asyncio.Task] = None
        self.draining = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the engine pump task (requires a running loop)."""
        if self._pump_task is None:
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump(), name="serve-engine-pump"
            )
        if self._sweeper_task is None and self.config.gap_timeout is not None:
            self._sweeper_task = asyncio.get_running_loop().create_task(
                self._gap_sweeper(), name="serve-gap-sweeper"
            )

    def _now(self) -> float:
        return time.perf_counter()

    # -- arrival path --------------------------------------------------------

    def queue_depth(self) -> int:
        """Admitted contexts not yet through check+resolve."""
        return (
            self.sequencer.pending()
            + len(self.batcher)
            + self._queued_items
            + self._inflight_items
        )

    def submit_record(
        self,
        record: Union[Mapping[str, Any], Context],
        *,
        source: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> SubmitResult:
        """Submit one context record; returns its admission verdict.

        Raises :class:`~repro.serve.protocol.ParseError` for malformed
        records (a client error, not a shed).  Must be called on the
        event loop thread.
        """
        if isinstance(record, Context):
            ctx = record
        else:
            ctx, record_seq = context_from_record(
                record, default_timestamp=self._now() - self._started_wall
            )
            if seq is None:
                seq = record_seq
        reason = self.admission.admit(self.queue_depth())
        if reason is not None:
            return SubmitResult(ctx.ctx_id, False, reason, 0)
        entry: _Entry = (ctx, self._now())
        try:
            released = self.sequencer.push(
                source if source is not None else ctx.source, entry, seq
            )
        except SequenceError as error:
            _log.warning("sequencing shed for %s: %s", ctx.ctx_id, error)
            self.admission.revoke("order")
            return SubmitResult(ctx.ctx_id, False, "order", 0)
        for _, released_entry in released:
            self._pending[released_entry[0].ctx_id] = released_entry[1]
            self.batcher.add(released_entry)
        # Opportunistic sweep: a busy service skips starved gaps on the
        # arrival path too, not only at the sweeper's cadence.
        self._sweep_gaps()
        return SubmitResult(ctx.ctx_id, True, None, len(released))

    def submit_many(
        self, records, *, source: Optional[str] = None
    ) -> List[SubmitResult]:
        return [self.submit_record(r, source=source) for r in records]

    # -- gap sweeping --------------------------------------------------------

    def _sweep_gaps(self) -> int:
        """Skip starved sequence gaps; forward the released survivors.

        Returns how many gap-released contexts were forwarded.  A
        gap-released context spent wall time buffered; one whose
        availability window lapsed while held (expiry at or before the
        service's sim clock, wall seconds since start -- the same
        mapping :func:`~repro.serve.protocol.context_from_record` uses
        to default timestamps) is dropped here with
        ``serve_gap_expired_total`` instead of being forwarded to the
        engine as a corpse.  No-op when ``gap_timeout`` is unset.
        """
        skips_before = self.sequencer.gap_skips
        released = self.sequencer.expire_gaps()
        skipped = self.sequencer.gap_skips - skips_before
        if skipped:
            self.telemetry.count(
                "serve_gap_skips",
                amount=skipped,
                help="Sequence slots skipped by gap timeouts",
            )
        if not released:
            return 0
        sim_now = self._now() - self._started_wall
        forwarded = 0
        for _, (ctx, ingest_t) in released:
            if ctx.expiry <= sim_now:
                self._gap_expired += 1
                self.telemetry.count(
                    "serve_gap_expired_total",
                    help="Gap-released contexts dropped: availability "
                    "lapsed while held",
                )
                continue
            self._pending[ctx.ctx_id] = ingest_t
            self.batcher.add((ctx, ingest_t))
            forwarded += 1
        return forwarded

    async def _gap_sweeper(self) -> None:
        """Sweep starved gaps at half the timeout, forever (cancelled
        at drain).  Half the timeout bounds how much a starved gap can
        overshoot ``gap_timeout`` between sweeps."""
        interval = self.config.gap_timeout / 2
        while True:
            await asyncio.sleep(interval)
            self._sweep_gaps()

    # -- engine pump ---------------------------------------------------------

    def _enqueue(self, batch: List[_Entry]) -> None:
        self._queued_items += len(batch)
        self._queue.put_nowait(batch)

    async def _pump(self) -> None:
        """Feed flushed batches to the engine stream, strictly in order."""
        while True:
            batch = await self._queue.get()
            self._queued_items -= len(batch)
            self._inflight_items = len(batch)
            try:
                self.stream.submit([entry[0] for entry in batch])
                decided_at = self._now()
                for ctx, ingest_t in batch:
                    self._decision_hist.observe(decided_at - ingest_t)
                self.telemetry.count(
                    "serve_decided_total",
                    amount=len(batch),
                    help="Contexts through check+resolve",
                )
            except Exception:
                # Fail soft: an engine fault must not wedge the pump --
                # the batch's contexts are accounted as lost in stats()
                # (their pending entries stay), loudly.
                self._pump_errors += 1
                _log.exception(
                    "engine pump failed on a %d-context batch", len(batch)
                )
                self.telemetry.count(
                    "serve_pump_errors_total", help="Engine pump failures"
                )
            finally:
                self._inflight_items = 0
                self._queue.task_done()

    # -- decision accounting -------------------------------------------------

    def _on_delivered(self, event) -> None:
        ingest_t = self._pending.pop(event.context.ctx_id, None)
        if ingest_t is not None:
            self._delivery_hist.observe(self._now() - ingest_t)

    def _on_terminal(self, event) -> None:
        self._pending.pop(event.context.ctx_id, None)

    # -- graceful shutdown ---------------------------------------------------

    async def drain(self) -> Dict[str, Any]:
        """Quiesce: shed new arrivals, resolve everything admitted.

        Returns a drain report; ``lost`` must be 0 unless the pump hit
        an engine fault mid-run (``pump_errors``).
        """
        self.draining = True
        self.admission.close()
        # Release the sequencer's held tail (sources whose gaps will
        # now never fill) in per-source seq order, so held-but-admitted
        # contexts are resolved rather than dropped.
        for _, entry in self.sequencer.flush_held():
            self._pending[entry[0].ctx_id] = entry[1]
            self.batcher.add(entry)
        self.batcher.drain()
        await self.start()  # drain works even if start() was never called
        await self._queue.join()
        self.stream.close()
        bus = self.stream.bus
        bus.unsubscribe(ContextDelivered, self._on_delivered)
        bus.unsubscribe(ContextDiscarded, self._on_terminal)
        bus.unsubscribe(ContextExpired, self._on_terminal)
        bus.unsubscribe(ContextStale, self._on_terminal)
        bus.unsubscribe(ContextDuplicate, self._on_terminal)
        for task_attr in ("_pump_task", "_sweeper_task"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, task_attr, None)
        report = {
            "admitted": self.admission.admitted,
            "decided": self.stream.decided(),
            "delivered": self.stream.delivered,
            "discarded": self.stream.discarded,
            "expired": self.stream.expired,
            "lost": len(self._pending),
            "gap_skips": self.sequencer.gap_skips,
            "gap_expired": self._gap_expired,
            "pump_errors": self._pump_errors,
        }
        if report["lost"]:
            _log.error(
                "drain lost %d admitted context(s): %s",
                report["lost"],
                sorted(self._pending)[:10],
            )
        return report

    # -- stats ---------------------------------------------------------------

    @staticmethod
    def _latency_stats(histogram) -> Dict[str, float]:
        count = histogram.count
        return {
            "count": count,
            "mean": (histogram.sum / count) if count else 0.0,
            "p50": histogram.percentile(0.50),
            "p95": histogram.percentile(0.95),
            "p99": histogram.percentile(0.99),
        }

    def stats(self) -> Dict[str, Any]:
        """JSON-ready snapshot (the ``GET /stats`` payload)."""
        return {
            "admission": self.admission.stats(),
            "sequencer": self.sequencer.stats(),
            "batcher": self.batcher.stats(),
            "queue_depth": self.queue_depth(),
            "engine": {
                "submitted": self.stream.submitted,
                "delivered": self.stream.delivered,
                "discarded": self.stream.discarded,
                "expired": self.stream.expired,
                "stale": self.stream.stale,
                "duplicates": self.stream.duplicates,
                "pending_uses": self.stream.pending_uses(),
                "pool_size": self.stream.pool_size(),
            },
            "latency": {
                "ingest_to_decision": self._latency_stats(self._decision_hist),
                "ingest_to_delivery": self._latency_stats(self._delivery_hist),
            },
            "undecided": len(self._pending),
            "gap_expired": self._gap_expired,
            "pump_errors": self._pump_errors,
            "draining": self.draining,
        }
