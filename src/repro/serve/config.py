"""Serving tunables: admission, batching, transport.

One frozen dataclass, mirroring :class:`repro.engine.config.EngineConfig`:
the CLI, the tests and the load generator all construct the front-door
the same way.  Knob semantics are documented in docs/serving.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the ingestion front-door.

    Parameters
    ----------
    host, port:
        Listen address.  Port ``0`` binds an ephemeral port (tests);
        the bound port is reported by :meth:`IngestServer.start`.
    rate:
        Token-bucket admission rate in contexts/second; ``None``
        disables rate shedding (depth shedding still applies).
    burst:
        Token-bucket capacity -- the largest instantaneous burst
        admitted at full bucket.  Defaults to one second of ``rate``
        (minimum 1) when unset.
    max_queue_depth:
        Upper bound on admitted-but-undecided contexts (batcher buffer
        plus engine queue plus in-flight batch).  Arrivals beyond it
        are shed with reason ``depth`` -- the backpressure that keeps
        front-door memory bounded however fast clients push.
    batch_max_size:
        Flush the adaptive batcher as soon as this many contexts are
        buffered.
    batch_max_delay:
        Flush the batcher this many *wall* seconds after its oldest
        buffered context arrived, even if the batch is small -- the
        latency ceiling batching may add to an idle-period arrival.
    max_pending_per_source:
        Bound on out-of-order contexts the per-source sequencer will
        hold while waiting for a gap to fill; a source exceeding it is
        shed with reason ``order``.
    gap_timeout:
        Wall seconds a source may starve on a sequence gap before the
        sequencer skips it (``serve_gap_skips``) and releases the
        contexts held behind it; gap-released contexts whose
        availability lapsed while buffered are dropped at the service
        (``serve_gap_expired_total``) instead of being forwarded.
        ``None`` (the default) disables gap skipping: held contexts
        wait for the gap to fill or for the final drain.
    max_body_bytes:
        Largest HTTP request body / WebSocket message accepted.
    """

    host: str = "127.0.0.1"
    port: int = 8600
    rate: Optional[float] = None
    burst: Optional[float] = None
    max_queue_depth: int = 4096
    batch_max_size: int = 64
    batch_max_delay: float = 0.005
    max_pending_per_source: int = 256
    gap_timeout: Optional[float] = None
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.burst is not None and self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.batch_max_size < 1:
            raise ValueError(
                f"batch_max_size must be >= 1, got {self.batch_max_size}"
            )
        if self.batch_max_delay < 0:
            raise ValueError(
                f"batch_max_delay must be >= 0, got {self.batch_max_delay}"
            )
        if self.max_pending_per_source < 1:
            raise ValueError(
                "max_pending_per_source must be >= 1, got "
                f"{self.max_pending_per_source}"
            )
        if self.gap_timeout is not None and self.gap_timeout <= 0:
            raise ValueError(
                f"gap_timeout must be > 0 or None, got {self.gap_timeout}"
            )
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )

    def effective_burst(self) -> float:
        """The burst capacity actually applied (default: 1s of rate)."""
        if self.burst is not None:
            return self.burst
        if self.rate is None:
            return 1.0
        return max(1.0, self.rate)

    def with_port(self, port: int) -> "ServeConfig":
        return replace(self, port=port)
