"""Async ingestion front-door for the sharded resolution engine.

Everything below :mod:`repro.engine` is closed-loop: a whole stream is
materialized, fed through, and measured in contexts/second.  Production
serving is the opposite shape -- concurrent clients push sustained
traffic and the number that matters is resolution latency at a target
arrival rate.  This package is that front-door (docs/serving.md):

* :class:`AdmissionController` -- token-bucket rate limiting plus
  queue-depth shedding, with explicit shed verdicts (HTTP 429) and
  ``serve_shed_total{reason=...}`` accounting;
* :class:`SourceSequencer` -- per-source FIFO release: each sensor's
  contexts enter the engine in its own submission order while distinct
  sources interleave freely;
* :class:`AdaptiveBatcher` -- coalesces admitted arrivals into engine
  batches under a max-size / max-linger policy, riding the amortized
  :func:`repro.runtime.batch.receive_batch` arrival path;
* :class:`IngestService` -- the transport-agnostic core wiring the
  three into an open :class:`~repro.engine.stream.EngineStream`, with
  ingest->decision / ingest->delivery latency histograms and a
  zero-loss drain for graceful shutdown;
* :class:`IngestServer` (:mod:`repro.serve.http`) -- stdlib asyncio
  HTTP/1.1 + WebSocket transport over the service;
* :mod:`repro.serve.loadgen` -- the open-loop (constant-rate) load
  generator behind ``repro loadgen`` and ``BENCH_serve.json``.
"""

from .admission import AdmissionController, TokenBucket
from .batcher import AdaptiveBatcher
from .config import ServeConfig
from .http import HttpClient, IngestServer, WsClient
from .sequencer import SequenceError, SourceSequencer
from .service import IngestService, SubmitResult

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "AdaptiveBatcher",
    "ServeConfig",
    "SequenceError",
    "SourceSequencer",
    "IngestService",
    "SubmitResult",
    "IngestServer",
    "HttpClient",
    "WsClient",
]
