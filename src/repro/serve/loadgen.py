"""Open-loop load generation against the ingestion front-door.

The generator is **open-loop**: send times are fixed by the offered
rate alone (``t_i = start + i/rate``), never by response times, so a
server that falls behind faces a growing backlog exactly as a real
sensor fleet would -- the coordinated-omission trap of closed-loop
"send, await, send" measurement is avoided by construction.  Requests
ride a grow-on-demand pool of keep-alive HTTP connections; a response
slower than the send interval simply occupies its connection while new
sends open or reuse others.

Two latency views are reported per rate point:

* **client ack** -- send to HTTP ack (202/429), measured here, exact
  percentiles over every request;
* **server ingest** -- admission to decision / to delivery, read from
  ``GET /stats`` (the service's fine-bucket histograms), free of
  client/server clock skew.

:func:`run_sweep` drives one self-contained server per rate point
(fresh engine, port 0) and merges the rows into ``BENCH_serve.json``
via the engine's fail-soft :func:`~repro.engine.metrics.write_bench_json`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Sequence

from ..apps.call_forwarding import CallForwardingApp
from ..apps.rfid_anomalies import RFIDAnomaliesApp
from ..apps.smart_phone import SmartPhoneApp
from ..obs.telemetry import Telemetry
from .config import ServeConfig
from .http import HttpClient, IngestServer
from .protocol import record_from_context
from .service import IngestService

__all__ = [
    "LOADGEN_APPS",
    "build_app_engine",
    "prepare_records",
    "run_open_loop",
    "run_sweep",
]

#: Applications a load generator can replay, with their paper windows.
LOADGEN_APPS = {
    "call-forwarding": (CallForwardingApp, 10),
    "rfid": (RFIDAnomaliesApp, 20),
    "smart-phone": (SmartPhoneApp, 8),
}


def build_app_engine(
    app_name: str,
    *,
    shards: int = 2,
    strategy: str = "drop-bad",
    use_window: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    ledger_path: Optional[str] = None,
    ledger_fsync: bool = False,
    async_check=None,
):
    """A :class:`~repro.engine.facade.ShardedEngine` for one app.

    Inline mode: the front-door's pump feeds an in-process stream, so
    worker processes would only add serialization overhead here.
    ``ledger_path`` records the session's decision ledger (live, via
    the open stream's recorder).  ``async_check`` (an
    :class:`~repro.runtime.snapshot.AsyncCheckConfig`) puts the
    stream's arrival path behind the snapshot-window ingress.
    """
    from ..engine import EngineConfig, ShardedEngine

    try:
        app_cls, default_window = LOADGEN_APPS[app_name]
    except KeyError:
        raise ValueError(
            f"unknown app {app_name!r}; expected one of {sorted(LOADGEN_APPS)}"
        ) from None
    app = app_cls()
    checker = app.build_checker()
    config = EngineConfig(
        shards=shards,
        mode="inline",
        use_window=use_window if use_window is not None else default_window,
        ledger_path=ledger_path,
        ledger_fsync=ledger_fsync,
        async_check=async_check,
    )
    return ShardedEngine(
        checker.constraints(),
        strategy=strategy,
        registry_factory=app.build_registry,
        config=config,
        telemetry=telemetry,
    )


def prepare_records(
    app_name: str,
    n_contexts: int,
    *,
    err_rate: float = 0.3,
    seed: int = 1,
) -> List[dict]:
    """``n_contexts`` wire records from an app's generated workload.

    Timestamps are stripped so the server assigns arrival offsets (live
    traffic is clocked by arrival, not by the generator's simulated
    day), and cycling beyond one workload's length re-suffixes
    ``ctx_id`` to keep every record unique.
    """
    app_cls, _ = LOADGEN_APPS[app_name]
    contexts = app_cls().generate_workload(err_rate, seed=seed)
    if not contexts:
        raise ValueError(f"app {app_name!r} generated an empty workload")
    records = []
    for i in range(n_contexts):
        ctx = contexts[i % len(contexts)]
        record = record_from_context(ctx)
        del record["timestamp"]
        if i >= len(contexts):
            record["ctx_id"] = f"{ctx.ctx_id}#cycle{i // len(contexts)}"
        records.append(record)
    return records


def _percentiles(samples: Sequence[float]) -> Dict[str, float]:
    if not samples:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(samples)
    last = len(ordered) - 1

    def at(q: float) -> float:
        return ordered[min(last, int(q * len(ordered)))]

    return {
        "count": len(ordered),
        "p50": at(0.50),
        "p95": at(0.95),
        "p99": at(0.99),
        "max": ordered[-1],
    }


class _ClientPool:
    """Grow-on-demand keep-alive connection pool (open-loop sends must
    never wait for a busy connection)."""

    def __init__(self, host: str, port: int, limit: int = 64) -> None:
        self.host = host
        self.port = port
        self.limit = limit
        self._free: List[HttpClient] = []
        self._all: List[HttpClient] = []
        self._waiters: "asyncio.Queue[HttpClient]" = asyncio.Queue()
        self._outstanding_waits = 0

    async def acquire(self) -> HttpClient:
        if self._free:
            return self._free.pop()
        if len(self._all) < self.limit:
            client = await HttpClient.connect(self.host, self.port)
            self._all.append(client)
            return client
        self._outstanding_waits += 1
        try:
            return await self._waiters.get()
        finally:
            self._outstanding_waits -= 1

    def release(self, client: HttpClient) -> None:
        if self._outstanding_waits:
            self._waiters.put_nowait(client)
        else:
            self._free.append(client)

    async def close(self) -> None:
        for client in self._all:
            await client.close()

    def __len__(self) -> int:
        return len(self._all)


async def run_open_loop(
    host: str,
    port: int,
    records: Sequence[dict],
    *,
    rate: float,
    max_connections: int = 64,
) -> Dict[str, Any]:
    """Offer ``records`` at ``rate``/s; returns the client-side row.

    The caller owns the server (and its drain); this only measures.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    pool = _ClientPool(host, port, limit=max_connections)
    loop = asyncio.get_running_loop()
    latencies: List[float] = []
    outcomes = {"accepted": 0, "shed": 0, "error": 0}

    async def send_one(record: dict) -> None:
        sent = time.perf_counter()
        try:
            client = await pool.acquire()
            try:
                status, payload = await client.post("/contexts", record)
            finally:
                pool.release(client)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            outcomes["error"] += 1
            return
        latencies.append(time.perf_counter() - sent)
        if status == 202:
            outcomes["accepted"] += payload.get("accepted", 1)
            outcomes["shed"] += payload.get("shed", 0)
        elif status == 429:
            outcomes["shed"] += payload.get("shed", 1)
        else:
            outcomes["error"] += 1

    started = time.perf_counter()
    origin = loop.time()
    tasks = []
    for i, record in enumerate(records):
        delay = (origin + i / rate) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(loop.create_task(send_one(record)))
    if tasks:
        await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - started
    await pool.close()
    return {
        "offered_rate": rate,
        "achieved_rate": (len(records) / elapsed) if elapsed > 0 else 0.0,
        "sent": len(records),
        "accepted": outcomes["accepted"],
        "shed": outcomes["shed"],
        "errors": outcomes["error"],
        "shed_rate": (
            outcomes["shed"] / (outcomes["accepted"] + outcomes["shed"])
            if (outcomes["accepted"] + outcomes["shed"])
            else 0.0
        ),
        "elapsed_s": elapsed,
        "connections": len(pool),
        "client_ack_latency_s": _percentiles(latencies),
    }


async def _run_point(
    app_name: str,
    records: Sequence[dict],
    rate: float,
    *,
    shards: int,
    strategy: str,
    serve_config: ServeConfig,
    max_connections: int,
) -> Dict[str, Any]:
    """One self-contained rate point: fresh engine + server on port 0."""
    telemetry = Telemetry(enabled=True)
    engine = build_app_engine(
        app_name, shards=shards, strategy=strategy, telemetry=telemetry
    )
    service = IngestService(
        engine, config=serve_config.with_port(0), telemetry=telemetry
    )
    server = IngestServer(service)
    host, port = await server.start()
    try:
        row = await run_open_loop(
            host, port, records, rate=rate, max_connections=max_connections
        )
        # Drain BEFORE reading stats, so the decision/delivery
        # histograms cover every admitted context (the last batch may
        # still be queued for the pump when the last ack returns).
        stats_client = await HttpClient.connect(host, port)
        try:
            _, report = await stats_client.post("/drain", {})
            _, stats = await stats_client.get("/stats")
        finally:
            await stats_client.close()
    finally:
        await server.shutdown()
    row["server"] = {
        "ingest_to_decision_s": stats["latency"]["ingest_to_decision"],
        "ingest_to_delivery_s": stats["latency"]["ingest_to_delivery"],
        "admission": stats["admission"],
        "batcher": stats["batcher"],
    }
    row["drain"] = report
    return row


def run_sweep(
    app_name: str,
    rates: Sequence[float],
    *,
    n_contexts: int = 500,
    err_rate: float = 0.3,
    seed: int = 1,
    shards: int = 2,
    strategy: str = "drop-bad",
    serve_config: Optional[ServeConfig] = None,
    max_connections: int = 64,
    json_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Offered-rate sweep; one fresh server per point.

    Returns (and optionally merges into ``json_path`` under workload
    key ``serve_open_loop``) a record with one row per offered rate.
    """
    records = prepare_records(
        app_name, n_contexts, err_rate=err_rate, seed=seed
    )
    serve_config = serve_config or ServeConfig()
    rows = []
    for rate in rates:
        rows.append(
            asyncio.run(
                _run_point(
                    app_name,
                    records,
                    float(rate),
                    shards=shards,
                    strategy=strategy,
                    serve_config=serve_config,
                    max_connections=max_connections,
                )
            )
        )
    record: Dict[str, Any] = {
        "app": app_name,
        "n_contexts": n_contexts,
        "err_rate": err_rate,
        "shards": shards,
        "strategy": strategy,
        "rates": [float(r) for r in rates],
        "rows": rows,
    }
    if json_path:
        from ..engine.metrics import write_bench_json

        write_bench_json(json_path, "serve_open_loop", record)
    return record


def format_sweep(record: Dict[str, Any]) -> str:
    """Human-readable sweep table (the CLI's output)."""

    def us(seconds: float) -> str:
        return f"{seconds * 1e6:8.0f}us"

    lines = [
        f"Open-loop ingest sweep -- {record['app']} "
        f"({record['n_contexts']} contexts/point, {record['shards']} shard(s), "
        f"{record['strategy']})",
        "  rate     ack p50/p95/p99          decision p50/p95/p99       "
        "delivery p95   shed%",
    ]
    for row in record["rows"]:
        ack = row["client_ack_latency_s"]
        decision = row["server"]["ingest_to_decision_s"]
        delivery = row["server"]["ingest_to_delivery_s"]
        lines.append(
            f"  {row['offered_rate']:6.0f}"
            f"  {us(ack['p50'])}/{us(ack['p95'])}/{us(ack['p99'])}"
            f"  {us(decision['p50'])}/{us(decision['p95'])}/{us(decision['p99'])}"
            f"  {us(delivery['p95'])}"
            f"  {row['shed_rate'] * 100:5.1f}"
        )
    return "\n".join(lines)
