"""Adaptive batching: coalesce live arrivals into engine batches.

PR 5's amortized arrival path (:func:`repro.runtime.batch.receive_batch`)
hoists per-arrival bookkeeping across a batch -- but a serving
front-door receives contexts one connection read at a time.  The
batcher closes that gap under a two-sided policy:

* **max_size** -- a full batch flushes immediately (throughput side:
  the engine always sees the amortization win under load);
* **max_delay** -- an idle-period arrival flushes at most ``max_delay``
  wall seconds after the *oldest* buffered context arrived (latency
  side: batching can add at most that much ingest latency, however
  quiet the stream is).

At high arrival rates batches fill before the timer fires and the
effective batch size adapts upward; at low rates the timer dominates
and batches shrink toward 1 -- the classic adaptive-batching shape,
with both triggers accounted separately
(``serve_batch_flush_total{trigger=size|timer|drain}``).

Single event loop, no locks.  The flush handler is a plain callable
(the service enqueues to its engine pump); the batcher never blocks an
arrival on engine work.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

from ..obs.telemetry import Telemetry

__all__ = ["AdaptiveBatcher"]

T = TypeVar("T")

#: Batch-size histogram buckets (contexts per flush, powers of two).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class AdaptiveBatcher(Generic[T]):
    """Buffer items and flush by size or age, whichever trips first."""

    def __init__(
        self,
        flush: Callable[[List[T]], None],
        *,
        max_size: int = 64,
        max_delay: float = 0.005,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self._flush_downstream = flush
        self.max_size = max_size
        self.max_delay = max_delay
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self._buffer: List[T] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._size_histogram = self.telemetry.histogram(
            "serve_batch_size",
            buckets=BATCH_SIZE_BUCKETS,
            help="Contexts per flushed engine batch",
        )
        self.flushes = 0
        self.items = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def add(self, item: T) -> None:
        """Buffer one admitted item; flush if the batch filled."""
        self._buffer.append(item)
        if len(self._buffer) >= self.max_size:
            self._fire("size")
        elif self._timer is None:
            if self.max_delay == 0:
                self._fire("timer")
            else:
                loop = asyncio.get_running_loop()
                self._timer = loop.call_later(
                    self.max_delay, self._fire, "timer"
                )

    def extend(self, items: Sequence[T]) -> None:
        for item in items:
            self.add(item)

    def _fire(self, trigger: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        self.flushes += 1
        self.items += len(batch)
        self._size_histogram.observe(float(len(batch)))
        self.telemetry.count(
            "serve_batch_flush_total",
            labels={"trigger": trigger},
            help="Batcher flushes by trigger",
        )
        self._flush_downstream(batch)

    def drain(self) -> None:
        """Flush whatever is buffered now (shutdown path); idempotent."""
        self._fire("drain")

    def stats(self) -> dict:
        return {
            "buffered": len(self._buffer),
            "flushes": self.flushes,
            "items": self.items,
            "mean_batch": (self.items / self.flushes) if self.flushes else 0.0,
        }
