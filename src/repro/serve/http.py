"""HTTP/1.1 + WebSocket ingestion transport over asyncio streams.

No web framework: the repo is dependency-free by charter, and the
front-door needs exactly four routes and one upgrade, so the protocol
surface is written out against ``asyncio.start_server``:

* ``POST /contexts`` -- one JSON context record, a list, or
  ``{"contexts": [...]}``.  ``202`` with per-record verdicts when
  anything was admitted; ``429`` when *everything* was shed (the
  explicit back-off signal, with per-reason counts in the body);
  ``400`` for malformed records; ``413`` for oversized bodies.
* ``GET /stats`` -- the service's JSON stats snapshot (the loadgen's
  measurement surface).
* ``GET /healthz`` -- liveness.
* ``POST /drain`` -- graceful quiesce returning the drain report
  (also triggered by SIGINT/SIGTERM in :meth:`IngestServer.run`).
* ``GET /ws`` (``Upgrade: websocket``) -- RFC 6455 text frames, one
  JSON record (or list) per message, one JSON verdict per message;
  ping is answered with pong, close with close.  Client frames are
  masked per the RFC; fragmented messages are not supported (the
  repo's own clients never fragment).

:class:`HttpClient` and :class:`WsClient` are the matching minimal
clients used by the load generator and the smoke tests.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import logging
import os
import signal
from typing import Any, Dict, Optional, Tuple

from ..obs.telemetry import Telemetry
from .config import ServeConfig
from .protocol import ParseError
from .service import IngestService

__all__ = ["IngestServer", "HttpClient", "WsClient"]

_log = logging.getLogger("repro.serve.http")

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

# WebSocket opcodes.
_OP_TEXT = 0x1
_OP_CLOSE = 0x8
_OP_PING = 0x9
_OP_PONG = 0xA


class _BodyTooLarge(Exception):
    pass


# -- shared HTTP plumbing -----------------------------------------------------


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """One request as ``(method, target, headers, body)``; None on EOF."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line or request_line in (b"\r\n", b"\n"):
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise ValueError(f"malformed request line: {request_line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > max_body:
        raise _BodyTooLarge(length)
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    *,
    keep_alive: bool = True,
) -> None:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        "content-type: application/json\r\n"
        f"content-length: {len(body)}\r\n"
        f"connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)


# -- WebSocket framing --------------------------------------------------------


def _ws_accept_value(key: str) -> str:
    digest = hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


async def _ws_read_frame(
    reader: asyncio.StreamReader, max_len: int
) -> Tuple[int, bytes]:
    first = await reader.readexactly(2)
    opcode = first[0] & 0x0F
    masked = bool(first[1] & 0x80)
    length = first[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    if length > max_len:
        raise _BodyTooLarge(length)
    mask = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length)
    if mask:
        payload = bytes(b ^ mask[i & 3] for i, b in enumerate(payload))
    return opcode, payload


def _ws_write_frame(
    writer: asyncio.StreamWriter,
    payload: bytes,
    opcode: int = _OP_TEXT,
    *,
    mask: bool = False,
) -> None:
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += length.to_bytes(2, "big")
    else:
        header.append(mask_bit | 127)
        header += length.to_bytes(8, "big")
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i & 3] for i, b in enumerate(payload))
    writer.write(bytes(header) + payload)


# -- the server ---------------------------------------------------------------


class IngestServer:
    """Bind an :class:`IngestService` to HTTP and WebSocket transports."""

    def __init__(
        self,
        service: IngestService,
        *,
        config: Optional[ServeConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.service = service
        self.config = config or service.config
        self.telemetry = (
            telemetry if telemetry is not None else service.telemetry
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set = set()
        self._shutdown_event = asyncio.Event()
        self.drain_report: Optional[dict] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port).

        Idempotent: a second call reports the existing binding, so
        :meth:`run` can be layered over an explicit :meth:`start`.
        """
        await self.service.start()
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def request_shutdown(self, reason: str = "signal") -> None:
        """Signal-safe shutdown trigger (the SIGINT/SIGTERM handler)."""
        _log.info("shutdown requested (%s); draining", reason)
        self._shutdown_event.set()

    async def run(self, install_signal_handlers: bool = True) -> dict:
        """Serve until SIGINT/SIGTERM (or :meth:`request_shutdown`),
        then drain gracefully; returns the drain report."""
        host, port = await self.start()
        _log.info("ingest server listening on %s:%d", host, port)
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(
                        sig, self.request_shutdown, sig.name
                    )
                except (NotImplementedError, RuntimeError):
                    # Platforms without loop signal support fall back
                    # to KeyboardInterrupt propagation.
                    pass
        await self._shutdown_event.wait()
        return await self.shutdown()

    async def shutdown(self) -> dict:
        """Stop accepting, drain the service to zero loss, close."""
        if self._server is not None:
            self._server.close()
        self.drain_report = await self.service.drain()
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:  # noqa: B902 - best-effort close
                pass
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        return self.drain_report

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(
                        reader, self.config.max_body_bytes
                    )
                except _BodyTooLarge:
                    _write_response(
                        writer,
                        413,
                        {"error": "body too large"},
                        keep_alive=False,
                    )
                    break
                except (ValueError, asyncio.IncompleteReadError):
                    break
                if request is None:
                    break
                method, target, headers, body = request
                if (
                    headers.get("upgrade", "").lower() == "websocket"
                    and method == "GET"
                ):
                    await self._handle_websocket(reader, writer, headers)
                    break
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._handle_http(
                    method, target, body, writer, keep_alive
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: B902 - already closing
                pass

    async def _handle_http(
        self,
        method: str,
        target: str,
        body: bytes,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> None:
        path = target.split("?", 1)[0]
        self.telemetry.count(
            "serve_requests_total",
            labels={"transport": "http"},
            help="Transport requests",
        )
        if path == "/healthz" and method == "GET":
            _write_response(writer, 200, {"status": "ok"}, keep_alive=keep_alive)
        elif path == "/stats" and method == "GET":
            _write_response(
                writer, 200, self.service.stats(), keep_alive=keep_alive
            )
        elif path == "/contexts" and method == "POST":
            status, payload = self._submit_body(body)
            _write_response(writer, status, payload, keep_alive=keep_alive)
        elif path == "/drain" and method == "POST":
            report = await self.service.drain()
            _write_response(writer, 200, report, keep_alive=keep_alive)
        elif path in ("/contexts", "/drain", "/stats", "/healthz"):
            _write_response(
                writer, 405, {"error": "method not allowed"}, keep_alive=keep_alive
            )
        else:
            _write_response(
                writer, 404, {"error": f"no route {path}"}, keep_alive=keep_alive
            )

    def _submit_body(self, body: bytes) -> Tuple[int, dict]:
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            return 400, {"error": f"invalid JSON: {error}"}
        if isinstance(document, dict) and "contexts" in document:
            records = document["contexts"]
        elif isinstance(document, list):
            records = document
        else:
            records = [document]
        if not isinstance(records, list) or not records:
            return 400, {"error": "no context records in body"}
        results = []
        try:
            for record in records:
                results.append(self.service.submit_record(record).to_record())
        except ParseError as error:
            return 400, {"error": str(error), "results": results}
        admitted = sum(1 for r in results if r["status"] == "admitted")
        shed = len(results) - admitted
        payload = {"accepted": admitted, "shed": shed, "results": results}
        return (429 if admitted == 0 else 202), payload

    # -- websocket ----------------------------------------------------------

    async def _handle_websocket(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: Dict[str, str],
    ) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            _write_response(
                writer, 400, {"error": "missing Sec-WebSocket-Key"},
                keep_alive=False,
            )
            return
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "upgrade: websocket\r\n"
                "connection: Upgrade\r\n"
                f"sec-websocket-accept: {_ws_accept_value(key)}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        while True:
            try:
                opcode, payload = await _ws_read_frame(
                    reader, self.config.max_body_bytes
                )
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                _BodyTooLarge,
            ):
                break
            if opcode == _OP_CLOSE:
                _ws_write_frame(writer, payload, _OP_CLOSE)
                await writer.drain()
                break
            if opcode == _OP_PING:
                _ws_write_frame(writer, payload, _OP_PONG)
                await writer.drain()
                continue
            if opcode != _OP_TEXT:
                continue
            self.telemetry.count(
                "serve_requests_total",
                labels={"transport": "ws"},
                help="Transport requests",
            )
            reply = self._submit_ws_message(payload)
            _ws_write_frame(writer, json.dumps(reply).encode("utf-8"))
            await writer.drain()

    def _submit_ws_message(self, payload: bytes) -> Any:
        try:
            document = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            return {"status": "error", "error": f"invalid JSON: {error}"}
        records = document if isinstance(document, list) else [document]
        results = []
        for record in records:
            try:
                results.append(self.service.submit_record(record).to_record())
            except ParseError as error:
                results.append({"status": "error", "error": str(error)})
        return results if isinstance(document, list) else results[0]


# -- minimal clients ----------------------------------------------------------


class HttpClient:
    """Persistent keep-alive JSON client (loadgen + tests)."""

    def __init__(
        self, host: str, port: int, reader=None, writer=None
    ) -> None:
        self.host = host
        self.port = port
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "HttpClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(host, port, reader, writer)

    async def request(
        self, method: str, path: str, payload: Any = None
    ) -> Tuple[int, Any]:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"host: {self.host}:{self.port}\r\n"
            "content-type: application/json\r\n"
            f"content-length: {len(body)}\r\n"
            "connection: keep-alive\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        return status, (json.loads(raw) if raw else None)

    async def post(self, path: str, payload: Any) -> Tuple[int, Any]:
        return await self.request("POST", path, payload)

    async def get(self, path: str) -> Tuple[int, Any]:
        return await self.request("GET", path)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:  # noqa: B902 - already closing
                pass


class WsClient:
    """Minimal RFC 6455 client: masked text frames, JSON payloads."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int, path: str = "/ws") -> "WsClient":
        reader, writer = await asyncio.open_connection(host, port)
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\n"
                f"host: {host}:{port}\r\n"
                "upgrade: websocket\r\n"
                "connection: Upgrade\r\n"
                f"sec-websocket-key: {key}\r\n"
                "sec-websocket-version: 13\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        status_line = await reader.readline()
        if b"101" not in status_line:
            raise ConnectionError(f"websocket upgrade refused: {status_line!r}")
        accept = None
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        if accept != _ws_accept_value(key):
            raise ConnectionError("websocket accept-key mismatch")
        return cls(reader, writer)

    async def send_json(self, payload: Any) -> None:
        _ws_write_frame(
            self._writer, json.dumps(payload).encode("utf-8"), mask=True
        )
        await self._writer.drain()

    async def recv_json(self) -> Any:
        while True:
            opcode, payload = await _ws_read_frame(self._reader, 1 << 24)
            if opcode == _OP_TEXT:
                return json.loads(payload.decode("utf-8"))
            if opcode == _OP_CLOSE:
                raise ConnectionError("server closed the websocket")

    async def close(self) -> None:
        try:
            _ws_write_frame(self._writer, b"", _OP_CLOSE, mask=True)
            await self._writer.drain()
        except Exception:  # noqa: B902 - already closing
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:  # noqa: B902 - already closing
            pass
