"""Rule-satisfaction sensitivity experiment (Section 5.2's open question).

The paper closes its case study with: "We are now on the way to
further investigate what percentage value [of Rule 2' satisfaction]
is sufficient for guaranteeing satisfactory results from the drop-bad
resolution strategy."  This experiment performs that investigation on
the simulated workloads: it sweeps the error rate, measures the
empirical Rule 1 / 2' satisfaction of each run with the instrumented
strategy, and pairs it with the run's resolution quality (removal
precision and expected-context survival), so the relationship between
"how well the heuristics hold" and "how well drop-bad performs" can
be read off directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.rules import InstrumentedDropBad
from .harness import ApplicationBundle, run_group
from .metrics import sample_stdev

__all__ = ["RuleSensitivityPoint", "run_rule_sensitivity"]


@dataclass(frozen=True)
class RuleSensitivityPoint:
    """Rule satisfaction vs resolution quality at one error rate."""

    err_rate: float
    rule1_rate: float
    rule2_relaxed_rate: float
    rule2_relaxed_std: float
    removal_precision: float
    survival_rate: float
    observations: float


def run_rule_sensitivity(
    app: ApplicationBundle,
    *,
    err_rates: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
    groups: int = 5,
    use_window: int = 10,
    base_seed: int = 401,
    workload_kwargs: Optional[Dict[str, object]] = None,
) -> List[RuleSensitivityPoint]:
    """Sweep error rates; one aggregated point per rate."""
    kwargs = workload_kwargs or {}
    points: List[RuleSensitivityPoint] = []
    for rate_index, err_rate in enumerate(err_rates):
        rule1: List[float] = []
        rule2_relaxed: List[float] = []
        precisions: List[float] = []
        survivals: List[float] = []
        observations: List[float] = []
        for group in range(groups):
            seed = base_seed + rate_index * 100 + group
            contexts = app.generate_workload(err_rate, seed, **kwargs)
            strategy = InstrumentedDropBad()
            metrics = run_group(
                app,
                strategy,
                contexts,
                err_rate=err_rate,
                seed=seed,
                use_window=use_window,
            )
            rule1.append(strategy.report.rule1_rate)
            rule2_relaxed.append(strategy.report.rule2_relaxed_rate)
            precisions.append(metrics.removal_precision)
            survivals.append(metrics.survival_rate)
            observations.append(float(len(strategy.report)))
        n = len(rule1)
        points.append(
            RuleSensitivityPoint(
                err_rate=err_rate,
                rule1_rate=sum(rule1) / n,
                rule2_relaxed_rate=sum(rule2_relaxed) / n,
                rule2_relaxed_std=sample_stdev(rule2_relaxed),
                removal_precision=sum(precisions) / n,
                survival_rate=sum(survivals) / n,
                observations=sum(observations) / n,
            )
        )
    return points
