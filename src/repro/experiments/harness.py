"""Experiment harness: runs strategies over application workloads.

One *group* (paper terminology) is one generated context stream played
through the middleware under one resolution strategy.  A *comparison*
runs every strategy over the same streams at every error rate -- the
paper's 320-group setup is ``strategies(4) x err_rates(4) x
groups(20)`` per application -- and normalizes the two metrics against
OPT-R to produce the Figure 9/10 series.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from ..core.context import Context
from ..core.drop_bad import DropBadStrategy
from ..core.strategy import ResolutionStrategy, make_strategy
from ..middleware.manager import Middleware
from ..situations.situation import SituationEngine
from .metrics import (
    GroupMetrics,
    SeriesPoint,
    average_metrics,
    normalized_rate,
    sample_stdev,
)

__all__ = [
    "ApplicationBundle",
    "default_strategy_factory",
    "run_group",
    "ComparisonConfig",
    "ComparisonResult",
    "run_comparison",
    "DEFAULT_STRATEGIES",
    "DEFAULT_ERROR_RATES",
]

#: The four strategies the paper compares.
DEFAULT_STRATEGIES: Tuple[str, ...] = ("opt-r", "drop-bad", "drop-latest", "drop-all")

#: The paper's controlled error rates (Section 4.1).
DEFAULT_ERROR_RATES: Tuple[float, ...] = (0.10, 0.20, 0.30, 0.40)


class ApplicationBundle(Protocol):
    """What the harness needs from an application module."""

    def build_checker(self, incremental: bool = ...):  # pragma: no cover
        ...

    def build_situations(self):  # pragma: no cover
        ...

    def generate_workload(self, err_rate: float, seed: int, **kwargs):
        ...  # pragma: no cover


def default_strategy_factory(name: str, seed: int) -> ResolutionStrategy:
    """Create a strategy; stochastic ones get a derived, fixed seed."""
    if name == "drop-random":
        return make_strategy(name, rng=random.Random(seed ^ 0x5EED))
    return make_strategy(name)


#: Backwards-compatible alias.
_instantiate_strategy = default_strategy_factory


def run_group(
    app: ApplicationBundle,
    strategy: ResolutionStrategy,
    contexts: Sequence[Context],
    *,
    err_rate: float,
    seed: int,
    use_window: int = 4,
    telemetry=None,
    async_check=None,
) -> GroupMetrics:
    """Play one pre-generated stream under one strategy instance.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) instruments the
    middleware pipeline for this group; pass one bundle across groups
    to aggregate a whole scenario into one sidecar.  ``async_check``
    (an :class:`repro.runtime.snapshot.AsyncCheckConfig`) puts the
    middleware's arrival path behind the snapshot-window ingress --
    the knob the asynchrony experiment sweeps.
    """
    middleware = Middleware(
        app.build_checker(),
        strategy,
        use_window=use_window,
        telemetry=telemetry,
        async_check=async_check,
    )
    engine = SituationEngine(app.build_situations())
    middleware.plug_in(engine)
    middleware.receive_all(contexts)

    log = middleware.resolution.log
    delivered = log.delivered
    return GroupMetrics(
        strategy=strategy.name,
        err_rate=err_rate,
        seed=seed,
        contexts_total=len(contexts),
        contexts_corrupted=sum(1 for c in contexts if c.corrupted),
        contexts_used=len(delivered),
        contexts_used_corrupted=sum(1 for c in delivered if c.corrupted),
        situations_activated=engine.total_activations(),
        situations_spurious=engine.total_spurious(),
        inconsistencies_detected=len(log.detected),
        contexts_discarded=len(log.discarded),
        discarded_corrupted=log.discarded_corrupted(),
        discarded_expected=log.discarded_expected(),
    )


@dataclass(frozen=True)
class ComparisonConfig:
    """Grid configuration for a Figure 9/10 style comparison.

    The paper runs 20 groups per (strategy, error rate) point; that is
    the default.  Benchmarks shrink ``groups_per_point`` to keep wall
    time reasonable -- the shape is stable from ~5 groups on.
    """

    strategies: Tuple[str, ...] = DEFAULT_STRATEGIES
    err_rates: Tuple[float, ...] = DEFAULT_ERROR_RATES
    groups_per_point: int = 20
    #: Arrivals between a context's arrival and its use.  Should cover
    #: a few same-subject follow-up contexts so drop-bad can gather
    #: count evidence (Section 5.3); with interleaved sources that
    #: means roughly 3x the number of concurrent streams.
    use_window: int = 10
    base_seed: int = 2008
    workload_kwargs: Tuple[Tuple[str, object], ...] = ()

    @property
    def total_groups(self) -> int:
        """Total experiment groups in the grid (320 at paper scale)."""
        return len(self.strategies) * len(self.err_rates) * self.groups_per_point


@dataclass
class ComparisonResult:
    """All group metrics plus the normalized Figure 9/10 series."""

    config: ComparisonConfig
    groups: List[GroupMetrics] = field(default_factory=list)

    def groups_for(self, strategy: str, err_rate: float) -> List[GroupMetrics]:
        return [
            g
            for g in self.groups
            if g.strategy == strategy and abs(g.err_rate - err_rate) < 1e-12
        ]

    def series(self, baseline: str = "opt-r") -> List[SeriesPoint]:
        """Normalized (ctxUseRate, sitActRate) per strategy x err_rate."""
        points: List[SeriesPoint] = []
        for err_rate in self.config.err_rates:
            base = average_metrics(self.groups_for(baseline, err_rate))
            for strategy in self.config.strategies:
                groups = self.groups_for(strategy, err_rate)
                mine = average_metrics(groups)
                use_base = base["contexts_used_expected"]
                act_base = base["situations_activated_correct"]
                points.append(
                    SeriesPoint(
                        strategy=strategy,
                        err_rate=err_rate,
                        ctx_use_rate=normalized_rate(
                            mine["contexts_used_expected"], use_base
                        ),
                        sit_act_rate=normalized_rate(
                            mine["situations_activated_correct"], act_base
                        ),
                        ctx_use_rate_std=sample_stdev(
                            [
                                normalized_rate(
                                    g.contexts_used_expected, use_base
                                )
                                for g in groups
                            ]
                        ),
                        sit_act_rate_std=sample_stdev(
                            [
                                normalized_rate(
                                    g.situations_activated_correct, act_base
                                )
                                for g in groups
                            ]
                        ),
                        raw=mine,
                    )
                )
        return points

    def point(
        self, strategy: str, err_rate: float, baseline: str = "opt-r"
    ) -> SeriesPoint:
        for candidate in self.series(baseline):
            if candidate.strategy == strategy and abs(
                candidate.err_rate - err_rate
            ) < 1e-12:
                return candidate
        raise KeyError((strategy, err_rate))


def run_comparison(
    app: ApplicationBundle,
    config: Optional[ComparisonConfig] = None,
    *,
    strategy_factory: Optional[
        Callable[[str, int], ResolutionStrategy]
    ] = None,
    telemetry=None,
) -> ComparisonResult:
    """Run the full strategies x error-rates x groups grid.

    Every strategy sees the *same* generated stream for a given
    (error rate, group) cell, so normalization against OPT-R compares
    like with like.  ``strategy_factory`` can be overridden for
    ablations (e.g. drop-bad with a different tie-break policy).
    A shared ``telemetry`` bundle aggregates every group's pipeline
    latencies into one registry.
    """
    config = config or ComparisonConfig()
    factory = strategy_factory or default_strategy_factory
    result = ComparisonResult(config=config)
    kwargs = dict(config.workload_kwargs)
    for rate_index, err_rate in enumerate(config.err_rates):
        for group in range(config.groups_per_point):
            seed = config.base_seed + rate_index * 1000 + group
            contexts = app.generate_workload(err_rate, seed, **kwargs)
            for strategy_name in config.strategies:
                strategy = factory(strategy_name, seed)
                result.groups.append(
                    run_group(
                        app,
                        strategy,
                        contexts,
                        err_rate=err_rate,
                        seed=seed,
                        use_window=config.use_window,
                        telemetry=telemetry,
                    )
                )
    return result
