"""Terminal charts: render figure series as ASCII line plots.

The paper's Figures 9/10 are line charts of rate vs error rate; this
module renders the same series in plain text so the reproduction can
be *seen*, not just tabulated, anywhere a terminal exists:

    sitActRate (%)
    100 |O...........O...........O...........O     O Opt-R
     90 |B...........B......                       B D-Bad
        |                 `````B...........B
     ...
        +------------------------------------
         10%         20%         30%         40%

No plotting dependency is used.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import SeriesPoint

__all__ = ["ascii_chart", "chart_comparison"]

#: Plot glyph per strategy (first letter of the paper's legend).
_GLYPHS: Dict[str, str] = {
    "opt-r": "O",
    "drop-bad": "B",
    "drop-bad-conservative": "C",
    "drop-latest": "L",
    "drop-all": "A",
    "drop-random": "R",
    "user-specified": "U",
}


def ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 16,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    x_format: str = "{:.0%}",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Points are marked with each series' glyph (its name's first
    letter, upper-cased, unless it has a well-known glyph); collisions
    show ``*``.
    """
    if not series:
        raise ValueError("no series to plot")
    xs = sorted({x for points in series.values() for x, _ in points})
    ys = [y for points in series.values() for _, y in points]
    if not xs:
        raise ValueError("series contain no points")
    low = y_min if y_min is not None else min(ys)
    high = y_max if y_max is not None else max(ys)
    if high <= low:
        high = low + 1.0

    def column(x: float) -> int:
        if len(xs) == 1:
            return width // 2
        return round(
            (xs.index(x)) * (width - 1) / (len(xs) - 1)
        )

    def row(y: float) -> int:
        clamped = min(max(y, low), high)
        return round((high - clamped) * (height - 1) / (high - low))

    grid = [[" "] * width for _ in range(height)]
    for name, points in series.items():
        glyph = _GLYPHS.get(name, name[:1].upper() or "?")
        for x, y in points:
            r, c = row(y), column(x)
            grid[r][c] = "*" if grid[r][c] not in (" ", glyph) else glyph

    lines = []
    if title:
        lines.append(title)
    for index, cells in enumerate(grid):
        value = high - index * (high - low) / (height - 1)
        lines.append(f"{value:6.1f} |" + "".join(cells))
    lines.append("       +" + "-" * width)
    axis = [" "] * width
    for x in xs:
        label = x_format.format(x)
        start = min(column(x), width - len(label))
        for offset, char in enumerate(label):
            axis[start + offset] = char
    lines.append("        " + "".join(axis))
    legend = "  ".join(
        f"{_GLYPHS.get(name, name[:1].upper())}={name}"
        for name in sorted(series)
    )
    lines.append(f"        {legend}")
    return "\n".join(lines)


def chart_comparison(
    points: Sequence[SeriesPoint], metric: str = "ctx_use_rate", title: str = ""
) -> str:
    """Chart one metric of a comparison's series points."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for point in points:
        series.setdefault(point.strategy, []).append(
            (point.err_rate, getattr(point, metric))
        )
    for values in series.values():
        values.sort()
    return ascii_chart(
        series,
        title=title or metric,
        y_min=min(50.0, min(getattr(p, metric) for p in points)),
        y_max=100.0 + 2.0,
    )
