"""Context-awareness metrics (paper Section 4).

Two primary metrics quantify how much a resolution strategy affects an
application's context-awareness:

* **number of used contexts** -- contexts actually delivered to
  applications after resolution, and
* **number of activated situations** -- situations that fired.

Both are normalized against the OPT-R oracle to give the paper's
*context use rate* (ctxUseRate) and *situation activation rate*
(sitActRate).  The module also computes the Section 5.2 case-study
metrics (survival rate, removal precision) and some extended
diagnostics (spurious deliveries/activations caused by corrupted
contexts that slipped through).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = [
    "GroupMetrics",
    "normalized_rate",
    "SeriesPoint",
    "average_metrics",
    "sample_stdev",
]


def sample_stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two samples)."""
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    return (sum((v - mean) ** 2 for v in values) / (n - 1)) ** 0.5


@dataclass(frozen=True)
class GroupMetrics:
    """Raw counters from one experiment group (one stream, one strategy)."""

    strategy: str
    err_rate: float
    seed: int
    contexts_total: int
    contexts_corrupted: int
    contexts_used: int
    contexts_used_corrupted: int
    situations_activated: int
    situations_spurious: int

    @property
    def contexts_used_expected(self) -> int:
        """Used contexts that were correct -- what actually helps the
        application.  OPT-R is the upper bound of this count by
        construction, so the normalized ctxUseRate stays <= 100%."""
        return self.contexts_used - self.contexts_used_corrupted

    @property
    def situations_activated_correct(self) -> int:
        """Activations not triggered by a corrupted context."""
        return self.situations_activated - self.situations_spurious
    inconsistencies_detected: int
    contexts_discarded: int
    discarded_corrupted: int
    discarded_expected: int

    @property
    def survival_rate(self) -> float:
        """Fraction of expected contexts not discarded (Section 5.2)."""
        expected = self.contexts_total - self.contexts_corrupted
        if expected == 0:
            return 1.0
        return 1.0 - self.discarded_expected / expected

    @property
    def removal_precision(self) -> float:
        """Fraction of discarded contexts that were corrupted (5.2)."""
        if self.contexts_discarded == 0:
            return 1.0
        return self.discarded_corrupted / self.contexts_discarded

    @property
    def removal_recall(self) -> float:
        """Fraction of corrupted contexts that were discarded."""
        if self.contexts_corrupted == 0:
            return 1.0
        return self.discarded_corrupted / self.contexts_corrupted


def average_metrics(groups: Sequence[GroupMetrics]) -> Dict[str, float]:
    """Mean raw counters over a set of groups (one plot point)."""
    if not groups:
        raise ValueError("cannot average zero groups")
    n = len(groups)
    return {
        "contexts_used": sum(g.contexts_used for g in groups) / n,
        "contexts_used_expected": sum(
            g.contexts_used_expected for g in groups
        )
        / n,
        "situations_activated": sum(g.situations_activated for g in groups) / n,
        "situations_activated_correct": sum(
            g.situations_activated_correct for g in groups
        )
        / n,
        "survival_rate": sum(g.survival_rate for g in groups) / n,
        "removal_precision": sum(g.removal_precision for g in groups) / n,
        "removal_recall": sum(g.removal_recall for g in groups) / n,
        "inconsistencies_detected": sum(
            g.inconsistencies_detected for g in groups
        )
        / n,
        "contexts_discarded": sum(g.contexts_discarded for g in groups) / n,
        "situations_spurious": sum(g.situations_spurious for g in groups) / n,
        "contexts_used_corrupted": sum(
            g.contexts_used_corrupted for g in groups
        )
        / n,
    }


def normalized_rate(value: float, baseline: float) -> float:
    """``value`` as a percentage of the OPT-R ``baseline``.

    Returns 100.0 when the baseline is zero and the value is too (both
    silent), and infinity-free 0.0 when only the baseline is zero-ish.
    """
    if baseline <= 0:
        return 100.0 if value <= 0 else 0.0
    return 100.0 * value / baseline


@dataclass(frozen=True)
class SeriesPoint:
    """One point of a Figure 9/10 series: a strategy at an error rate.

    ``*_std`` carry the across-group sample standard deviation of the
    normalized rates (0.0 for a single group), so reports can show the
    spread behind each averaged point.
    """

    strategy: str
    err_rate: float
    ctx_use_rate: float
    sit_act_rate: float
    ctx_use_rate_std: float = 0.0
    sit_act_rate_std: float = 0.0
    raw: Mapping[str, float] = field(default_factory=dict)
