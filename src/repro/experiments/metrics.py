"""Context-awareness metrics (paper Section 4).

Two primary metrics quantify how much a resolution strategy affects an
application's context-awareness:

* **number of used contexts** -- contexts actually delivered to
  applications after resolution, and
* **number of activated situations** -- situations that fired.

Both are normalized against the OPT-R oracle to give the paper's
*context use rate* (ctxUseRate) and *situation activation rate*
(sitActRate).  The module also computes the Section 5.2 case-study
metrics (survival rate, removal precision) and some extended
diagnostics (spurious deliveries/activations caused by corrupted
contexts that slipped through).

Beyond the paper's two rates, the module implements the
database-repair *inconsistency measures* of Livshits et al.
(PAPERS.md) as first-class per-run metrics:

* **I_d (drastic)** -- 1 iff any constraint is violated at all;
* **I_MI** -- the number of distinct minimal inconsistent subsets
  (here: deduplicated violating bindings, one per
  ``(constraint, context set)`` pair);
* **I_P (problematic)** -- the number of contexts involved in at
  least one violation;
* **I_R (repair)** -- the minimum number of contexts that must be
  deleted to restore consistency (a minimum hitting set over the
  violation sets; exact for small instances, a greedy upper bound
  past :data:`EXACT_REPAIR_LIMIT` distinct sets).

Applied to the *delivered* stream they quantify the residual
inconsistency a strategy let through to applications -- a principled
ranking signal that complements discard precision/recall.  The
scenario-pack runner (:mod:`repro.scenarios.runner`) emits them per
run through the telemetry registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
)

__all__ = [
    "GroupMetrics",
    "normalized_rate",
    "SeriesPoint",
    "average_metrics",
    "sample_stdev",
    "InconsistencyMeasures",
    "measure_inconsistencies",
    "measure_stream",
    "minimum_repair_size",
    "EXACT_REPAIR_LIMIT",
]


def sample_stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two samples)."""
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    return (sum((v - mean) ** 2 for v in values) / (n - 1)) ** 0.5


@dataclass(frozen=True)
class GroupMetrics:
    """Raw counters from one experiment group (one stream, one strategy)."""

    strategy: str
    err_rate: float
    seed: int
    contexts_total: int
    contexts_corrupted: int
    contexts_used: int
    contexts_used_corrupted: int
    situations_activated: int
    situations_spurious: int

    @property
    def contexts_used_expected(self) -> int:
        """Used contexts that were correct -- what actually helps the
        application.  OPT-R is the upper bound of this count by
        construction, so the normalized ctxUseRate stays <= 100%."""
        return self.contexts_used - self.contexts_used_corrupted

    @property
    def situations_activated_correct(self) -> int:
        """Activations not triggered by a corrupted context."""
        return self.situations_activated - self.situations_spurious
    inconsistencies_detected: int
    contexts_discarded: int
    discarded_corrupted: int
    discarded_expected: int

    @property
    def survival_rate(self) -> float:
        """Fraction of expected contexts not discarded (Section 5.2)."""
        expected = self.contexts_total - self.contexts_corrupted
        if expected == 0:
            return 1.0
        return 1.0 - self.discarded_expected / expected

    @property
    def removal_precision(self) -> float:
        """Fraction of discarded contexts that were corrupted (5.2)."""
        if self.contexts_discarded == 0:
            return 1.0
        return self.discarded_corrupted / self.contexts_discarded

    @property
    def removal_recall(self) -> float:
        """Fraction of corrupted contexts that were discarded."""
        if self.contexts_corrupted == 0:
            return 1.0
        return self.discarded_corrupted / self.contexts_corrupted


def average_metrics(groups: Sequence[GroupMetrics]) -> Dict[str, float]:
    """Mean raw counters over a set of groups (one plot point)."""
    if not groups:
        raise ValueError("cannot average zero groups")
    n = len(groups)
    return {
        "contexts_used": sum(g.contexts_used for g in groups) / n,
        "contexts_used_expected": sum(
            g.contexts_used_expected for g in groups
        )
        / n,
        "situations_activated": sum(g.situations_activated for g in groups) / n,
        "situations_activated_correct": sum(
            g.situations_activated_correct for g in groups
        )
        / n,
        "survival_rate": sum(g.survival_rate for g in groups) / n,
        "removal_precision": sum(g.removal_precision for g in groups) / n,
        "removal_recall": sum(g.removal_recall for g in groups) / n,
        "inconsistencies_detected": sum(
            g.inconsistencies_detected for g in groups
        )
        / n,
        "contexts_discarded": sum(g.contexts_discarded for g in groups) / n,
        "situations_spurious": sum(g.situations_spurious for g in groups) / n,
        "contexts_used_corrupted": sum(
            g.contexts_used_corrupted for g in groups
        )
        / n,
    }


def normalized_rate(value: float, baseline: float) -> float:
    """``value`` as a percentage of the OPT-R ``baseline``.

    Returns 100.0 when the baseline is zero and the value is too (both
    silent), and infinity-free 0.0 when only the baseline is zero-ish.
    """
    if baseline <= 0:
        return 100.0 if value <= 0 else 0.0
    return 100.0 * value / baseline


#: Above this many distinct violation sets the exact branch-and-bound
#: minimum-hitting-set search yields to the greedy upper bound.
EXACT_REPAIR_LIMIT = 24


def _exact_hitting_set(sets: List[FrozenSet[str]], limit: int) -> int:
    """Smallest hitting set size if it is ``<= limit``, else ``limit + 1``.

    Branch and bound on the smallest unhit set: every hitting set must
    contain one of its elements.
    """
    if not sets:
        return 0
    if limit <= 0:
        return limit + 1
    pivot = min(sets, key=len)
    best = limit + 1
    for element in sorted(pivot):
        remaining = [s for s in sets if element not in s]
        candidate = 1 + _exact_hitting_set(remaining, best - 2)
        if candidate < best:
            best = candidate
    return best


def _greedy_hitting_set(sets: List[FrozenSet[str]]) -> int:
    """Greedy max-degree upper bound on the minimum hitting set size."""
    remaining = list(sets)
    size = 0
    while remaining:
        degree: Dict[str, int] = {}
        for s in remaining:
            for element in s:
                degree[element] = degree.get(element, 0) + 1
        # Deterministic tie-break: highest degree, then lexicographic.
        chosen = min(degree, key=lambda e: (-degree[e], e))
        remaining = [s for s in remaining if chosen not in s]
        size += 1
    return size


def minimum_repair_size(
    violation_sets: Iterable[AbstractSet[str]],
    *,
    exact_limit: int = EXACT_REPAIR_LIMIT,
) -> int:
    """Livshits et al.'s I_R: fewest deletions restoring consistency.

    Each violation set is the set of context ids involved in one
    violating binding; a repair must delete at least one member of
    every set (a hitting set).  Exact (branch and bound) while the
    number of distinct sets stays at or below ``exact_limit``, else the
    deterministic greedy upper bound.
    """
    distinct = sorted(
        {frozenset(s) for s in violation_sets if s}, key=sorted
    )
    if not distinct:
        return 0
    greedy = _greedy_hitting_set(distinct)
    if len(distinct) > exact_limit:
        return greedy
    return _exact_hitting_set(distinct, greedy)


@dataclass(frozen=True)
class InconsistencyMeasures:
    """Livshits-style inconsistency measures of one context set.

    ``universe`` is the number of contexts the violations were checked
    over, giving the ``*_ratio`` normalizations; a universe of zero
    yields all-zero measures.
    """

    universe: int
    drastic: int
    mi_count: int
    problematic: int
    repair: int
    per_constraint: Mapping[str, int] = field(default_factory=dict)

    @property
    def problematic_ratio(self) -> float:
        """I_P normalized by the universe size."""
        return self.problematic / self.universe if self.universe else 0.0

    @property
    def repair_ratio(self) -> float:
        """I_R normalized by the universe size."""
        return self.repair / self.universe if self.universe else 0.0

    def as_record(self) -> Dict[str, object]:
        """Plain-JSON row for reports, benchmarks and the ledger."""
        return {
            "universe": self.universe,
            "drastic": self.drastic,
            "mi_count": self.mi_count,
            "problematic": self.problematic,
            "repair": self.repair,
            "problematic_ratio": self.problematic_ratio,
            "repair_ratio": self.repair_ratio,
            "per_constraint": dict(self.per_constraint),
        }


def measure_inconsistencies(
    inconsistencies: Sequence[object], universe: int
) -> InconsistencyMeasures:
    """Compute the measures from detected inconsistency objects.

    ``inconsistencies`` are
    :class:`~repro.core.inconsistency.Inconsistency`-shaped objects
    (``.contexts`` frozenset, ``.constraint`` name).  Identical
    bindings reported more than once collapse into one minimal
    inconsistent subset.
    """
    seen = set()
    sets: List[FrozenSet[str]] = []
    per_constraint: Dict[str, int] = {}
    involved: set = set()
    for inconsistency in inconsistencies:
        ids = frozenset(c.ctx_id for c in inconsistency.contexts)
        key = (inconsistency.constraint, ids)
        if key in seen:
            continue
        seen.add(key)
        sets.append(ids)
        involved.update(ids)
        per_constraint[inconsistency.constraint] = (
            per_constraint.get(inconsistency.constraint, 0) + 1
        )
    return InconsistencyMeasures(
        universe=universe,
        drastic=1 if sets else 0,
        mi_count=len(sets),
        problematic=len(involved),
        repair=minimum_repair_size(sets),
        per_constraint=per_constraint,
    )


def measure_stream(checker, contexts: Sequence[object]) -> InconsistencyMeasures:
    """Measure a context set as a static database (Livshits et al.).

    ``checker`` is a :class:`~repro.constraints.checker.ConstraintChecker`
    (or anything with ``check_all``); the set is checked at the stream's
    last timestamp, the instant the run ended.
    """
    now = max((c.timestamp for c in contexts), default=0.0)
    violations = checker.check_all(list(contexts), now=now)
    return measure_inconsistencies(violations, universe=len(contexts))


@dataclass(frozen=True)
class SeriesPoint:
    """One point of a Figure 9/10 series: a strategy at an error rate.

    ``*_std`` carry the across-group sample standard deviation of the
    normalized rates (0.0 for a single group), so reports can show the
    spread behind each averaged point.
    """

    strategy: str
    err_rate: float
    ctx_use_rate: float
    sit_act_rate: float
    ctx_use_rate_std: float = 0.0
    sit_act_rate_std: float = 0.0
    raw: Mapping[str, float] = field(default_factory=dict)
