"""One-command reproduction of the whole paper.

``reproduce_paper()`` runs every experiment of the evaluation --
the Figure 1-5 walkthroughs, the Figure 9/10 comparisons, the
Section 5.2 Landmarc case study and the Section 5.1/5.3 ablations --
and assembles a single markdown report with tables and ASCII charts.
Also exposed as ``python -m repro reproduce [--groups N] [--out F]``.

At ``groups=20`` this is the paper's exact 320-groups-per-application
scale; the default of 5 reproduces every shape in a few minutes.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Optional, Union

from ..apps.call_forwarding import CallForwardingApp
from ..apps.rfid_anomalies import RFIDAnomaliesApp
from .ablations import run_tiebreak_ablation, run_window_ablation
from .case_study import run_case_study
from .charts import chart_comparison
from .harness import ComparisonConfig, run_comparison
from .report import (
    format_case_study,
    format_comparison,
    format_rule_sensitivity,
    format_scenarios,
    format_tiebreak_ablation,
    format_window_ablation,
)
from .rules_sweep import run_rule_sensitivity
from .scenarios import SCENARIOS, replay_strategy
from .stats import compare_strategies

__all__ = ["reproduce_paper"]


def _block(text: str) -> str:
    return f"```\n{text}\n```\n"


def reproduce_paper(
    groups: int = 5,
    out_path: Optional[Union[str, Path]] = None,
    *,
    progress=None,
) -> str:
    """Run all experiments; return (and optionally write) the report.

    ``progress`` is an optional ``callable(str)`` notified as each
    experiment completes (the CLI passes ``print``).
    """

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    started = time.time()
    sections: List[str] = [
        "# Reproduction report",
        "",
        "*Heuristics-Based Strategies for Resolving Context "
        "Inconsistencies in Pervasive Computing Applications* "
        "(Xu, Cheung, Chan, Ye -- ICDCS 2008), reproduced by this "
        f"library at {groups} groups per plot point "
        f"(paper scale: 20).",
        "",
    ]

    # -- E1: Figures 1-5 -------------------------------------------------------
    outcomes = [
        replay_strategy(strategy, scenario, refined=refined)
        for strategy in ("opt-r", "drop-bad", "drop-latest", "drop-all")
        for scenario in SCENARIOS
        for refined in (False, True)
    ]
    sections += [
        "## Figures 1-5: scenario walkthroughs",
        "",
        _block(format_scenarios(outcomes)),
    ]
    note("E1 scenarios done")

    # -- E2: Figure 9 -----------------------------------------------------------
    cf_result = run_comparison(
        CallForwardingApp(),
        ComparisonConfig(
            groups_per_point=groups,
            use_window=10,
            workload_kwargs=(("duration", 300.0),),
        ),
    )
    sections += [
        "## Figure 9: Call Forwarding",
        "",
        _block(format_comparison(cf_result, "Call Forwarding")),
        _block(
            chart_comparison(
                cf_result.series(),
                metric="ctx_use_rate",
                title="ctxUseRate (%) vs error rate",
            )
        ),
    ]
    note("E2 Figure 9 done")

    # -- E3: Figure 10 ------------------------------------------------------------
    rfid_result = run_comparison(
        RFIDAnomaliesApp(),
        ComparisonConfig(
            groups_per_point=groups,
            use_window=20,
            workload_kwargs=(("items", 10),),
        ),
    )
    significance = compare_strategies(rfid_result, "drop-bad", "drop-all", 0.4)
    sections += [
        "## Figure 10: RFID data anomalies",
        "",
        _block(format_comparison(rfid_result, "RFID data anomalies")),
        _block(
            chart_comparison(
                rfid_result.series(),
                metric="ctx_use_rate",
                title="ctxUseRate (%) vs error rate",
            )
        ),
        f"Paired significance at err 40%: drop-bad beats drop-all by "
        f"{significance.mean_difference:+.1f} expected contexts/run "
        f"(t-test p={significance.t_pvalue:.4f}).",
        "",
    ]
    note("E3 Figure 10 done")

    # -- E4: Landmarc case study -----------------------------------------------------
    study = run_case_study(seed=7)
    sections += [
        "## Section 5.2: Landmarc case study",
        "",
        _block(format_case_study(study)),
    ]
    note("E4 case study done")

    # -- E5/E6: ablations ----------------------------------------------------------------
    window_points = run_window_ablation(
        RFIDAnomaliesApp(),
        groups=max(3, groups // 2),
        workload_kwargs={"items": 10},
    )
    tiebreak_points = run_tiebreak_ablation(
        CallForwardingApp(),
        groups=max(3, groups // 2),
        workload_kwargs={"duration": 300.0},
    )
    sections += [
        "## Section 5.3: use-window ablation",
        "",
        _block(format_window_ablation(window_points)),
        "## Section 5.1: tie-break ablation",
        "",
        _block(format_tiebreak_ablation(tiebreak_points)),
    ]
    note("E5/E6 ablations done")

    # -- E8: rule sensitivity ----------------------------------------------------------
    rule_points = run_rule_sensitivity(
        CallForwardingApp(),
        groups=max(3, groups // 2),
        workload_kwargs={"duration": 300.0},
    )
    sections += [
        "## Section 5.2 open question: rule satisfaction vs quality",
        "",
        _block(format_rule_sensitivity(rule_points)),
    ]
    note("E8 rule sensitivity done")

    elapsed = time.time() - started
    sections += [
        "---",
        "",
        f"Reproduced in {elapsed:.0f}s.  See EXPERIMENTS.md for the "
        f"shape-vs-paper discussion of every number above, and "
        f"`benchmarks/` for the per-experiment regeneration targets "
        f"(including E7 impact extension, E9 smart phone and E10 "
        f"strategy survey).",
        "",
    ]
    report = "\n".join(sections)
    if out_path is not None:
        Path(out_path).write_text(report)
    return report
