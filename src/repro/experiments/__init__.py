"""Experiment harness, metrics, scenarios, case study and ablations."""

from .ablations import (
    TieBreakPoint,
    WindowPoint,
    run_tiebreak_ablation,
    run_window_ablation,
)
from .asynchrony import (
    AsynchronyPoint,
    format_asynchrony_table,
    run_asynchrony,
)
from .case_study import CaseStudyConfig, CaseStudyResult, run_case_study
from .harness import (
    DEFAULT_ERROR_RATES,
    DEFAULT_STRATEGIES,
    ComparisonConfig,
    ComparisonResult,
    run_comparison,
    run_group,
)
from .metrics import (
    GroupMetrics,
    SeriesPoint,
    average_metrics,
    normalized_rate,
    sample_stdev,
)
from .report import (
    format_case_study,
    format_comparison,
    format_rule_sensitivity,
    format_scenarios,
    format_table,
    format_tiebreak_ablation,
    format_window_ablation,
)
from .charts import ascii_chart, chart_comparison
from .reproduce import reproduce_paper
from .rules_sweep import RuleSensitivityPoint, run_rule_sensitivity
from .stats import PairedComparison, compare_strategies, sign_test
from .scenarios import (
    SCENARIOS,
    ScenarioOutcome,
    count_values,
    replay_strategy,
    scenario_contexts,
    tracked_inconsistencies,
    velocity_constraints,
)

__all__ = [
    "TieBreakPoint",
    "WindowPoint",
    "run_tiebreak_ablation",
    "run_window_ablation",
    "CaseStudyConfig",
    "CaseStudyResult",
    "run_case_study",
    "DEFAULT_ERROR_RATES",
    "DEFAULT_STRATEGIES",
    "ComparisonConfig",
    "ComparisonResult",
    "run_comparison",
    "run_group",
    "GroupMetrics",
    "SeriesPoint",
    "average_metrics",
    "normalized_rate",
    "sample_stdev",
    "RuleSensitivityPoint",
    "run_rule_sensitivity",
    "AsynchronyPoint",
    "format_asynchrony_table",
    "run_asynchrony",
    "format_rule_sensitivity",
    "PairedComparison",
    "compare_strategies",
    "sign_test",
    "ascii_chart",
    "chart_comparison",
    "reproduce_paper",
    "format_case_study",
    "format_comparison",
    "format_scenarios",
    "format_table",
    "format_tiebreak_ablation",
    "format_window_ablation",
    "SCENARIOS",
    "ScenarioOutcome",
    "count_values",
    "replay_strategy",
    "scenario_contexts",
    "tracked_inconsistencies",
    "velocity_constraints",
]
