"""Plain-text reporting of experiment results.

Formats the Figure 9/10 series, the scenario walkthroughs, the case
study and the ablations as aligned ASCII tables -- the same rows and
series the paper's figures plot, printable from benchmarks and
examples.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .ablations import TieBreakPoint, WindowPoint
from .case_study import CaseStudyResult
from .harness import ComparisonResult
from .metrics import SeriesPoint
from .rules_sweep import RuleSensitivityPoint
from .scenarios import ScenarioOutcome

__all__ = [
    "format_table",
    "format_comparison",
    "format_scenarios",
    "format_case_study",
    "format_window_ablation",
    "format_tiebreak_ablation",
    "format_rule_sensitivity",
]

#: Display names matching the paper's legend.
STRATEGY_LABELS: Dict[str, str] = {
    "opt-r": "Opt-R",
    "drop-bad": "D-Bad",
    "drop-latest": "D-Lat",
    "drop-all": "D-All",
    "drop-random": "D-Rnd",
    "user-specified": "D-Usr",
}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align a simple ASCII table."""
    table = [list(map(str, headers))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _series_table(
    points: List[SeriesPoint],
    metric: str,
    strategies: Sequence[str],
    err_rates: Sequence[float],
    show_std: bool = False,
) -> str:
    headers = ["err_rate"] + [STRATEGY_LABELS.get(s, s) for s in strategies]
    rows = []
    for err_rate in err_rates:
        row: List[object] = [f"{err_rate:.0%}"]
        for strategy in strategies:
            point = next(
                p
                for p in points
                if p.strategy == strategy and abs(p.err_rate - err_rate) < 1e-12
            )
            cell = f"{getattr(point, metric):6.1f}%"
            std = getattr(point, f"{metric}_std", 0.0)
            if show_std and std > 0:
                cell += f" ±{std:4.1f}"
            row.append(cell)
        rows.append(row)
    return format_table(headers, rows)


def format_comparison(
    result: ComparisonResult, title: str, show_std: bool = False
) -> str:
    """The two stacked panels of a Figure 9/10 plot, as tables.

    With ``show_std`` each cell carries the across-group standard
    deviation of the normalized rate.
    """
    points = result.series()
    strategies = list(result.config.strategies)
    err_rates = list(result.config.err_rates)
    return (
        f"{title}\n"
        f"\nctxUseRate (%) [top panel]\n"
        + _series_table(
            points, "ctx_use_rate", strategies, err_rates, show_std
        )
        + "\n\nsitActRate (%) [bottom panel]\n"
        + _series_table(
            points, "sit_act_rate", strategies, err_rates, show_std
        )
    )


def format_scenarios(outcomes: Sequence[ScenarioOutcome]) -> str:
    """Walkthrough outcomes, one row per (strategy, scenario)."""
    headers = ["strategy", "scenario", "constraints", "discarded", "correct"]
    rows = [
        [
            STRATEGY_LABELS.get(o.strategy, o.strategy),
            o.scenario,
            "refined" if o.refined else "basic",
            ",".join(o.discarded) or "(none)",
            "yes" if o.correct else "NO",
        ]
        for o in outcomes
    ]
    return format_table(headers, rows)


def format_case_study(result: CaseStudyResult) -> str:
    """Section 5.2 headline numbers (paper values in brackets)."""
    rows = [
        ["survival rate", f"{result.survival_rate:.1%}", "96.5%"],
        ["removal precision", f"{result.removal_precision:.1%}", "84.7%"],
        ["Rule 1 held", f"{result.rule1_rate:.1%}", "100%"],
        ["Rule 2' held", f"{result.rule2_relaxed_rate:.1%}", "91.7%"],
        ["Rule 2 held", f"{result.rule2_rate:.1%}", "(not reported)"],
        ["removal recall", f"{result.removal_recall:.1%}", "(not reported)"],
        [
            "mean error raw -> delivered",
            f"{result.mean_error_raw:.2f}m -> {result.mean_error_delivered:.2f}m",
            "(accuracy improves)",
        ],
    ]
    return format_table(["metric", "measured", "paper"], rows)


def format_window_ablation(points: Sequence[WindowPoint]) -> str:
    headers = [
        "window",
        "D-Bad ctxUse%",
        "D-Lat ctxUse%",
        "D-Bad precision",
        "advantage",
    ]
    rows = [
        [
            p.window,
            f"{p.drop_bad_use_rate:6.1f}",
            f"{p.drop_latest_use_rate:6.1f}",
            f"{p.drop_bad_precision:.3f}",
            f"{p.advantage:+5.1f}",
        ]
        for p in points
    ]
    return format_table(headers, rows)


def format_rule_sensitivity(points: Sequence[RuleSensitivityPoint]) -> str:
    headers = [
        "err_rate",
        "Rule 1",
        "Rule 2'",
        "precision",
        "survival",
        "obs/run",
    ]
    rows = [
        [
            f"{p.err_rate:.0%}",
            f"{p.rule1_rate:.1%}",
            f"{p.rule2_relaxed_rate:.1%} ±{p.rule2_relaxed_std:.2f}",
            f"{p.removal_precision:.3f}",
            f"{p.survival_rate:.3f}",
            f"{p.observations:.0f}",
        ]
        for p in points
    ]
    return format_table(headers, rows)


def format_tiebreak_ablation(points: Sequence[TieBreakPoint]) -> str:
    headers = ["policy", "tie-discard", "ctxUse%", "sitAct%", "precision", "survival"]
    rows = [
        [
            p.policy,
            "yes" if p.discard_on_tie else "no",
            f"{p.ctx_use_rate:6.1f}",
            f"{p.sit_act_rate:6.1f}",
            f"{p.removal_precision:.3f}",
            f"{p.survival_rate:.3f}",
        ]
        for p in points
    ]
    return format_table(headers, rows)
