"""Ablation experiments for the drop-bad design choices.

* **Time window** (paper Section 5.3): how does the period between a
  context's arrival and its use affect drop-bad?  The paper argues
  that with a zero window drop-bad "would behave just as the
  drop-latest strategy", so its effectiveness is never worse than the
  existing strategies'; a larger window gathers more count evidence.

* **Tie-breaking** (paper Section 5.1, future work): when several
  contexts tie at the maximal count value, which one should be blamed?
  We compare the pluggable policies of :mod:`repro.core.tiebreak`
  plus the conservative no-discard-on-tie variant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.drop_bad import DropBadStrategy
from ..core.strategy import ResolutionStrategy, make_strategy
from ..core.tiebreak import make_tiebreak
from .harness import ApplicationBundle, ComparisonConfig, run_group
from .metrics import GroupMetrics, average_metrics, normalized_rate

__all__ = [
    "WindowPoint",
    "run_window_ablation",
    "TieBreakPoint",
    "run_tiebreak_ablation",
]


@dataclass(frozen=True)
class WindowPoint:
    """Drop-bad vs drop-latest at one use-window size."""

    window: int
    drop_bad_use_rate: float
    drop_latest_use_rate: float
    drop_bad_precision: float
    drop_latest_precision: float

    @property
    def advantage(self) -> float:
        """Drop-bad's context-use-rate margin over drop-latest."""
        return self.drop_bad_use_rate - self.drop_latest_use_rate


def run_window_ablation(
    app: ApplicationBundle,
    *,
    windows: Sequence[int] = (0, 1, 2, 4, 8, 16),
    err_rate: float = 0.3,
    groups: int = 6,
    base_seed: int = 51,
    workload_kwargs: Optional[Dict[str, object]] = None,
) -> List[WindowPoint]:
    """Sweep the use window; returns one point per window size.

    All strategies (including the OPT-R normalization baseline) replay
    identical streams at every window size.
    """
    kwargs = workload_kwargs or {}
    streams = [
        app.generate_workload(err_rate, base_seed + g, **kwargs)
        for g in range(groups)
    ]
    points: List[WindowPoint] = []
    for window in windows:
        per_strategy: Dict[str, List[GroupMetrics]] = {}
        for name in ("opt-r", "drop-bad", "drop-latest"):
            per_strategy[name] = [
                run_group(
                    app,
                    make_strategy(name),
                    stream,
                    err_rate=err_rate,
                    seed=base_seed + g,
                    use_window=window,
                )
                for g, stream in enumerate(streams)
            ]
        base = average_metrics(per_strategy["opt-r"])
        bad = average_metrics(per_strategy["drop-bad"])
        latest = average_metrics(per_strategy["drop-latest"])
        points.append(
            WindowPoint(
                window=window,
                drop_bad_use_rate=normalized_rate(
                    bad["contexts_used_expected"], base["contexts_used_expected"]
                ),
                drop_latest_use_rate=normalized_rate(
                    latest["contexts_used_expected"], base["contexts_used_expected"]
                ),
                drop_bad_precision=bad["removal_precision"],
                drop_latest_precision=latest["removal_precision"],
            )
        )
    return points


@dataclass(frozen=True)
class TieBreakPoint:
    """Drop-bad under one tie-break policy."""

    policy: str
    discard_on_tie: bool
    ctx_use_rate: float
    sit_act_rate: float
    removal_precision: float
    survival_rate: float


def run_tiebreak_ablation(
    app: ApplicationBundle,
    *,
    policies: Sequence[str] = (
        "oldest",
        "newest",
        "random",
        "least-global",
        "most-global",
    ),
    err_rate: float = 0.3,
    groups: int = 6,
    use_window: int = 4,
    base_seed: int = 97,
    include_no_tie_discard: bool = True,
    workload_kwargs: Optional[Dict[str, object]] = None,
) -> List[TieBreakPoint]:
    """Compare tie-break policies (and the conservative tie variant)."""
    kwargs = workload_kwargs or {}
    streams = [
        app.generate_workload(err_rate, base_seed + g, **kwargs)
        for g in range(groups)
    ]

    def run_variant(strategy_for_group) -> List[GroupMetrics]:
        return [
            run_group(
                app,
                strategy_for_group(g),
                stream,
                err_rate=err_rate,
                seed=base_seed + g,
                use_window=use_window,
            )
            for g, stream in enumerate(streams)
        ]

    baseline = average_metrics(run_variant(lambda g: make_strategy("opt-r")))

    variants: List[Tuple[str, bool]] = [(p, True) for p in policies]
    if include_no_tie_discard:
        variants.append(("oldest", False))

    points: List[TieBreakPoint] = []
    for policy, discard_on_tie in variants:
        metrics = average_metrics(
            run_variant(
                lambda g, _p=policy, _d=discard_on_tie: DropBadStrategy(
                    tiebreak=make_tiebreak(_p, random.Random(base_seed + g)),
                    discard_on_tie=_d,
                )
            )
        )
        points.append(
            TieBreakPoint(
                policy=policy,
                discard_on_tie=discard_on_tie,
                ctx_use_rate=normalized_rate(
                    metrics["contexts_used_expected"], baseline["contexts_used_expected"]
                ),
                sit_act_rate=normalized_rate(
                    metrics["situations_activated_correct"],
                    baseline["situations_activated_correct"],
                ),
                removal_precision=metrics["removal_precision"],
                survival_rate=metrics["survival_rate"],
            )
        )
    return points
