"""Asynchrony degradation experiment: drop-bad vs OPT-R off the happy path.

The paper's evaluation (Section 4) plays *synchronized* streams:
arrival order equals timestamp order and every context arrives exactly
once.  Drop-bad's reliability argument (Rules 1/2/2') quietly leans on
that -- the heuristics reason about which of two *currently pool-held*
contexts is fresher, and a late or duplicated arrival skews both the
pipeline clock and the pool's contents.

This experiment measures the lean.  It perturbs the generated streams
with the :mod:`repro.sensing.perturb` adapters (delay / reorder /
duplicate / per-source clock skew, each at several intensities), plays
drop-bad and OPT-R over
the *same* perturbed stream, and reports drop-bad's Figure 9/10
metrics normalized against OPT-R -- once with the runtime as-is
(``async_check=False`` rows) and once behind the snapshot-window
ingress (``async_check=True`` rows).  The gap between the paired rows
is what the asynchronous checking mode buys back.

Results land as a table (CLI ``repro asynchrony``) and as the
``async_degradation`` record of ``BENCH_engine.json``
(``benchmarks/test_bench_async.py``).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.context import Context
from ..runtime.snapshot import AsyncCheckConfig
from ..sensing.perturb import (
    delay_stream,
    duplicate_stream,
    reorder_stream,
    skew_stream,
)
from .harness import ApplicationBundle, default_strategy_factory, run_group
from .metrics import average_metrics, normalized_rate

__all__ = [
    "AsynchronyPoint",
    "DEFAULT_PERTURBATIONS",
    "run_asynchrony",
    "format_asynchrony_table",
]

#: The sweep grid: perturbation kind -> intensities, least to most
#: hostile.  Units differ per kind: ``delay`` is the max transport
#: delay in simulation seconds, ``reorder`` the shuffle window in
#: stream positions, ``duplicate`` the per-context re-delivery
#: probability, ``skew`` the max per-source clock offset in simulation
#: seconds (a skewed clock is consistently wrong, not noisy, so it
#: stresses the freshness heuristics differently from ``delay``).
DEFAULT_PERTURBATIONS: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    ("delay", (1.0, 3.0, 6.0)),
    ("reorder", (2.0, 6.0, 12.0)),
    ("duplicate", (0.05, 0.15, 0.30)),
    ("skew", (1.0, 3.0, 6.0)),
)


@dataclass(frozen=True)
class AsynchronyPoint:
    """Drop-bad's OPT-R-normalized quality at one grid cell."""

    perturbation: str
    intensity: float
    async_check: bool
    #: Expected-context use rate, normalized against OPT-R on the same
    #: perturbed streams under the same checking mode (Figure 9 axis).
    ctx_use_rate: float
    #: Correct situation-activation rate, normalized likewise
    #: (Figure 10 axis).
    sit_act_rate: float
    #: Unnormalized drop-bad aggregates, for absolute reading.
    survival_rate: float
    removal_precision: float
    groups: int


def _perturb(
    kind: str, contexts: Sequence[Context], rng: random.Random, intensity: float
) -> List[Context]:
    if kind == "delay":
        return delay_stream(contexts, rng, max_delay=intensity)
    if kind == "reorder":
        return reorder_stream(contexts, rng, window=int(intensity))
    if kind == "duplicate":
        return duplicate_stream(contexts, rng, p=intensity)
    if kind == "skew":
        return skew_stream(contexts, rng, max_skew=intensity)
    raise ValueError(f"unknown perturbation kind {kind!r}")


def run_asynchrony(
    app: ApplicationBundle,
    *,
    perturbations: Sequence[Tuple[str, Sequence[float]]] = DEFAULT_PERTURBATIONS,
    err_rate: float = 0.2,
    groups: int = 5,
    use_window: int = 10,
    base_seed: int = 808,
    max_lag: float = 6.0,
    workload_kwargs: Optional[Dict[str, object]] = None,
) -> List[AsynchronyPoint]:
    """Sweep perturbation x intensity x {sync, async-check}.

    Every grid cell replays the same ``groups`` perturbed streams
    under drop-bad and under OPT-R, in both checking modes; the
    normalization baseline is always OPT-R *in the same cell*, so each
    point isolates the strategy's degradation from the workload's.
    ``max_lag`` sizes the snapshot window for the async rows (cover
    the largest delay intensity; see
    :func:`repro.constraints.horizon.temporal_horizon`).
    """
    kwargs = workload_kwargs or {}
    async_config = AsyncCheckConfig(max_lag=max_lag)
    points: List[AsynchronyPoint] = []
    for kind_index, (kind, intensities) in enumerate(perturbations):
        for level_index, intensity in enumerate(intensities):
            for async_on in (False, True):
                per_strategy: Dict[str, List] = {"drop-bad": [], "opt-r": []}
                for group in range(groups):
                    seed = (
                        base_seed
                        + kind_index * 10_000
                        + level_index * 100
                        + group
                    )
                    clean = app.generate_workload(err_rate, seed, **kwargs)
                    perturbed = _perturb(
                        kind, clean, random.Random(seed ^ 0xA57), intensity
                    )
                    for name in per_strategy:
                        per_strategy[name].append(
                            run_group(
                                app,
                                default_strategy_factory(name, seed),
                                perturbed,
                                err_rate=err_rate,
                                seed=seed,
                                use_window=use_window,
                                async_check=(
                                    async_config if async_on else None
                                ),
                            )
                        )
                mine = average_metrics(per_strategy["drop-bad"])
                base = average_metrics(per_strategy["opt-r"])
                n = len(per_strategy["drop-bad"])
                points.append(
                    AsynchronyPoint(
                        perturbation=kind,
                        intensity=intensity,
                        async_check=async_on,
                        ctx_use_rate=normalized_rate(
                            mine["contexts_used_expected"],
                            base["contexts_used_expected"],
                        ),
                        sit_act_rate=normalized_rate(
                            mine["situations_activated_correct"],
                            base["situations_activated_correct"],
                        ),
                        survival_rate=sum(
                            g.survival_rate for g in per_strategy["drop-bad"]
                        )
                        / n,
                        removal_precision=sum(
                            g.removal_precision
                            for g in per_strategy["drop-bad"]
                        )
                        / n,
                        groups=n,
                    )
                )
    return points


def format_asynchrony_table(points: Sequence[AsynchronyPoint]) -> str:
    """Render the sweep as the experiment's report table."""
    lines = [
        "drop-bad vs OPT-R under stream asynchrony "
        "(100.0 = matches the optimal strategy)",
        f"{'perturbation':<14}{'intensity':>10}{'async':>7}"
        f"{'ctxUse%':>9}{'sitAct%':>9}{'survival':>10}{'precision':>11}",
    ]
    for point in points:
        lines.append(
            f"{point.perturbation:<14}{point.intensity:>10g}"
            f"{'on' if point.async_check else 'off':>7}"
            f"{point.ctx_use_rate:>9.1f}{point.sit_act_rate:>9.1f}"
            f"{point.survival_rate:>10.3f}{point.removal_precision:>11.3f}"
        )
    return "\n".join(lines)


def points_as_records(points: Sequence[AsynchronyPoint]) -> List[dict]:
    """JSON-ready rows (the BENCH_engine.json payload)."""
    return [asdict(point) for point in points]
