"""Statistical comparison of resolution strategies.

The paper averages each plot point over 20 groups "to avoid random
error" but reports no significance analysis.  Since every strategy
replays the *same* generated streams in our harness, the group results
are naturally paired, and paired tests apply directly:

* a paired t-test (via scipy) on the per-group expected-context use
  counts, and
* a distribution-free sign test as a robustness check.

``compare_strategies`` packages both for any pair of strategies at any
error rate of a :class:`~repro.experiments.harness.ComparisonResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from scipy import stats as scipy_stats

from .harness import ComparisonResult
from .metrics import GroupMetrics, sample_stdev

__all__ = ["PairedComparison", "compare_strategies", "sign_test"]


def sign_test(differences: Sequence[float]) -> float:
    """Two-sided sign-test p-value for paired differences.

    Ignores zero differences; returns 1.0 when nothing remains.
    """
    wins = sum(1 for d in differences if d > 0)
    losses = sum(1 for d in differences if d < 0)
    n = wins + losses
    if n == 0:
        return 1.0
    result = scipy_stats.binomtest(min(wins, losses), n=n, p=0.5)
    return float(result.pvalue)


@dataclass(frozen=True)
class PairedComparison:
    """Paired significance results for strategy A vs strategy B."""

    strategy_a: str
    strategy_b: str
    err_rate: float
    metric: str
    mean_difference: float
    stdev_difference: float
    n: int
    t_statistic: float
    t_pvalue: float
    sign_pvalue: float

    @property
    def a_beats_b(self) -> bool:
        """Whether A's mean exceeds B's on this metric."""
        return self.mean_difference > 0

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the paired t-test rejects equality at ``alpha``."""
        return self.t_pvalue < alpha


def _paired_values(
    result: ComparisonResult, strategy: str, err_rate: float, metric: str
) -> List[float]:
    groups = sorted(
        result.groups_for(strategy, err_rate), key=lambda g: g.seed
    )
    if not groups:
        raise ValueError(
            f"no groups for strategy {strategy!r} at err_rate {err_rate}"
        )
    return [float(getattr(g, metric)) for g in groups]


def compare_strategies(
    result: ComparisonResult,
    strategy_a: str,
    strategy_b: str,
    err_rate: float,
    metric: str = "contexts_used_expected",
) -> PairedComparison:
    """Paired t-test + sign test of A vs B on per-group ``metric``.

    The harness guarantees both strategies replayed identical streams
    per (error rate, seed) cell, so pairing by seed is exact.
    """
    values_a = _paired_values(result, strategy_a, err_rate, metric)
    values_b = _paired_values(result, strategy_b, err_rate, metric)
    if len(values_a) != len(values_b):
        raise ValueError(
            f"unpaired group counts: {len(values_a)} vs {len(values_b)}"
        )
    differences = [a - b for a, b in zip(values_a, values_b)]
    n = len(differences)
    mean_diff = sum(differences) / n
    if n >= 2 and any(d != differences[0] for d in differences):
        t_stat, t_pvalue = scipy_stats.ttest_rel(values_a, values_b)
    else:
        # Degenerate: constant differences (or a single pair).
        t_stat = math.inf if mean_diff else 0.0
        t_pvalue = 0.0 if mean_diff and n >= 2 else 1.0
    return PairedComparison(
        strategy_a=strategy_a,
        strategy_b=strategy_b,
        err_rate=err_rate,
        metric=metric,
        mean_difference=mean_diff,
        stdev_difference=sample_stdev(differences),
        n=n,
        t_statistic=float(t_stat),
        t_pvalue=float(t_pvalue),
        sign_pvalue=sign_test(differences),
    )
