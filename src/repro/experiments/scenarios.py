"""The Figure 1-5 scenario walkthroughs.

The paper's Section 2/3 illustrates the strategies on two concrete
five-location scenarios:

* **Scenario A** -- d3 deviates seriously from the path: both adjacent
  pairs (d2, d3) and (d3, d4) violate the velocity constraint.
* **Scenario B** -- d3 deviates mildly toward d2: (d2, d3) is fine,
  only (d3, d4) violates, which fools drop-latest into blaming d4.

With the *refined* constraint (velocity also bounded over pairs
separated by one intermediate location, Section 3.1) scenario A gains
inconsistencies (d1, d3) and (d3, d5) and scenario B gains (d3, d5),
yielding the count values of Figures 4 and 5.

This module reconstructs both scenarios geometrically, reproduces the
count values, and replays every strategy on them; tests and the
scenario benchmark assert the paper's narrative outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..constraints.ast import Constraint
from ..constraints.checker import ConstraintChecker
from ..constraints.parser import parse_constraint
from ..core.context import Context, ContextFactory
from ..core.strategy import ResolutionStrategy, make_strategy
from ..middleware.manager import Middleware

__all__ = [
    "ScenarioOutcome",
    "scenario_contexts",
    "velocity_constraints",
    "tracked_inconsistencies",
    "count_values",
    "replay_strategy",
    "SCENARIOS",
]

#: Sampling period and velocity bound of the walkthroughs.  With the
#: paper's "average velocity v" scaled to 1 m/s and a 1 s period, the
#: 150% tolerance makes any step longer than 1.5 m a violation.
PERIOD = 1.0
BOUND = 1.5


def scenario_contexts(scenario: str, corrupted_truth: bool = True) -> List[Context]:
    """The five tracked locations d1..d5 of scenario ``"A"`` or ``"B"``.

    d3 carries the ground-truth ``corrupted`` flag (it is the context
    the tracking application got wrong in both scenarios); set
    ``corrupted_truth=False`` for pure geometry without ground truth.
    """
    if scenario == "A":
        # d3 far off the path: every pair with d3 is too fast.
        positions = [(0.0, 0.0), (1.0, 0.0), (2.0, 3.0), (3.0, 0.0), (4.0, 0.0)]
    elif scenario == "B":
        # d3 pulled back toward d2: (d2, d3) and (d1, d3) look fine,
        # but (d3, d4) and (d3, d5) are too fast.
        positions = [(0.0, 0.0), (1.0, 0.0), (1.1, 0.9), (3.0, 0.0), (4.0, 0.0)]
    else:
        raise ValueError(f"unknown scenario {scenario!r}; use 'A' or 'B'")
    factory = ContextFactory(prefix=f"d{scenario}")
    return [
        factory.make(
            "location",
            "peter",
            position,
            timestamp=index * PERIOD,
            source="walkthrough",
            corrupted=corrupted_truth and index == 2,
            ctx_id=f"d{index + 1}",
        )
        for index, position in enumerate(positions)
    ]


def velocity_constraints(refined: bool) -> List[Constraint]:
    """The walkthrough constraint set.

    ``refined=False`` gives only the adjacent-pair velocity constraint
    (Figures 1-4); ``refined=True`` adds the one-separated-pair check
    (Figure 5 / Section 3.1).
    """
    adjacent = parse_constraint(
        "velocity-adjacent",
        f"forall l1 in location, forall l2 in location : "
        f"(same_subject(l1, l2) and before(l1, l2) "
        f"and within_time(l1, l2, {PERIOD * 1.5})) "
        f"implies velocity_le(l1, l2, {BOUND})",
    )
    if not refined:
        return [adjacent]
    separated = parse_constraint(
        "velocity-separated",
        f"forall l1 in location, forall l2 in location : "
        f"(same_subject(l1, l2) and before(l1, l2) "
        f"and within_time(l1, l2, {PERIOD * 2.5}) "
        f"and not within_time(l1, l2, {PERIOD * 1.5})) "
        f"implies velocity_le(l1, l2, {BOUND})",
    )
    return [adjacent, separated]


def tracked_inconsistencies(
    scenario: str, refined: bool
) -> Set[FrozenSet[str]]:
    """Δ for a scenario as sets of context ids (no resolution applied)."""
    contexts = scenario_contexts(scenario)
    checker = ConstraintChecker(velocity_constraints(refined))
    inconsistencies = checker.check_all(contexts, now=contexts[-1].timestamp)
    return {
        frozenset(c.ctx_id for c in inc.contexts) for inc in inconsistencies
    }


def count_values(scenario: str, refined: bool) -> Dict[str, int]:
    """The Figure 4/5 count values: context id -> count."""
    counts: Dict[str, int] = {f"d{i}": 0 for i in range(1, 6)}
    for inconsistency in tracked_inconsistencies(scenario, refined):
        for ctx_id in inconsistency:
            counts[ctx_id] += 1
    return counts


@dataclass(frozen=True)
class ScenarioOutcome:
    """What a strategy did to a walkthrough scenario."""

    strategy: str
    scenario: str
    refined: bool
    discarded: Tuple[str, ...]
    delivered: Tuple[str, ...]

    @property
    def correct(self) -> bool:
        """The paper's success criterion: exactly d3 is discarded."""
        return set(self.discarded) == {"d3"}


def replay_strategy(
    strategy_name: str, scenario: str, *, refined: bool = True
) -> ScenarioOutcome:
    """Play a scenario's stream through a strategy via the middleware.

    The use window is large enough (5) that drop-bad sees the whole
    scenario before any context is used, matching the walkthrough.
    """
    contexts = scenario_contexts(scenario)
    strategy = make_strategy(strategy_name)
    middleware = Middleware(
        ConstraintChecker(velocity_constraints(refined)),
        strategy,
        use_window=len(contexts),
    )
    middleware.receive_all(contexts)
    log = middleware.resolution.log
    return ScenarioOutcome(
        strategy=strategy_name,
        scenario=scenario,
        refined=refined,
        discarded=tuple(sorted(c.ctx_id for c in log.discarded)),
        delivered=tuple(sorted(c.ctx_id for c in log.delivered)),
    )


#: Both scenarios, for iteration in tests/benchmarks/examples.
SCENARIOS: Tuple[str, ...] = ("A", "B")
