"""The Landmarc case study (paper Section 5.2).

The paper reports a real-life study feeding Landmarc [12] location
estimates through the resolution strategies, with drop-bad achieving a
96.5% location context *survival rate* (correct contexts kept) and an
84.7% *removal precision* (discarded contexts indeed incorrect), Rule
1 always holding and Rule 2' holding in 91.7% of cases.

We regenerate the study on the simulated Landmarc estimator: a walker
crosses an arena instrumented with corner readers and a reference-tag
grid.  Ordinary measurements carry mild RSSI shadowing; occasionally a
measurement suffers *complete multipath confusion* -- the RSSI vector
becomes uninformative and the estimate lands essentially anywhere in
the arena, the classic indoor-RF failure mode.  A context is
*corrupted* (ground truth) when its localization error exceeds
``corruption_threshold``; the bimodal error profile (small shadowing
errors vs large multipath errors) mirrors the deployments the paper's
RFID references [8][14] describe.

The constraint set is constructed so that Rule 1 holds structurally:
two expected contexts (error <= threshold each) can never violate the
velocity bound, and the feasibility box is expanded by the threshold,
so every detected inconsistency involves a corrupted context -- the
same property the paper observed empirically ("Rule 1 always held").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.rules import InstrumentedDropBad
from ..constraints.checker import ConstraintChecker
from ..constraints.parser import parse_constraint
from ..core.context import Context, ContextFactory
from ..middleware.manager import Middleware
from ..sensing.environment import office_floor
from ..sensing.landmarc import LandmarcEstimator, corner_readers, grid_reference_tags
from ..sensing.mobility import RandomWaypointWalker
from ..sensing.rf import PathLossModel, rssi_vector

__all__ = ["CaseStudyConfig", "CaseStudyResult", "run_case_study"]


@dataclass(frozen=True)
class CaseStudyConfig:
    """Tunables of the Landmarc case-study simulation."""

    duration: float = 400.0
    period: float = 2.0
    walk_speed: float = 1.2
    #: Ground truth: a context is corrupted when its error exceeds this.
    corruption_threshold: float = 3.0
    #: Ordinary RSSI shadowing (dB) and the multipath-confusion rate.
    shadow_sigma: float = 0.8
    burst_probability: float = 0.15
    reference_spacing: float = 4.0
    k: int = 4
    use_window: int = 6

    @property
    def velocity_bound(self) -> float:
        """Smallest bound under which two expected contexts cannot
        violate the adjacent-velocity constraint:

            v * dt + 2 * threshold <= bound * dt
        """
        return self.walk_speed + 2.0 * self.corruption_threshold / self.period

    @property
    def velocity_bound_separated(self) -> float:
        """The same safety bound over one-separated pairs (dt = 2
        periods), plus a small margin: the endpoint errors are the
        same but amortized over twice the time."""
        return self.walk_speed + self.corruption_threshold / self.period + 0.05


@dataclass(frozen=True)
class CaseStudyResult:
    """The Section 5.2 headline numbers for one simulated study."""

    contexts_total: int
    contexts_corrupted: int
    survival_rate: float
    removal_precision: float
    removal_recall: float
    rule1_rate: float
    rule2_rate: float
    rule2_relaxed_rate: float
    observations: int
    mean_error_raw: float
    mean_error_delivered: float

    @property
    def accuracy_improvement(self) -> float:
        """Relative reduction of mean localization error after cleaning."""
        if self.mean_error_raw <= 0:
            return 0.0
        return 1.0 - self.mean_error_delivered / self.mean_error_raw


def _landmarc_contexts(
    config: CaseStudyConfig, seed: int
) -> Tuple[List[Context], List[float]]:
    """Generate Landmarc-estimated location contexts plus their errors."""
    rng = random.Random(seed)
    floor = office_floor()
    x0, y0, x1, y1 = floor.bounds()
    estimator = LandmarcEstimator(
        corner_readers(x0, y0, x1, y1),
        grid_reference_tags(x0, y0, x1, y1, config.reference_spacing),
        PathLossModel(shadow_sigma=1.0),  # sigma passed per-measurement below
        k=config.k,
    )
    walker = RandomWaypointWalker(
        "peter",
        floor,
        random.Random(rng.randrange(2**31)),
        speed=config.walk_speed,
        period=config.period,
    )
    truth = walker.walk(config.duration)
    factory = ContextFactory(prefix=f"lm{seed}")
    measurement_rng = random.Random(rng.randrange(2**31))
    burst_rng = random.Random(rng.randrange(2**31))

    contexts: List[Context] = []
    errors: List[float] = []
    model = PathLossModel(shadow_sigma=config.shadow_sigma)
    for sample in truth:
        if burst_rng.random() < config.burst_probability:
            # Complete multipath confusion: the RSSI vector carries no
            # information about the tag, so the estimate is effectively
            # an arbitrary arena position.
            estimate = (
                measurement_rng.uniform(x0, x1),
                measurement_rng.uniform(y0, y1),
            )
        else:
            theta = rssi_vector(
                sample.position, estimator.readers, model, measurement_rng
            )
            estimate = estimator.estimate_from_rssi(theta)
        error = math.hypot(
            estimate[0] - sample.position[0], estimate[1] - sample.position[1]
        )
        errors.append(error)
        contexts.append(
            factory.make(
                "location",
                sample.subject,
                estimate,
                sample.timestamp,
                source="landmarc",
                corrupted=error > config.corruption_threshold,
                attributes={"error": error},
            )
        )
    return contexts, errors


def _case_study_checker(config: CaseStudyConfig) -> ConstraintChecker:
    bound = config.velocity_bound
    adjacent_gap = config.period * 1.5
    separated_gap = config.period * 2.5
    checker = ConstraintChecker(
        [
            parse_constraint(
                "lm-velocity-adjacent",
                f"forall l1 in location, forall l2 in location : "
                f"(same_subject(l1, l2) and before(l1, l2) "
                f"and within_time(l1, l2, {adjacent_gap})) "
                f"implies velocity_le(l1, l2, {bound})",
            ),
            parse_constraint(
                "lm-velocity-separated",
                f"forall l1 in location, forall l2 in location : "
                f"(same_subject(l1, l2) and before(l1, l2) "
                f"and within_time(l1, l2, {separated_gap}) "
                f"and not within_time(l1, l2, {adjacent_gap})) "
                f"implies velocity_le(l1, l2, {config.velocity_bound_separated})",
            ),
            parse_constraint(
                "lm-feasible-area",
                "forall l in location : in_arena(l)",
            ),
        ]
    )
    floor = office_floor()
    x0, y0, x1, y1 = floor.bounds()
    margin = config.corruption_threshold

    @checker.registry.register("in_arena")
    def in_arena(ctx: Context) -> bool:
        try:
            x, y = ctx.position
        except TypeError:
            return False
        return (x0 - margin) <= x <= (x1 + margin) and (
            y0 - margin
        ) <= y <= (y1 + margin)

    return checker


def run_case_study(
    seed: int = 7, config: Optional[CaseStudyConfig] = None
) -> CaseStudyResult:
    """Run one simulated Landmarc study under drop-bad."""
    config = config or CaseStudyConfig()
    contexts, errors = _landmarc_contexts(config, seed)
    strategy = InstrumentedDropBad()
    middleware = Middleware(
        _case_study_checker(config), strategy, use_window=config.use_window
    )
    middleware.receive_all(contexts)

    log = middleware.resolution.log
    delivered_errors = [c.attr("error", 0.0) for c in log.delivered]
    return CaseStudyResult(
        contexts_total=len(contexts),
        contexts_corrupted=sum(1 for c in contexts if c.corrupted),
        survival_rate=log.survival_rate(),
        removal_precision=log.removal_precision(),
        removal_recall=(
            log.discarded_corrupted()
            / max(1, sum(1 for c in contexts if c.corrupted))
        ),
        rule1_rate=strategy.report.rule1_rate,
        rule2_rate=strategy.report.rule2_rate,
        rule2_relaxed_rate=strategy.report.rule2_relaxed_rate,
        observations=len(strategy.report),
        mean_error_raw=sum(errors) / max(1, len(errors)),
        mean_error_delivered=(
            sum(delivered_errors) / max(1, len(delivered_errors))
        ),
    )
