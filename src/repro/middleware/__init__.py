"""Cabot-like middleware: clock, pool, bus, plug-in services, manager."""

from .bus import (
    ContextAdmitted,
    ContextBuffered,
    ContextDelivered,
    ContextDiscarded,
    ContextExpired,
    ContextMarkedBad,
    ContextReceived,
    Event,
    EventBus,
    InconsistencyDetected,
    SituationActivated,
    SubscriberError,
)
from .clock import SimulationClock
from .logging_service import LoggingService
from .manager import Middleware
from .pool import ContextPool
from .service import MiddlewareService, ServiceRegistry
from .subscription import Subscription, SubscriptionRegistry
from .trace import dump_context, load_context, read_trace, write_trace

__all__ = [
    "Event",
    "EventBus",
    "ContextReceived",
    "ContextAdmitted",
    "ContextBuffered",
    "ContextDiscarded",
    "ContextDelivered",
    "ContextMarkedBad",
    "ContextExpired",
    "InconsistencyDetected",
    "SituationActivated",
    "SubscriberError",
    "SimulationClock",
    "LoggingService",
    "Middleware",
    "ContextPool",
    "MiddlewareService",
    "ServiceRegistry",
    "Subscription",
    "SubscriptionRegistry",
    "dump_context",
    "load_context",
    "read_trace",
    "write_trace",
]
