"""Application subscriptions to delivered contexts.

A context-aware application registers interest in context types (and
optionally subjects); whenever a used context is judged consistent and
delivered, matching subscriptions receive it.  This is the "contexts
actually used by applications" side of the paper's first metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.context import Context

__all__ = ["Subscription", "SubscriptionRegistry"]

ContextHandler = Callable[[Context], None]


@dataclass
class Subscription:
    """One application's interest in a slice of the context stream."""

    app: str
    handler: ContextHandler
    ctx_type: Optional[str] = None
    subject: Optional[str] = None
    received: int = 0

    def matches(self, ctx: Context) -> bool:
        if self.ctx_type is not None and ctx.ctx_type != self.ctx_type:
            return False
        if self.subject is not None and ctx.subject != self.subject:
            return False
        return True

    def deliver(self, ctx: Context) -> None:
        self.received += 1
        self.handler(ctx)


class SubscriptionRegistry:
    """All active subscriptions of a middleware manager."""

    def __init__(self) -> None:
        self._subscriptions: List[Subscription] = []

    def subscribe(
        self,
        app: str,
        handler: ContextHandler,
        ctx_type: Optional[str] = None,
        subject: Optional[str] = None,
    ) -> Subscription:
        subscription = Subscription(
            app=app, handler=handler, ctx_type=ctx_type, subject=subject
        )
        self._subscriptions.append(subscription)
        return subscription

    def dispatch(self, ctx: Context) -> int:
        """Deliver ``ctx`` to every matching subscription.

        Returns the number of subscriptions that received it.
        """
        count = 0
        for subscription in self._subscriptions:
            if subscription.matches(ctx):
                subscription.deliver(ctx)
                count += 1
        return count

    def for_app(self, app: str) -> List[Subscription]:
        return [s for s in self._subscriptions if s.app == app]

    def __len__(self) -> int:
        return len(self._subscriptions)
