"""Context-trace recording and replay (JSONL).

A recorded trace makes a run repeatable and shareable: the exact
context stream an experiment consumed can be written to a JSON-Lines
file and replayed later through any strategy -- the workflow one uses
with real deployment traces instead of synthetic workloads.

Format: one JSON object per line with the Context fields; values and
attributes must be JSON-serializable (positions are stored as lists
and restored as tuples).

Both directions stream: :func:`write_trace` consumes any iterable and
:func:`read_trace` is a lazy generator, so a million-context trace can
be piped straight into the middleware or the sharded engine without
ever materializing the whole list.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Iterator, Union

from ..core.context import Context

__all__ = [
    "context_record",
    "context_from_record",
    "dump_context",
    "load_context",
    "write_trace",
    "read_trace",
]

_INF = "Infinity"


def context_record(ctx: Context) -> dict:
    """One context as a plain JSON-serializable dict.

    The dict-level counterpart of :func:`dump_context`: the decision
    ledger (:mod:`repro.ledger`) embeds context records inside its
    arrival entries, so arrivals and traces share one wire format
    (infinite lifespans become the ``"Infinity"`` sentinel, tuple
    values survive as lists).
    """
    return {
        "ctx_id": ctx.ctx_id,
        "ctx_type": ctx.ctx_type,
        "subject": ctx.subject,
        "value": list(ctx.value) if isinstance(ctx.value, tuple) else ctx.value,
        "timestamp": ctx.timestamp,
        "lifespan": _INF if math.isinf(ctx.lifespan) else ctx.lifespan,
        "source": ctx.source,
        "corrupted": ctx.corrupted,
        "attributes": [list(pair) for pair in ctx.attributes],
    }


def context_from_record(record: dict) -> Context:
    """Rebuild a Context from a :func:`context_record` dict."""
    value = record["value"]
    if isinstance(value, list):
        value = tuple(value)
    lifespan = record["lifespan"]
    if lifespan == _INF:
        lifespan = math.inf
    return Context(
        ctx_id=record["ctx_id"],
        ctx_type=record["ctx_type"],
        subject=record["subject"],
        value=value,
        timestamp=record["timestamp"],
        lifespan=lifespan,
        source=record["source"],
        corrupted=record["corrupted"],
        attributes=tuple((k, v) for k, v in record["attributes"]),
    )


def dump_context(ctx: Context) -> str:
    """One context as a JSON line (no trailing newline)."""
    try:
        return json.dumps(context_record(ctx), sort_keys=True)
    except TypeError as error:
        raise ValueError(
            f"context {ctx.ctx_id!r} is not trace-serializable: {error}"
        ) from None


def load_context(line: str) -> Context:
    """Parse one JSON line back into a Context."""
    return context_from_record(json.loads(line))


def write_trace(contexts: Iterable[Context], path: Union[str, Path]) -> int:
    """Write a stream to a JSONL trace file; returns contexts written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for ctx in contexts:
            handle.write(dump_context(ctx))
            handle.write("\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> Iterator[Context]:
    """Lazily yield the contexts of a JSONL trace file, in file order.

    The file stays open only while the generator is being consumed and
    only one line is held in memory at a time.  Wrap in ``list()`` when
    a materialized stream is needed (e.g. for ``len()``).
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield load_context(line)
