"""Context-trace recording and replay (JSONL).

A recorded trace makes a run repeatable and shareable: the exact
context stream an experiment consumed can be written to a JSON-Lines
file and replayed later through any strategy -- the workflow one uses
with real deployment traces instead of synthetic workloads.

Format: one JSON object per line with the Context fields; values and
attributes must be JSON-serializable (positions are stored as lists
and restored as tuples).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Union

from ..core.context import Context

__all__ = ["dump_context", "load_context", "write_trace", "read_trace"]

_INF = "Infinity"


def dump_context(ctx: Context) -> str:
    """One context as a JSON line (no trailing newline)."""
    record = {
        "ctx_id": ctx.ctx_id,
        "ctx_type": ctx.ctx_type,
        "subject": ctx.subject,
        "value": ctx.value,
        "timestamp": ctx.timestamp,
        "lifespan": _INF if math.isinf(ctx.lifespan) else ctx.lifespan,
        "source": ctx.source,
        "corrupted": ctx.corrupted,
        "attributes": list(ctx.attributes),
    }
    try:
        return json.dumps(record, sort_keys=True)
    except TypeError as error:
        raise ValueError(
            f"context {ctx.ctx_id!r} is not trace-serializable: {error}"
        ) from None


def load_context(line: str) -> Context:
    """Parse one JSON line back into a Context."""
    record = json.loads(line)
    value = record["value"]
    if isinstance(value, list):
        value = tuple(value)
    lifespan = record["lifespan"]
    if lifespan == _INF:
        lifespan = math.inf
    return Context(
        ctx_id=record["ctx_id"],
        ctx_type=record["ctx_type"],
        subject=record["subject"],
        value=value,
        timestamp=record["timestamp"],
        lifespan=lifespan,
        source=record["source"],
        corrupted=record["corrupted"],
        attributes=tuple((k, v) for k, v in record["attributes"]),
    )


def write_trace(contexts: Iterable[Context], path: Union[str, Path]) -> int:
    """Write a stream to a JSONL trace file; returns contexts written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for ctx in contexts:
            handle.write(dump_context(ctx))
            handle.write("\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> List[Context]:
    """Load a JSONL trace file back into a context list."""
    contexts: List[Context] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                contexts.append(load_context(line))
    return contexts
