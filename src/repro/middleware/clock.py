"""Simulation clock.

All middleware components share one monotonic clock.  Experiments are
discrete-event simulations: the clock is advanced by the workload (to
each context's production timestamp) rather than by wall time, which
keeps every run deterministic and independent of host speed.
"""

from __future__ import annotations

from typing import Callable, List

__all__ = ["SimulationClock"]


class SimulationClock:
    """A monotonic, manually advanced clock.

    Raises if asked to move backwards -- a workload bug that would
    otherwise silently corrupt freshness/expiry logic.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._watchers: List[Callable[[float], None]] = []

    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` (must be >= 0)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt {dt}")
        return self.advance_to(self._now + dt)

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t``.

        ``t`` may equal the current time (no-op) but not precede it.
        """
        if t < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, requested {t}"
            )
        if t > self._now:
            self._now = t
            for watcher in self._watchers:
                watcher(t)
        return self._now

    def on_advance(self, watcher: Callable[[float], None]) -> None:
        """Register a callback invoked after every forward move."""
        self._watchers.append(watcher)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulationClock(now={self._now:g})"
