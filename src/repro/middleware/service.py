"""Plug-in context-management services.

Cabot "supports plug-in context management services"; the paper's
inconsistency resolution module is one such plug-in, "invoked whenever
Cabot received new contexts".  This module defines the service
contract and registry so the middleware manager can host an arbitrary
stack of services (resolution, logging, metrics, situation
evaluation) without knowing their internals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .manager import Middleware

__all__ = ["MiddlewareService", "ServiceRegistry"]


class MiddlewareService(ABC):
    """Base class for middleware plug-ins.

    A service is attached to exactly one manager; ``on_attach`` is its
    chance to subscribe to bus events or grab references.
    """

    #: Unique service name within one manager.
    name: str = "service"

    def on_attach(self, middleware: "Middleware") -> None:
        """Called once when the service is plugged into a manager."""

    def on_detach(self, middleware: "Middleware") -> None:
        """Called when the service is unplugged from a manager.

        Services that subscribed bus handlers in :meth:`on_attach`
        must unsubscribe them here, so a detached service leaves no
        dangling callbacks and can be re-attached to a fresh manager
        without double-handling events.
        """

    def on_start(self) -> None:
        """Called when a run begins (after all services attached)."""

    def on_stop(self) -> None:
        """Called when a run ends."""


class ServiceRegistry:
    """Ordered collection of the services plugged into one manager."""

    def __init__(self) -> None:
        self._services: Dict[str, MiddlewareService] = {}
        self._order: List[str] = []

    def add(self, service: MiddlewareService) -> None:
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already plugged in")
        self._services[service.name] = service
        self._order.append(service.name)

    def get(self, name: str) -> MiddlewareService:
        return self._services[name]

    def remove(self, name: str) -> MiddlewareService:
        """Unregister and return a service; ``KeyError`` if unknown."""
        service = self._services.pop(name)
        self._order.remove(name)
        return service

    def maybe_get(self, name: str) -> Optional[MiddlewareService]:
        return self._services.get(name)

    def __iter__(self):
        return (self._services[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, name: object) -> bool:
        return name in self._services

    def start_all(self) -> None:
        for service in self:
            service.on_start()

    def stop_all(self) -> None:
        for service in self:
            service.on_stop()
