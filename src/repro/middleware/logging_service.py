"""Structured logging plug-in for the middleware.

Attaching a :class:`LoggingService` mirrors the full event stream onto
a standard :mod:`logging` logger -- the usual way to watch a run
without writing a bespoke bus subscriber:

    import logging
    logging.basicConfig(level=logging.DEBUG)
    middleware.plug_in(LoggingService())

Inconsistency detections and discards log at INFO (they are the
interesting events); the high-volume arrival/delivery chatter logs at
DEBUG.
"""

from __future__ import annotations

import logging
from typing import Optional

from .bus import (
    ContextAdmitted,
    ContextBuffered,
    ContextDelivered,
    ContextDiscarded,
    ContextExpired,
    ContextMarkedBad,
    ContextReceived,
    InconsistencyDetected,
    SituationActivated,
    SubscriberError,
)
from .manager import Middleware
from .service import MiddlewareService

__all__ = ["LoggingService"]


class LoggingService(MiddlewareService):
    """Mirrors middleware events onto a logger."""

    name = "logging"

    def __init__(self, logger: Optional[logging.Logger] = None) -> None:
        self.logger = logger or logging.getLogger("repro.middleware")

    def on_attach(self, middleware: Middleware) -> None:
        bus = middleware.bus
        log = self.logger

        bus.subscribe(
            ContextReceived,
            lambda e: log.debug(
                "t=%.1f received %s", e.at, e.context.ctx_id
            ),
        )
        bus.subscribe(
            ContextAdmitted,
            lambda e: log.debug(
                "t=%.1f admitted %s", e.at, e.context.ctx_id
            ),
        )
        bus.subscribe(
            ContextBuffered,
            lambda e: log.debug(
                "t=%.1f buffered %s", e.at, e.context.ctx_id
            ),
        )
        bus.subscribe(
            ContextDelivered,
            lambda e: log.debug(
                "t=%.1f delivered %s", e.at, e.context.ctx_id
            ),
        )
        bus.subscribe(
            ContextExpired,
            lambda e: log.debug(
                "t=%.1f expired %s", e.at, e.context.ctx_id
            ),
        )
        bus.subscribe(
            InconsistencyDetected,
            lambda e: log.info(
                "t=%.1f inconsistency %s {%s}",
                e.at,
                e.inconsistency.constraint,
                ",".join(sorted(c.ctx_id for c in e.inconsistency.contexts)),
            ),
        )
        bus.subscribe(
            ContextMarkedBad,
            lambda e: log.info(
                "t=%.1f marked bad %s", e.at, e.context.ctx_id
            ),
        )
        bus.subscribe(
            ContextDiscarded,
            lambda e: log.info(
                "t=%.1f discarded %s%s",
                e.at,
                e.context.ctx_id,
                " (corrupted)" if e.context.corrupted else "",
            ),
        )
        bus.subscribe(
            SituationActivated,
            lambda e: log.info(
                "t=%.1f situation %s activated by %s",
                e.at,
                e.situation,
                e.context.ctx_id,
            ),
        )
        bus.subscribe(
            SubscriberError,
            lambda e: log.error(
                "t=%.1f subscriber %s failed handling %s: %s",
                e.at,
                e.handler,
                e.event_type,
                e.error,
            ),
        )
