"""Structured logging plug-in for the middleware.

Attaching a :class:`LoggingService` mirrors the full event stream onto
a standard :mod:`logging` logger -- the usual way to watch a run
without writing a bespoke bus subscriber:

    import logging
    logging.basicConfig(level=logging.DEBUG)
    middleware.plug_in(LoggingService())

Inconsistency detections and discards log at INFO (they are the
interesting events); the high-volume arrival/delivery chatter logs at
DEBUG.

The service retains every handler it subscribes, so
:meth:`on_detach` (via ``Middleware.unplug``) removes them all -- a
service instance can be moved between managers without leaving stale
subscriptions behind that would double every log line.
"""

from __future__ import annotations

import logging
from typing import Callable, List, Optional, Tuple, Type

from .bus import (
    ContextAdmitted,
    ContextBuffered,
    ContextDelivered,
    ContextDiscarded,
    ContextExpired,
    ContextMarkedBad,
    ContextReceived,
    Event,
    InconsistencyDetected,
    SituationActivated,
    SubscriberError,
)
from .manager import Middleware
from .service import MiddlewareService

__all__ = ["LoggingService"]


class LoggingService(MiddlewareService):
    """Mirrors middleware events onto a logger."""

    name = "logging"

    def __init__(self, logger: Optional[logging.Logger] = None) -> None:
        self.logger = logger or logging.getLogger("repro.middleware")
        self._subscribed: List[Tuple[Type[Event], Callable[[Event], None]]] = []
        self._bus = None

    def on_attach(self, middleware: Middleware) -> None:
        bus = middleware.bus
        self._bus = bus
        log = self.logger

        handlers: List[Tuple[Type[Event], Callable]] = [
            (
                ContextReceived,
                lambda e: log.debug(
                    "t=%.1f received %s", e.at, e.context.ctx_id
                ),
            ),
            (
                ContextAdmitted,
                lambda e: log.debug(
                    "t=%.1f admitted %s", e.at, e.context.ctx_id
                ),
            ),
            (
                ContextBuffered,
                lambda e: log.debug(
                    "t=%.1f buffered %s", e.at, e.context.ctx_id
                ),
            ),
            (
                ContextDelivered,
                lambda e: log.debug(
                    "t=%.1f delivered %s", e.at, e.context.ctx_id
                ),
            ),
            (
                ContextExpired,
                lambda e: log.debug(
                    "t=%.1f expired %s", e.at, e.context.ctx_id
                ),
            ),
            (
                InconsistencyDetected,
                lambda e: log.info(
                    "t=%.1f inconsistency %s {%s}",
                    e.at,
                    e.inconsistency.constraint,
                    ",".join(sorted(c.ctx_id for c in e.inconsistency.contexts)),
                ),
            ),
            (
                ContextMarkedBad,
                lambda e: log.info(
                    "t=%.1f marked bad %s", e.at, e.context.ctx_id
                ),
            ),
            (
                ContextDiscarded,
                lambda e: log.info(
                    "t=%.1f discarded %s%s",
                    e.at,
                    e.context.ctx_id,
                    " (corrupted)" if e.context.corrupted else "",
                ),
            ),
            (
                SituationActivated,
                lambda e: log.info(
                    "t=%.1f situation %s activated by %s",
                    e.at,
                    e.situation,
                    e.context.ctx_id,
                ),
            ),
            (
                SubscriberError,
                lambda e: log.error(
                    "t=%.1f subscriber %s failed handling %s: %s",
                    e.at,
                    e.handler,
                    e.event_type,
                    e.error,
                ),
            ),
        ]
        for event_type, handler in handlers:
            bus.subscribe(event_type, handler)
            self._subscribed.append((event_type, handler))

    def on_detach(self, middleware: Middleware) -> None:
        """Unsubscribe every retained handler registered on attach."""
        if self._bus is None:
            return
        for event_type, handler in self._subscribed:
            self._bus.unsubscribe(event_type, handler)
        self._subscribed.clear()
        self._bus = None
