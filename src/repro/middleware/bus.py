"""Typed event bus connecting middleware components.

Components communicate through published events rather than direct
references, mirroring Cabot's plug-in architecture: the resolution
service, the situation engine, application subscriptions and the
metrics collector all observe the same stream.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Dict, List, Type, TypeVar

from ..core.context import Context
from ..core.inconsistency import Inconsistency

__all__ = [
    "Event",
    "ContextReceived",
    "ContextAdmitted",
    "ContextBuffered",
    "ContextDiscarded",
    "ContextDelivered",
    "ContextMarkedBad",
    "ContextExpired",
    "ContextStale",
    "ContextDuplicate",
    "InconsistencyDetected",
    "SituationActivated",
    "SubscriberError",
    "EventBus",
]

_log = logging.getLogger("repro.middleware")


@dataclass(frozen=True)
class Event:
    """Base class for bus events; ``at`` is simulation time."""

    at: float


@dataclass(frozen=True)
class ContextReceived(Event):
    """A context source handed a context to the middleware."""

    context: Context


@dataclass(frozen=True)
class ContextAdmitted(Event):
    """The strategy judged a context consistent and available."""

    context: Context


@dataclass(frozen=True)
class ContextBuffered(Event):
    """Drop-bad held a context in the buffer pending its use."""

    context: Context


@dataclass(frozen=True)
class ContextDiscarded(Event):
    """A context was judged inconsistent and removed from the pool."""

    context: Context


@dataclass(frozen=True)
class ContextDelivered(Event):
    """A used context was delivered to the requesting application."""

    context: Context


@dataclass(frozen=True)
class ContextMarkedBad(Event):
    """Drop-bad marked a context bad (deferred discard)."""

    context: Context


@dataclass(frozen=True)
class ContextExpired(Event):
    """A context's availability period elapsed before it was used."""

    context: Context


@dataclass(frozen=True)
class ContextStale(Event):
    """The async-check ingress dropped an arrival as unorderably late.

    Its timestamp predates the snapshot window's cursor (the largest
    released timestamp), so admitting it would regress the checker's
    clock (see :mod:`repro.runtime.snapshot`).  Only published when
    asynchronous checking is enabled.
    """

    context: Context


@dataclass(frozen=True)
class ContextDuplicate(Event):
    """The async-check ingress dropped a re-delivered ctx_id.

    Only published when asynchronous checking is enabled (synchronous
    hosts keep the historical last-write-wins re-send semantics).
    """

    context: Context


@dataclass(frozen=True)
class InconsistencyDetected(Event):
    """The checker reported a constraint violation."""

    inconsistency: Inconsistency


@dataclass(frozen=True)
class SituationActivated(Event):
    """A situation fired for an application."""

    situation: str
    context: Context


@dataclass(frozen=True)
class SubscriberError(Event):
    """A subscriber callback raised while handling an event.

    Published so observers (e.g. :class:`LoggingService`) can surface
    faulty application callbacks; the failing handler is skipped and
    delivery to the remaining subscribers continues.
    """

    event_type: str
    handler: str
    error: str


E = TypeVar("E", bound=Event)
Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe dispatch keyed on event type.

    Handlers subscribed to a base class also receive subclass events,
    so ``bus.subscribe(Event, tap)`` observes everything.

    Subscribers are isolated from each other: a handler that raises is
    logged, counted in :attr:`subscriber_failures`, reported through a
    :class:`SubscriberError` event, and skipped -- one faulty
    application callback cannot kill the pipeline or starve the other
    subscribers.
    """

    def __init__(self) -> None:
        self._handlers: Dict[Type[Event], List[Handler]] = {}
        self.published: int = 0
        #: Handler invocations that raised (across all event types).
        self.subscriber_failures: int = 0

    def subscribe(self, event_type: Type[E], handler: Callable[[E], None]) -> None:
        """Register ``handler`` for events of ``event_type`` (and subtypes)."""
        self._handlers.setdefault(event_type, []).append(handler)  # type: ignore[arg-type]

    def unsubscribe(
        self, event_type: Type[E], handler: Callable[[E], None]
    ) -> bool:
        """Remove one prior subscription; returns whether it was found.

        Only the exact ``(event_type, handler)`` pair registered via
        :meth:`subscribe` matches -- services that subscribe lambdas
        must retain them to unsubscribe (see ``LoggingService``).
        """
        handlers = self._handlers.get(event_type)
        if not handlers:
            return False
        try:
            handlers.remove(handler)  # type: ignore[arg-type]
        except ValueError:
            return False
        if not handlers:
            del self._handlers[event_type]
        return True

    def publish(self, event: Event) -> None:
        """Deliver ``event`` synchronously to all matching handlers."""
        self.published += 1
        failures: List[SubscriberError] = []
        for event_type, handlers in self._handlers.items():
            if isinstance(event, event_type):
                for handler in list(handlers):
                    try:
                        handler(event)
                    except Exception as error:
                        self.subscriber_failures += 1
                        name = getattr(handler, "__qualname__", repr(handler))
                        _log.exception(
                            "subscriber %s failed handling %s: %s",
                            name,
                            type(event).__name__,
                            error,
                        )
                        if not isinstance(event, SubscriberError):
                            failures.append(
                                SubscriberError(
                                    at=event.at,
                                    event_type=type(event).__name__,
                                    handler=name,
                                    error=f"{type(error).__name__}: {error}",
                                )
                            )
        # Report failures after the delivery loop; failures raised
        # while handling a SubscriberError are logged but not
        # re-published, so a broken error handler cannot recurse.
        for failure in failures:
            self.publish(failure)

    def clear(self) -> None:
        """Drop all subscriptions (between experiment groups)."""
        self._handlers.clear()
        self.published = 0
