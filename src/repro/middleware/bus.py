"""Typed event bus connecting middleware components.

Components communicate through published events rather than direct
references, mirroring Cabot's plug-in architecture: the resolution
service, the situation engine, application subscriptions and the
metrics collector all observe the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Type, TypeVar

from ..core.context import Context
from ..core.inconsistency import Inconsistency

__all__ = [
    "Event",
    "ContextReceived",
    "ContextAdmitted",
    "ContextBuffered",
    "ContextDiscarded",
    "ContextDelivered",
    "ContextMarkedBad",
    "ContextExpired",
    "InconsistencyDetected",
    "SituationActivated",
    "EventBus",
]


@dataclass(frozen=True)
class Event:
    """Base class for bus events; ``at`` is simulation time."""

    at: float


@dataclass(frozen=True)
class ContextReceived(Event):
    """A context source handed a context to the middleware."""

    context: Context


@dataclass(frozen=True)
class ContextAdmitted(Event):
    """The strategy judged a context consistent and available."""

    context: Context


@dataclass(frozen=True)
class ContextBuffered(Event):
    """Drop-bad held a context in the buffer pending its use."""

    context: Context


@dataclass(frozen=True)
class ContextDiscarded(Event):
    """A context was judged inconsistent and removed from the pool."""

    context: Context


@dataclass(frozen=True)
class ContextDelivered(Event):
    """A used context was delivered to the requesting application."""

    context: Context


@dataclass(frozen=True)
class ContextMarkedBad(Event):
    """Drop-bad marked a context bad (deferred discard)."""

    context: Context


@dataclass(frozen=True)
class ContextExpired(Event):
    """A context's availability period elapsed before it was used."""

    context: Context


@dataclass(frozen=True)
class InconsistencyDetected(Event):
    """The checker reported a constraint violation."""

    inconsistency: Inconsistency


@dataclass(frozen=True)
class SituationActivated(Event):
    """A situation fired for an application."""

    situation: str
    context: Context


E = TypeVar("E", bound=Event)
Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe dispatch keyed on event type.

    Handlers subscribed to a base class also receive subclass events,
    so ``bus.subscribe(Event, tap)`` observes everything.
    """

    def __init__(self) -> None:
        self._handlers: Dict[Type[Event], List[Handler]] = {}
        self.published: int = 0

    def subscribe(self, event_type: Type[E], handler: Callable[[E], None]) -> None:
        """Register ``handler`` for events of ``event_type`` (and subtypes)."""
        self._handlers.setdefault(event_type, []).append(handler)  # type: ignore[arg-type]

    def publish(self, event: Event) -> None:
        """Deliver ``event`` synchronously to all matching handlers."""
        self.published += 1
        for event_type, handlers in self._handlers.items():
            if isinstance(event, event_type):
                for handler in list(handlers):
                    handler(event)

    def clear(self) -> None:
        """Drop all subscriptions (between experiment groups)."""
        self._handlers.clear()
        self.published = 0
