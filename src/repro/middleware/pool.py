"""The context pool: the middleware's repository of live contexts.

Holds every context that has been received and neither discarded nor
expired, in arrival order.  Availability to applications is a
life-cycle question answered by the resolution strategy; the pool only
answers liveness and lookup questions.

Arrival order rides on dict insertion order (one structure, O(1)
amortized add/remove/expire); discard is on the resolution hot path,
so there is no side list to scan.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from ..core.context import Context

__all__ = ["ContextPool"]


class ContextPool:
    """Ordered collection of live contexts with expiry support.

    Listeners (e.g. the constraint checker's candidate index) observe
    every mutation: ``on_add(ctx)`` after an insert, ``on_remove(ctx)``
    after a discard or expiry, ``on_clear()`` after a reset.
    """

    def __init__(self) -> None:
        self._by_id: Dict[str, Context] = {}
        self._listeners: List[object] = []

    # -- listeners --------------------------------------------------------

    def add_listener(self, listener: object) -> None:
        """Register a mutation observer (on_add/on_remove/on_clear)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: object) -> None:
        self._listeners.remove(listener)

    # -- mutation ---------------------------------------------------------

    def add(self, ctx: Context) -> None:
        """Insert a context; ids must be unique among live contexts."""
        if ctx.ctx_id in self._by_id:
            raise ValueError(f"context {ctx.ctx_id!r} already in pool")
        self._by_id[ctx.ctx_id] = ctx
        for listener in self._listeners:
            listener.on_add(ctx)

    def remove(self, ctx: Context) -> bool:
        """Remove a context (discard); returns whether it was present."""
        stored = self._by_id.get(ctx.ctx_id)
        if stored is None:
            return False
        del self._by_id[ctx.ctx_id]
        # Notify with the *stored* instance: a caller may hold an
        # equal-but-distinct object, and listeners index the one that
        # actually lived in the pool.
        for listener in self._listeners:
            listener.on_remove(stored)
        return True

    def expire(self, now: float) -> List[Context]:
        """Remove and return every context whose lifespan elapsed."""
        expired = [c for c in self if c.is_expired(now)]
        for ctx in expired:
            self.remove(ctx)
        return expired

    def clear(self) -> None:
        self._by_id.clear()
        for listener in self._listeners:
            listener.on_clear()

    # -- lookup -----------------------------------------------------------

    def __contains__(self, ctx: object) -> bool:
        """Whether *this* context (or an equal one) is live.

        Matching by id alone would claim membership for a stale
        instance whose id a newer, different context reuses -- replayed
        batches can re-present such instances -- so the stored context
        must also be the same object or compare equal.
        """
        if not isinstance(ctx, Context):
            return False
        stored = self._by_id.get(ctx.ctx_id)
        return stored is not None and (stored is ctx or stored == ctx)

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Context]:
        """Contexts in arrival order."""
        return iter(list(self._by_id.values()))

    def get(self, ctx_id: str) -> Optional[Context]:
        return self._by_id.get(ctx_id)

    def contents(self) -> List[Context]:
        """All live contexts in arrival order (a fresh list)."""
        return list(self)

    def by_type(self, ctx_type: str) -> List[Context]:
        return [c for c in self if c.ctx_type == ctx_type]

    def by_subject(self, subject: str) -> List[Context]:
        return [c for c in self if c.subject == subject]

    def query(
        self,
        ctx_type: Optional[str] = None,
        subject: Optional[str] = None,
        predicate: Optional[Callable[[Context], bool]] = None,
    ) -> List[Context]:
        """Filter live contexts by type, subject and/or a predicate."""
        out = []
        for ctx in self:
            if ctx_type is not None and ctx.ctx_type != ctx_type:
                continue
            if subject is not None and ctx.subject != subject:
                continue
            if predicate is not None and not predicate(ctx):
                continue
            out.append(ctx)
        return out

    def latest(
        self, ctx_type: Optional[str] = None, subject: Optional[str] = None
    ) -> Optional[Context]:
        """The most recent live context matching the filters."""
        matches = self.query(ctx_type=ctx_type, subject=subject)
        if not matches:
            return None
        return max(matches, key=lambda c: (c.timestamp, c.ctx_id))
