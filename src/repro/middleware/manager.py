"""The middleware manager: the reproduction of the Cabot host.

The manager owns the full pipeline of the paper's experimental setup:

    context source ──▶ receive ──▶ constraint check ──▶ resolution
                                                      strategy plug-in
         applications ◀── deliver ◀── use (context deletion change)

Contexts are *used* by applications a configurable window after their
arrival (Section 5.3: "the time window, i.e. period before a context
is used by applications").  Two window semantics are supported:

* **count-based** (``use_window`` arrivals) -- deterministic and the
  experiments' default;
* **time-based** (``use_delay`` simulated seconds) -- the
  "checking-sensitive period" of the Cabot middleware [16] that the
  paper cites as a natural window source; due contexts are used as the
  clock advances past ``arrival + use_delay``.

A zero window means every context is used immediately upon arrival,
which degenerates drop-bad into drop-latest behaviour (Section 5.3)
-- the window ablation benchmark exercises exactly this claim.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..core.context import Context, ContextState
from ..core.resolver import InconsistencyDetector, ResolutionService
from ..core.strategy import ResolutionStrategy
from .bus import (
    ContextAdmitted,
    ContextBuffered,
    ContextDelivered,
    ContextDiscarded,
    ContextExpired,
    ContextMarkedBad,
    ContextReceived,
    EventBus,
    InconsistencyDetected,
)
from .clock import SimulationClock
from .pool import ContextPool
from .service import MiddlewareService, ServiceRegistry
from .subscription import SubscriptionRegistry

__all__ = ["Middleware"]


class Middleware:
    """Hosts the pool, the resolution plug-in, and application delivery.

    Parameters
    ----------
    detector:
        Inconsistency detector (usually a
        :class:`~repro.constraints.checker.ConstraintChecker`).
    strategy:
        The resolution strategy plug-in for this run.
    use_window:
        How many later context arrivals pass before a context is used
        by applications (>= 0).  Ignored when ``use_delay`` is given.
    use_delay:
        Alternative time-based window: a context is used once the
        simulation clock passes ``arrival + use_delay`` seconds.
    clock, bus:
        Optionally injected for sharing across components.
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle; when given, the
        pipeline stages (receive/check/resolve/use/deliver/discard)
        record spans and latency histograms into it.  Attaching a
        :class:`repro.obs.TelemetryService` sets this up too.
    """

    def __init__(
        self,
        detector: InconsistencyDetector,
        strategy: ResolutionStrategy,
        *,
        use_window: int = 4,
        use_delay: Optional[float] = None,
        clock: Optional[SimulationClock] = None,
        bus: Optional[EventBus] = None,
        telemetry=None,
    ) -> None:
        if use_window < 0:
            raise ValueError(f"use_window must be >= 0, got {use_window}")
        if use_delay is not None and use_delay < 0:
            raise ValueError(f"use_delay must be >= 0, got {use_delay}")
        self.clock = clock or SimulationClock()
        self.bus = bus or EventBus()
        self.pool = ContextPool()
        self.resolution = ResolutionService(detector, strategy)
        self.subscriptions = SubscriptionRegistry()
        self.services = ServiceRegistry()
        self.use_window = use_window
        self.use_delay = use_delay
        self._pending_use: Deque[Tuple[Context, int, float]] = deque()
        self._arrivals = 0
        self._used_ids: set = set()
        if hasattr(detector, "attach_pool"):
            # Constraint checkers maintain persistent candidate
            # indexes through pool listeners (see constraints.index).
            detector.attach_pool(self.pool)
        self.attach_telemetry(
            telemetry if telemetry is not None else self.resolution.telemetry
        )  # NULL bundle until a live one is attached

    # -- plug-ins -------------------------------------------------------------

    @property
    def strategy(self) -> ResolutionStrategy:
        return self.resolution.strategy

    def plug_in(self, service: MiddlewareService) -> None:
        """Attach a plug-in service (situation engine, metrics, ...)."""
        self.services.add(service)
        service.on_attach(self)

    def unplug(self, name: str) -> MiddlewareService:
        """Detach a plug-in service by name; returns it.

        The service's :meth:`~MiddlewareService.on_detach` runs so it
        can unsubscribe its bus handlers; afterwards it may be plugged
        into another manager.
        """
        service = self.services.remove(name)
        service.on_detach(self)
        return service

    def attach_telemetry(self, telemetry) -> None:
        """Adopt a telemetry bundle across the whole pipeline.

        Wires the bundle into the resolution service (check/resolve
        stage timers) and the detector (incremental-check spans), so
        hot-path latencies land in one registry.
        """
        self.telemetry = telemetry
        self.resolution.telemetry = telemetry
        if hasattr(self.resolution.detector, "telemetry"):
            self.resolution.detector.telemetry = telemetry
        # Reusable stage timers: re-entered per context, allocated once.
        self._stage_receive = telemetry.stage_timer("receive")
        self._stage_use = telemetry.stage_timer("use")
        self._stage_deliver = telemetry.stage_timer("deliver")
        self._stage_discard = telemetry.stage_timer("discard")

    # -- the context addition change ------------------------------------------

    def receive(self, ctx: Context) -> None:
        """Process a context handed over by a context source."""
        now = max(self.clock.now(), ctx.timestamp)
        self.clock.advance_to(now)
        self._expire(now)
        if self.use_delay is not None:
            # Time-based window: contexts whose delay elapsed are used
            # BEFORE the newcomer is checked -- they have left the
            # checking scope by the time it arrives.
            self._drain_due_uses(now)

        with self._stage_receive:
            existing = [
                c for c in self.pool.contents() if c.ctx_id != ctx.ctx_id
            ]
            detected_before = len(self.resolution.log.detected)
            outcome = self.resolution.handle_addition(ctx, existing, now)
            self.bus.publish(ContextReceived(at=now, context=ctx))
            for inconsistency in self.resolution.log.detected[detected_before:]:
                self.bus.publish(
                    InconsistencyDetected(at=now, inconsistency=inconsistency)
                )

            discarded_ids = {c.ctx_id for c in outcome.discarded}
            if ctx.ctx_id not in discarded_ids:
                self.pool.add(ctx)
                self._arrivals += 1
                self._pending_use.append((ctx, self._arrivals, now))
            for victim in outcome.discarded:
                with self._stage_discard:
                    self.pool.remove(victim)
                    self._unschedule(victim)
                    self.bus.publish(ContextDiscarded(at=now, context=victim))
            for admitted in outcome.admitted:
                self.bus.publish(ContextAdmitted(at=now, context=admitted))
            if outcome.buffered:
                self.bus.publish(ContextBuffered(at=now, context=ctx))

        self._drain_due_uses(now)

    def receive_all(self, contexts: Iterable[Context]) -> None:
        """Feed a whole stream, then flush the remaining pending uses."""
        for ctx in contexts:
            self.receive(ctx)
        self.flush_uses()

    # -- the context deletion (use) change --------------------------------------

    def use(self, ctx: Context) -> bool:
        """An application uses ``ctx`` now; returns whether delivered."""
        now = self.clock.now()
        self._used_ids.add(ctx.ctx_id)
        with self._stage_use:
            outcome = self.resolution.handle_use(ctx, now)
            for bad in outcome.newly_bad:
                self.bus.publish(ContextMarkedBad(at=now, context=bad))
            for victim in outcome.discarded:
                with self._stage_discard:
                    self.pool.remove(victim)
                    self._unschedule(victim)
                    self.bus.publish(ContextDiscarded(at=now, context=victim))
            if outcome.delivered:
                with self._stage_deliver:
                    self.bus.publish(ContextDelivered(at=now, context=ctx))
                    self.subscriptions.dispatch(ctx)
        return outcome.delivered

    def flush_uses(self) -> None:
        """Use every context still awaiting its window (end of stream)."""
        while self._pending_use:
            ctx, _, _ = self._pending_use.popleft()
            self.use(ctx)

    # -- queries ---------------------------------------------------------------

    def available_contexts(self) -> List[Context]:
        """Live contexts currently judged consistent (app-visible)."""
        lifecycle = self.strategy.lifecycle
        return [
            c
            for c in self.pool
            if lifecycle.known(c)
            and lifecycle.state_of(c) == ContextState.CONSISTENT
        ]

    def used_count(self) -> int:
        return len(self._used_ids)

    # -- internals --------------------------------------------------------------

    def _drain_due_uses(self, now: float) -> None:
        def head_is_due() -> bool:
            if not self._pending_use:
                return False
            _, arrival_index, arrived_at = self._pending_use[0]
            if self.use_delay is not None:
                return now >= arrived_at + self.use_delay
            return self._arrivals - arrival_index >= self.use_window

        while head_is_due():
            ctx, _, _ = self._pending_use.popleft()
            self.use(ctx)

    def _unschedule(self, ctx: Context) -> None:
        self._pending_use = deque(
            entry for entry in self._pending_use if entry[0].ctx_id != ctx.ctx_id
        )

    def _expire(self, now: float) -> None:
        for expired in self.pool.expire(now):
            self._unschedule(expired)
            self.resolution.strategy.delta.resolve_involving(expired)
            self.bus.publish(ContextExpired(at=now, context=expired))
