"""The middleware manager: the reproduction of the Cabot host.

The manager hosts the full pipeline of the paper's experimental setup:

    context source ──▶ receive ──▶ constraint check ──▶ resolution
                                                      strategy plug-in
         applications ◀── deliver ◀── use (context deletion change)

Since ISSUE 5 the life cycle itself lives in :mod:`repro.runtime` --
one :class:`~repro.runtime.pipeline.ResolutionPipeline` (the pool's
stage logic) driven by one
:class:`~repro.runtime.pipeline.PipelineDriver` (clock, use windows,
draining).  This class is the thin host adapter: it keeps the public
surface (pool, bus, resolution, subscriptions, plug-in services,
``receive``/``use``/``flush_uses``) and adds what only the host needs
-- application subscriptions on deliver and bounded distinct-use
accounting.

Contexts are *used* by applications a configurable window after their
arrival (Section 5.3: "the time window, i.e. period before a context
is used by applications").  Two window semantics are supported:

* **count-based** (``use_window`` arrivals) -- deterministic and the
  experiments' default;
* **time-based** (``use_delay`` simulated seconds) -- the
  "checking-sensitive period" of the Cabot middleware [16] that the
  paper cites as a natural window source; due contexts are used as the
  clock advances past ``arrival + use_delay``.

A zero window means every context is used immediately upon arrival,
which degenerates drop-bad into drop-latest behaviour (Section 5.3)
-- the window ablation benchmark exercises exactly this claim.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.context import Context, ContextState
from ..core.resolver import InconsistencyDetector
from ..core.strategy import ResolutionStrategy
from .bus import EventBus
from .clock import SimulationClock
from .service import MiddlewareService, ServiceRegistry
from .subscription import SubscriptionRegistry

__all__ = ["Middleware"]


class Middleware:
    """Hosts the pool, the resolution plug-in, and application delivery.

    Parameters
    ----------
    detector:
        Inconsistency detector (usually a
        :class:`~repro.constraints.checker.ConstraintChecker`).
    strategy:
        The resolution strategy plug-in for this run.
    use_window:
        How many later context arrivals pass before a context is used
        by applications (>= 0).  Ignored when ``use_delay`` is given.
    use_delay:
        Alternative time-based window: a context is used once the
        simulation clock passes ``arrival + use_delay`` seconds.
    clock, bus:
        Optionally injected for sharing across components.
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle; when given, the
        pipeline stages (receive/check/resolve/use/deliver/discard)
        record spans and latency histograms into it.  Attaching a
        :class:`repro.obs.TelemetryService` sets this up too.
    async_check:
        Optional :class:`repro.runtime.snapshot.AsyncCheckConfig`:
        arrivals pass through a snapshot window (buffered, deduped,
        released in timestamp order) before checking, so out-of-order
        and duplicated streams are tolerated.  ``None`` (the default)
        keeps the historical synchronous path byte-identical.
    batch_kernels:
        Let ``receive_all`` plan runs of arrivals through the
        detector's ``detect_batch`` (columnar batched detection,
        default).  Decision-neutral; ``False`` forces the per-context
        detect on the batch path too.
    """

    def __init__(
        self,
        detector: InconsistencyDetector,
        strategy: ResolutionStrategy,
        *,
        use_window: int = 4,
        use_delay: Optional[float] = None,
        clock: Optional[SimulationClock] = None,
        bus: Optional[EventBus] = None,
        telemetry=None,
        async_check=None,
        batch_kernels: bool = True,
    ) -> None:
        # Deferred import: runtime.pipeline imports middleware.bus/
        # clock/pool, so a module-level import here would cycle when
        # repro.runtime is imported first.
        from ..runtime.pipeline import PipelineDriver, ResolutionPipeline
        from ..runtime.scheduler import BoundedIdSet

        self.clock = clock or SimulationClock()
        self.bus = bus or EventBus()
        self.subscriptions = SubscriptionRegistry()
        self.services = ServiceRegistry()
        self._pipeline = ResolutionPipeline(
            detector,
            strategy,
            bus=self.bus,
            telemetry=telemetry,
            wrapper_spans=True,
            deliver_hook=self.subscriptions.dispatch,
        )
        self._driver = PipelineDriver(
            [self._pipeline],
            lambda ctx: 0,
            use_window=use_window,
            use_delay=use_delay,
            clock=self.clock,
            use_dispatch=self._dispatch_use,
            async_check=async_check,
            batch_kernels=batch_kernels,
        )
        self.pool = self._pipeline.pool
        self.resolution = self._pipeline.resolution
        self._used_ids = BoundedIdSet()
        self._used_count = 0

    # -- plug-ins -------------------------------------------------------------

    @property
    def strategy(self) -> ResolutionStrategy:
        return self.resolution.strategy

    @property
    def use_window(self) -> int:
        return self._driver.use_window

    @property
    def use_delay(self) -> Optional[float]:
        return self._driver.use_delay

    @property
    def telemetry(self):
        return self._pipeline.telemetry

    @property
    def ingress(self):
        """The async-check snapshot window (``None`` when synchronous)."""
        return self._driver.ingress

    def plug_in(self, service: MiddlewareService) -> None:
        """Attach a plug-in service (situation engine, metrics, ...)."""
        self.services.add(service)
        service.on_attach(self)

    def unplug(self, name: str) -> MiddlewareService:
        """Detach a plug-in service by name; returns it.

        The service's :meth:`~MiddlewareService.on_detach` runs so it
        can unsubscribe its bus handlers; afterwards it may be plugged
        into another manager.
        """
        service = self.services.remove(name)
        service.on_detach(self)
        return service

    def attach_telemetry(self, telemetry) -> None:
        """Adopt a telemetry bundle across the whole pipeline.

        Wires the bundle into the stage instruments
        (receive/use/deliver/discard), the resolution service
        (check/resolve stage timers) and the detector
        (incremental-check spans), so hot-path latencies land in one
        registry.
        """
        self._pipeline.attach_telemetry(telemetry)

    # -- the context addition change ------------------------------------------

    def receive(self, ctx: Context) -> None:
        """Process a context handed over by a context source."""
        self._driver.receive(ctx)

    def receive_all(self, contexts: Iterable[Context]) -> None:
        """Feed a whole stream, then flush the remaining pending uses."""
        self._driver.receive_all(contexts)

    # -- the context deletion (use) change --------------------------------------

    def use(self, ctx: Context) -> bool:
        """An application uses ``ctx`` now; returns whether delivered."""
        return self._dispatch_use(ctx, 0).delivered

    def flush_uses(self) -> None:
        """Use every context still awaiting its window (end of stream)."""
        self._driver.flush_uses()

    def _dispatch_use(self, ctx: Context, pipeline_index: int):
        if self._used_ids.add(ctx.ctx_id):
            self._used_count += 1
        return self._pipeline.use(ctx, self.clock.now())

    # -- queries ---------------------------------------------------------------

    def available_contexts(self) -> List[Context]:
        """Live contexts currently judged consistent (app-visible)."""
        lifecycle = self.strategy.lifecycle
        return [
            c
            for c in self.pool
            if lifecycle.known(c)
            and lifecycle.state_of(c) == ContextState.CONSISTENT
        ]

    def used_count(self) -> int:
        """Distinct contexts applications have used (bounded memory).

        Dedup is exact within the :class:`~repro.runtime.scheduler.
        BoundedIdSet` retention window; memory stays O(window) however
        long the stream runs.
        """
        return self._used_count
