"""Context inconsistencies and the tracked-inconsistency set Δ.

An *inconsistency* is detected when a set of contexts violates a
consistency constraint.  The paper models the set of tracked (detected
but not yet resolved) inconsistencies as Δ ⊆ P(P(C)) together with a
``count`` function Δ → (C → N) that tells, for each context, how many
tracked inconsistencies it participates in (Section 3.2, Figure 6).

:class:`TrackedInconsistencies` is the mutable Δ maintained by the
drop-bad strategy; it supports the two context-change events:

* *context addition change* -- newly detected inconsistencies are added;
* *context deletion change* -- inconsistencies involving a context that
  is being used by an application are resolved and removed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .context import Context

__all__ = ["Inconsistency", "TrackedInconsistencies"]


@dataclass(frozen=True)
class Inconsistency:
    """A violation of a consistency constraint by a set of contexts.

    Parameters
    ----------
    contexts:
        The contexts participating in the violation.  For the location
        velocity constraint of the running example these are pairs, but
        the model is generic: any non-empty finite set (Section 3.4).
    constraint:
        Name of the violated consistency constraint.
    detected_at:
        Simulation time of detection.
    """

    contexts: FrozenSet[Context]
    constraint: str = "unnamed"
    detected_at: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.contexts, frozenset):
            object.__setattr__(self, "contexts", frozenset(self.contexts))
        if not self.contexts:
            raise ValueError("an inconsistency must involve at least one context")

    def involves(self, ctx: Context) -> bool:
        """Whether ``ctx`` participates in this inconsistency."""
        return ctx in self.contexts

    @property
    def key(self) -> Tuple[str, FrozenSet[str]]:
        """A stable identity: constraint name plus involved context ids."""
        return (self.constraint, frozenset(c.ctx_id for c in self.contexts))

    def latest_context(self) -> Context:
        """The most recently produced context in this inconsistency.

        Ties on timestamp are broken by context id so the result is
        deterministic; this is what the drop-latest strategy discards.
        """
        return max(self.contexts, key=lambda c: (c.timestamp, c.ctx_id))

    def __len__(self) -> int:
        return len(self.contexts)

    def __iter__(self) -> Iterator[Context]:
        return iter(self.contexts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ids = ", ".join(sorted(c.ctx_id for c in self.contexts))
        return f"Inconsistency[{self.constraint}]({{{ids}}})"


class TrackedInconsistencies:
    """The set Δ of detected-but-unresolved context inconsistencies.

    Maintains an incrementally updated count index so that
    :meth:`count_of` and :meth:`counts` are O(1)/O(n) rather than
    rescanning Δ (the paper's Figure 6 notes the count value
    information is updated whenever Δ changes).
    """

    def __init__(self) -> None:
        self._inconsistencies: Dict[Tuple[str, FrozenSet[str]], Inconsistency] = {}
        self._counts: Counter = Counter()
        self._by_context: Dict[Context, Set[Tuple[str, FrozenSet[str]]]] = {}

    # -- mutation ------------------------------------------------------------

    def add(self, inconsistency: Inconsistency) -> bool:
        """Track a newly detected inconsistency.

        Returns ``True`` if it was new, ``False`` if an inconsistency
        with the same constraint and participant set was already
        tracked (re-detections are idempotent).
        """
        key = inconsistency.key
        if key in self._inconsistencies:
            return False
        self._inconsistencies[key] = inconsistency
        for ctx in inconsistency.contexts:
            self._counts[ctx] += 1
            self._by_context.setdefault(ctx, set()).add(key)
        return True

    def add_all(self, inconsistencies: Iterable[Inconsistency]) -> int:
        """Track several inconsistencies; returns how many were new."""
        return sum(1 for inc in inconsistencies if self.add(inc))

    def remove(self, inconsistency: Inconsistency) -> bool:
        """Stop tracking a resolved inconsistency.

        Returns ``True`` if it was tracked.
        """
        key = inconsistency.key
        stored = self._inconsistencies.pop(key, None)
        if stored is None:
            return False
        for ctx in stored.contexts:
            self._counts[ctx] -= 1
            if self._counts[ctx] <= 0:
                del self._counts[ctx]
            involved = self._by_context.get(ctx)
            if involved is not None:
                involved.discard(key)
                if not involved:
                    del self._by_context[ctx]
        return True

    def resolve_involving(self, ctx: Context) -> List[Inconsistency]:
        """Remove and return every tracked inconsistency involving ``ctx``.

        This implements the Δ update for a *context deletion change*:
        once the decision about ``ctx`` has been made, all of its
        inconsistencies are resolved and need no further tracking.
        """
        resolved = list(self.involving(ctx))
        for inc in resolved:
            self.remove(inc)
        return resolved

    def clear(self) -> None:
        """Drop all tracked inconsistencies."""
        self._inconsistencies.clear()
        self._counts.clear()
        self._by_context.clear()

    # -- queries ---------------------------------------------------------

    def involving(self, ctx: Context) -> List[Inconsistency]:
        """All tracked inconsistencies ``ctx`` participates in."""
        keys = self._by_context.get(ctx, ())
        return [self._inconsistencies[k] for k in sorted(keys, key=str)]

    def count_of(self, ctx: Context) -> int:
        """The count value of ``ctx``: tracked inconsistencies it is in."""
        return self._counts.get(ctx, 0)

    def counts(self) -> Dict[Context, int]:
        """The full count function over contexts with non-zero counts.

        This is the paper's ``count(Δ)`` (Section 3.2): e.g. for
        Δ = {{d3, d4}, {d3, d5}} it returns {d3: 2, d4: 1, d5: 1}.
        """
        return dict(self._counts)

    def max_count_contexts(self, inconsistency: Inconsistency) -> List[Context]:
        """Contexts of ``inconsistency`` carrying the largest count value.

        Counts are taken over the whole of Δ, not only over this
        inconsistency, matching the paper's use of global count values.
        The result is sorted by context id for determinism.
        """
        best = max(self.count_of(c) for c in inconsistency.contexts)
        return sorted(
            (c for c in inconsistency.contexts if self.count_of(c) == best),
            key=lambda c: c.ctx_id,
        )

    def has_largest_count(self, ctx: Context, inconsistency: Inconsistency) -> bool:
        """Whether ``ctx`` carries the largest count value in ``inconsistency``.

        "Largest" means no other involved context has a strictly larger
        count value (ties count as largest; see Section 5.1's tie-case
        discussion -- tie handling is the pluggable policy in
        :mod:`repro.core.tiebreak`).
        """
        if not inconsistency.involves(ctx):
            return False
        mine = self.count_of(ctx)
        return all(self.count_of(other) <= mine for other in inconsistency.contexts)

    def contexts(self) -> Set[Context]:
        """All contexts involved in at least one tracked inconsistency."""
        return set(self._by_context)

    def __len__(self) -> int:
        return len(self._inconsistencies)

    def __iter__(self) -> Iterator[Inconsistency]:
        return iter(list(self._inconsistencies.values()))

    def __contains__(self, inconsistency: object) -> bool:
        if not isinstance(inconsistency, Inconsistency):
            return False
        return inconsistency.key in self._inconsistencies

    def snapshot(self) -> FrozenSet[FrozenSet[Context]]:
        """Δ as a frozen set-of-sets, mirroring the paper's notation."""
        return frozenset(inc.contexts for inc in self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrackedInconsistencies({len(self)} tracked)"
