"""Resolution strategy framework.

A resolution strategy is a middleware plug-in that reacts to the two
context-change events of the paper's Figure 6:

* a **context addition change** -- a new context has been recognized
  and checked against the consistency constraints; the strategy learns
  which new inconsistencies (if any) the context caused;
* a **context deletion change** -- a buffered context is about to be
  *used* by an application, forcing a decision about its correctness.

Concrete strategies (drop-latest, drop-all, drop-random,
user-specified, drop-bad, and the OPT-R oracle) live in sibling
modules and are reachable through :func:`make_strategy`.

The strategy owns the life-cycle states of all contexts it has seen
(:class:`~repro.core.lifecycle.LifecycleTracker`) and, for deferred
strategies, the tracked inconsistency set Δ
(:class:`~repro.core.inconsistency.TrackedInconsistencies`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .context import Context, ContextState
from .inconsistency import Inconsistency, TrackedInconsistencies
from .lifecycle import LifecycleTracker

__all__ = [
    "AddOutcome",
    "UseOutcome",
    "ResolutionStrategy",
    "ImmediateStrategy",
    "register_strategy",
    "make_strategy",
    "strategy_names",
]


@dataclass(frozen=True)
class AddOutcome:
    """Effect of handling a context addition change.

    Attributes
    ----------
    admitted:
        Contexts that became ``consistent`` and immediately available
        to applications as a result of this addition.
    discarded:
        Contexts judged ``inconsistent`` now; the middleware must
        remove them from the context pool.
    buffered:
        ``True`` if the new context was held back for a deferred
        decision (drop-bad keeps relevant contexts in a buffer until
        they are used).
    """

    admitted: Tuple[Context, ...] = ()
    discarded: Tuple[Context, ...] = ()
    buffered: bool = False


@dataclass(frozen=True)
class UseOutcome:
    """Effect of handling a context deletion (use) change.

    Attributes
    ----------
    delivered:
        Whether the used context was judged consistent and handed to
        the application.
    discarded:
        Contexts judged ``inconsistent`` now (usually the used context
        itself when ``delivered`` is ``False``).
    newly_bad:
        Contexts marked ``bad`` while resolving the used context's
        inconsistencies (drop-bad only); they stay buffered and will be
        discarded when eventually used.
    """

    delivered: bool
    discarded: Tuple[Context, ...] = ()
    newly_bad: Tuple[Context, ...] = ()


class ResolutionStrategy(ABC):
    """Base class for automated context inconsistency resolution.

    Subclasses implement :meth:`on_context_added` and
    :meth:`on_context_used`.  The base class provides the life-cycle
    tracker, the tracked inconsistency set, and shared bookkeeping.
    """

    #: Registry name; subclasses must override.
    name: str = "abstract"

    #: Life-cycle states whose contexts still participate in
    #: consistency checking.  Immediate strategies check new contexts
    #: against the admitted (consistent) collection; drop-bad checks
    #: against the buffer (undecided/bad) because a used context is
    #: "removed from the checking of its involved inconsistencies"
    #: (Section 3.2).
    checking_states: FrozenSet[ContextState] = frozenset(
        {ContextState.CONSISTENT, ContextState.UNDECIDED, ContextState.BAD}
    )

    #: Whether every context living in the pool is guaranteed to
    #: participate in checking (``participates_in_checking`` is
    #: vacuously true for pooled contexts), so the checking scope of an
    #: addition is exactly the live pool contents.  Batched detection
    #: (:mod:`repro.runtime.batch`) may precompute verdicts for a run
    #: of arrivals only under this guarantee; deferred strategies like
    #: drop-bad, where a *used* context stays pooled but leaves
    #: checking, keep the default ``False`` and always take the
    #: per-context path.
    pool_equals_checking_scope: bool = False

    def __init__(self) -> None:
        self.lifecycle = LifecycleTracker()
        self.delta = TrackedInconsistencies()
        #: Total inconsistencies ever reported to this strategy.
        self.inconsistencies_seen = 0

    # -- event handlers ----------------------------------------------------

    @abstractmethod
    def on_context_added(
        self,
        ctx: Context,
        new_inconsistencies: Sequence[Inconsistency],
        *,
        relevant: bool = True,
        now: float = 0.0,
    ) -> AddOutcome:
        """Handle a context addition change.

        ``relevant`` is ``False`` when the context's type is not
        mentioned by any consistency constraint; such contexts are set
        ``consistent`` directly (Figure 7, part 1).
        """

    @abstractmethod
    def on_context_used(self, ctx: Context, *, now: float = 0.0) -> UseOutcome:
        """Handle a context deletion change (the context is being used)."""

    # -- shared helpers ------------------------------------------------------

    def participates_in_checking(self, ctx: Context) -> bool:
        """Whether ``ctx`` should still be checked against new contexts."""
        if not self.lifecycle.known(ctx):
            return True
        return self.lifecycle.state_of(ctx) in self.checking_states

    def state_of(self, ctx: Context) -> ContextState:
        """Current life-cycle state of ``ctx``."""
        return self.lifecycle.state_of(ctx)

    def reset(self) -> None:
        """Forget all per-run state (for reuse across experiment groups)."""
        self.lifecycle = LifecycleTracker()
        self.delta = TrackedInconsistencies()
        self.inconsistencies_seen = 0

    def _admit(self, ctx: Context, now: float) -> None:
        self.lifecycle.set_state(ctx, ContextState.CONSISTENT, now)

    def _discard(self, ctx: Context, now: float) -> None:
        self.lifecycle.set_state(ctx, ContextState.INCONSISTENT, now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ImmediateStrategy(ResolutionStrategy):
    """Base for strategies that resolve every inconsistency on detection.

    Drop-latest, drop-all, drop-random, the user-specified policy and
    the OPT-R oracle all share this shape: when a new context causes
    inconsistencies, victims are chosen and discarded *immediately*;
    whatever survives is admitted as consistent straight away.

    Subclasses implement :meth:`choose_victims`.
    """

    #: Immediate strategies discard victims at detection time, so the
    #: pool only ever holds consistent (or strategy-unknown) contexts
    #: -- all of which participate in checking.
    pool_equals_checking_scope = True

    @abstractmethod
    def choose_victims(
        self, ctx: Context, inconsistency: Inconsistency
    ) -> Iterable[Context]:
        """Contexts to discard to resolve ``inconsistency``.

        ``ctx`` is the newly added context that triggered detection.
        """

    def on_context_added(
        self,
        ctx: Context,
        new_inconsistencies: Sequence[Inconsistency],
        *,
        relevant: bool = True,
        now: float = 0.0,
    ) -> AddOutcome:
        self.lifecycle.register(ctx, now)
        discarded: List[Context] = []
        discarded_ids: Set[str] = set()
        for inconsistency in new_inconsistencies:
            # An inconsistency involving an already-discarded context
            # has vanished (e.g. drop-latest scenario A: once d3 is
            # gone, (d3, d4) never occurs).
            if any(c.ctx_id in discarded_ids for c in inconsistency.contexts):
                continue
            if any(
                self.lifecycle.known(c)
                and self.state_of(c) == ContextState.INCONSISTENT
                for c in inconsistency.contexts
            ):
                continue
            self.inconsistencies_seen += 1
            for victim in self.choose_victims(ctx, inconsistency):
                if victim.ctx_id in discarded_ids:
                    continue
                self.lifecycle.register(victim, now)
                self._discard(victim, now)
                discarded.append(victim)
                discarded_ids.add(victim.ctx_id)
        admitted: Tuple[Context, ...] = ()
        if ctx.ctx_id not in discarded_ids:
            self._admit(ctx, now)
            admitted = (ctx,)
        return AddOutcome(admitted=admitted, discarded=tuple(discarded))

    def on_context_used(self, ctx: Context, *, now: float = 0.0) -> UseOutcome:
        """Immediate strategies decided at addition time; just report."""
        if not self.lifecycle.known(ctx):
            # Context bypassed the strategy (e.g. injected directly);
            # treat as consistent.
            self.lifecycle.register(ctx, now)
            self._admit(ctx, now)
            return UseOutcome(delivered=True)
        delivered = self.state_of(ctx) == ContextState.CONSISTENT
        return UseOutcome(delivered=delivered)


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., ResolutionStrategy]] = {}


def register_strategy(
    name: str,
) -> Callable[[Callable[..., ResolutionStrategy]], Callable[..., ResolutionStrategy]]:
    """Class decorator registering a strategy factory under ``name``."""

    def decorator(
        factory: Callable[..., ResolutionStrategy]
    ) -> Callable[..., ResolutionStrategy]:
        if name in _REGISTRY:
            raise ValueError(f"strategy {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def make_strategy(name: str, **kwargs: object) -> ResolutionStrategy:
    """Instantiate a registered strategy by name.

    Recognized names (after importing :mod:`repro.core`):
    ``drop-latest``, ``drop-all``, ``drop-random``, ``user-specified``,
    ``drop-bad``, ``opt-r``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown strategy {name!r}; known: {known}")
    return factory(**kwargs)


def strategy_names() -> List[str]:
    """All registered strategy names, sorted."""
    return sorted(_REGISTRY)
