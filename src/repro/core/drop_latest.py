"""The drop-latest resolution strategy (D-LAT, Section 2.2).

Following Chomicki et al. [4], the latest context leading to an
inconsistency is discarded immediately.  The strategy assumes the
collection of existing contexts is consistent and admits a new context
only if it causes no inconsistency.

The paper's Scenario B shows its failure mode: a context (d3) that
slips in without conflicting with its predecessors causes the *next*,
actually correct context (d4) to be blamed and discarded.
"""

from __future__ import annotations

from typing import Iterable

from .context import Context
from .inconsistency import Inconsistency
from .strategy import ImmediateStrategy, register_strategy

__all__ = ["DropLatestStrategy"]


@register_strategy("drop-latest")
class DropLatestStrategy(ImmediateStrategy):
    """Discard the latest context of each detected inconsistency."""

    name = "drop-latest"

    def choose_victims(
        self, ctx: Context, inconsistency: Inconsistency
    ) -> Iterable[Context]:
        """The single most recently produced involved context.

        In the common streaming case this is the newly added context
        itself, but when a constraint relates older buffered contexts
        the timestamp decides (deterministically; ties broken by id).
        """
        return (inconsistency.latest_context(),)
