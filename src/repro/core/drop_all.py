"""The drop-all resolution strategy (D-ALL, Section 2.3).

Following Bu et al. [1], *all* contexts leading to an inconsistency are
discarded, on the over-cautious assumption that every involved context
is incorrect.  The paper's experiments show this is the worst
performer: correct contexts are lost wholesale and applications miss
key context-aware actions.
"""

from __future__ import annotations

from typing import Iterable

from .context import Context
from .inconsistency import Inconsistency
from .strategy import ImmediateStrategy, register_strategy

__all__ = ["DropAllStrategy"]


@register_strategy("drop-all")
class DropAllStrategy(ImmediateStrategy):
    """Discard every context involved in a detected inconsistency.

    Note that this revokes contexts that were already admitted as
    consistent (Scenario A discards d2 alongside d3), which is why the
    life-cycle machine allows the ``consistent -> inconsistent`` edge
    for baselines.
    """

    name = "drop-all"

    def choose_victims(
        self, ctx: Context, inconsistency: Inconsistency
    ) -> Iterable[Context]:
        """All involved contexts, in deterministic id order."""
        return sorted(inconsistency.contexts, key=lambda c: c.ctx_id)
