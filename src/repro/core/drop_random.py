"""The drop-random resolution strategy (Section 2.3, discussed).

Following the random-action variant of Chomicki et al. [4], one
involved context is discarded uniformly at random per inconsistency.
The paper notes its results are unreliable ("depending on random
choices"); it is included for completeness and for the experiment
harness's extended comparisons.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from .context import Context
from .inconsistency import Inconsistency
from .strategy import ImmediateStrategy, register_strategy

__all__ = ["DropRandomStrategy"]


@register_strategy("drop-random")
class DropRandomStrategy(ImmediateStrategy):
    """Discard one uniformly random context per inconsistency.

    Parameters
    ----------
    rng:
        Random generator; pass a seeded ``random.Random`` for
        reproducible runs.  Defaults to a fixed seed so unit tests are
        deterministic.
    """

    name = "drop-random"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        super().__init__()
        self._rng = rng or random.Random(0)
        self._initial_rng_state = self._rng.getstate()

    def reset(self) -> None:
        """Also rewind the random generator, so a reused instance
        replays streams identically to a fresh one."""
        super().reset()
        self._rng.setstate(self._initial_rng_state)

    def choose_victims(
        self, ctx: Context, inconsistency: Inconsistency
    ) -> Iterable[Context]:
        ordered = sorted(inconsistency.contexts, key=lambda c: c.ctx_id)
        return (self._rng.choice(ordered),)
