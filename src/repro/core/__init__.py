"""Core model: contexts, inconsistencies, and resolution strategies.

Importing this package registers all built-in strategies with the
strategy registry, so ``make_strategy("drop-bad")`` works after
``import repro.core``.
"""

from .context import INFINITE_LIFESPAN, Context, ContextFactory, ContextState
from .drop_all import DropAllStrategy
from .drop_bad import DropBadStrategy
from .drop_latest import DropLatestStrategy
from .drop_random import DropRandomStrategy
from .impact_aware import (
    ImpactAwareDropBad,
    ImpactModel,
    situation_relevance_model,
)
from .inconsistency import Inconsistency, TrackedInconsistencies
from .lifecycle import ContextRecord, LifecycleError, LifecycleTracker
from .oracle import OptimalStrategy
from .resolver import InconsistencyDetector, ResolutionLog, ResolutionService
from .strategy import (
    AddOutcome,
    ImmediateStrategy,
    ResolutionStrategy,
    UseOutcome,
    make_strategy,
    register_strategy,
    strategy_names,
)
from .tiebreak import (
    LeastGlobalCount,
    MostGlobalCount,
    NewestFirst,
    OldestFirst,
    RandomChoice,
    TieBreakPolicy,
    make_tiebreak,
)
from .user_specified import UserSpecifiedStrategy, freshness_policy, source_trust_policy

__all__ = [
    "INFINITE_LIFESPAN",
    "Context",
    "ContextFactory",
    "ContextState",
    "Inconsistency",
    "TrackedInconsistencies",
    "ContextRecord",
    "LifecycleError",
    "LifecycleTracker",
    "AddOutcome",
    "UseOutcome",
    "ResolutionStrategy",
    "ImmediateStrategy",
    "make_strategy",
    "register_strategy",
    "strategy_names",
    "DropLatestStrategy",
    "DropAllStrategy",
    "DropRandomStrategy",
    "UserSpecifiedStrategy",
    "DropBadStrategy",
    "ImpactAwareDropBad",
    "ImpactModel",
    "situation_relevance_model",
    "OptimalStrategy",
    "InconsistencyDetector",
    "ResolutionLog",
    "ResolutionService",
    "TieBreakPolicy",
    "OldestFirst",
    "NewestFirst",
    "RandomChoice",
    "LeastGlobalCount",
    "MostGlobalCount",
    "make_tiebreak",
    "freshness_policy",
    "source_trust_policy",
]
