"""Impact-oriented drop-bad resolution (the paper's future work).

Section 5.1 and the conclusion propose enhancing drop-bad "with the
effort of estimating the impact of a certain resolution strategy on
applications and adjusting its resolution action accordingly" (see
also the authors' preliminary impact-oriented resolution work [20]).

:class:`ImpactAwareDropBad` implements that enhancement on top of the
base strategy.  An :class:`ImpactModel` scores how much an application
would lose if a given context were discarded; the strategy consults it
at exactly the two points where plain drop-bad acts on insufficient
evidence:

* **tie discards** -- when the used context merely *ties* at the
  maximal count value, it is discarded only if its impact does not
  exceed ``tie_impact_budget`` (cheap contexts are still cleaned
  eagerly; expensive ones get the benefit of the doubt);
* **culprit choice** -- among tied maximal-count culprits, the one
  with the *least* impact is marked bad.

With a zero-impact model the strategy degenerates to plain drop-bad
(a unit test asserts this).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .context import Context
from .drop_bad import DropBadStrategy
from .inconsistency import Inconsistency, TrackedInconsistencies
from .strategy import register_strategy
from .tiebreak import OldestFirst, TieBreakPolicy

__all__ = [
    "ImpactModel",
    "situation_relevance_model",
    "ImpactAwareDropBad",
]

#: Maps a context to the estimated application impact of losing it
#: (>= 0; larger = more valuable to applications).
ImpactModel = Callable[[Context], float]


def situation_relevance_model(
    relevant: Callable[[Context], bool], weight: float = 1.0
) -> ImpactModel:
    """An impact model from a situation-relevance predicate.

    Contexts that can trigger application situations score ``weight``;
    others score 0.  Applications typically build ``relevant`` from
    their situation definitions, e.g. "badge contexts naming the
    office or meeting room".
    """

    def impact(ctx: Context) -> float:
        return weight if relevant(ctx) else 0.0

    return impact


class _ImpactTieBreak(TieBreakPolicy):
    """Choose the tied culprit whose loss hurts applications least."""

    name = "impact"

    def __init__(self, impact: ImpactModel, fallback: TieBreakPolicy) -> None:
        self._impact = impact
        self._fallback = fallback

    def choose(
        self, candidates: Sequence[Context], delta: TrackedInconsistencies
    ) -> Context:
        self._require(candidates)
        scores = {c.ctx_id: self._impact(c) for c in candidates}
        best = min(scores.values())
        cheapest = [c for c in candidates if scores[c.ctx_id] == best]
        if len(cheapest) == 1:
            return cheapest[0]
        return self._fallback.choose(cheapest, delta)


@register_strategy("drop-bad-impact")
class ImpactAwareDropBad(DropBadStrategy):
    """Drop-bad with impact-adjusted tie handling.

    Parameters
    ----------
    impact:
        The impact model; defaults to the zero model (plain drop-bad).
    tie_impact_budget:
        A tied used context is discarded only if its impact is <= this
        budget.  The default of 0.0 means "discard on tie only when
        the context is worthless to applications".
    tiebreak:
        Fallback ordering among equally cheap culprits.
    """

    name = "drop-bad-impact"

    def __init__(
        self,
        impact: Optional[ImpactModel] = None,
        tie_impact_budget: float = 0.0,
        tiebreak: Optional[TieBreakPolicy] = None,
    ) -> None:
        self._impact = impact or (lambda ctx: 0.0)
        super().__init__(
            tiebreak=_ImpactTieBreak(self._impact, tiebreak or OldestFirst()),
            discard_on_tie=True,
        )
        self._tie_impact_budget = tie_impact_budget

    def _should_discard(
        self, ctx: Context, involved: Sequence[Inconsistency]
    ) -> bool:
        """Figure 7's test, with impact-gated tie discards."""
        for inconsistency in involved:
            maxima = self.delta.max_count_contexts(inconsistency)
            if ctx not in maxima:
                continue
            if len(maxima) == 1:
                # Strict maximum: the count evidence alone convicts.
                return True
            if self._impact(ctx) <= self._tie_impact_budget:
                return True
        return False
