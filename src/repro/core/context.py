"""Context model for pervasive computing applications.

A *context* is a piece of information that captures a characteristic of
the computing environment at some instant: a tracked location, an RFID
read, a badge sighting, a temperature sample.  Contexts are produced by
distributed context sources, collected by the middleware, and consumed
by context-aware applications.

The model follows the ICDCS 2008 paper:

* every context carries a timestamp and an *availability period* after
  which it expires (Section 3.2: "the context is still available until
  it expires according to its own available period");
* whether a context is *corrupted* (incorrect, should be identified as
  inconsistent) or *expected* (correct) is ground truth known only to
  the workload generator, the optimal OPT-R strategy and the metrics
  layer -- never to a practical resolution strategy (Section 3.4).

Contexts are immutable value objects.  All mutable per-context state
(the four-state life cycle) lives in :mod:`repro.core.lifecycle`.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

__all__ = [
    "Context",
    "ContextState",
    "ContextFactory",
    "INFINITE_LIFESPAN",
]

#: Lifespan value meaning "never expires".
INFINITE_LIFESPAN = math.inf


class ContextState(enum.Enum):
    """The four states of a context's life cycle (paper Figure 8).

    * ``UNDECIDED`` -- initial state; the context has been recognized
      by the middleware but no decision about its consistency exists.
    * ``CONSISTENT`` -- the context was judged correct and is available
      to applications.
    * ``BAD`` -- the context has been judged incorrect while resolving
      an inconsistency for *another* context, but has not itself been
      used by an application yet; it will be discarded when used.
    * ``INCONSISTENT`` -- the context was judged incorrect and has been
      discarded.
    """

    UNDECIDED = "undecided"
    CONSISTENT = "consistent"
    BAD = "bad"
    INCONSISTENT = "inconsistent"

    def is_terminal(self) -> bool:
        """Whether no further transition can leave this state."""
        return self in (ContextState.CONSISTENT, ContextState.INCONSISTENT)


@dataclass(frozen=True)
class Context:
    """An immutable context datum.

    Parameters
    ----------
    ctx_id:
        Unique identifier, assigned by the producing source (or by a
        :class:`ContextFactory`).
    ctx_type:
        The context category, e.g. ``"location"``, ``"rfid_read"``,
        ``"badge_sighting"``.  Consistency constraints quantify over
        context types.
    subject:
        The entity the context describes (a person, an RFID tag, ...).
    value:
        The context payload.  For location contexts this is an ``(x,
        y)`` pair (or a mapping with richer fields); for RFID reads a
        mapping with reader/zone information.
    timestamp:
        Simulation time at which the context was produced.
    lifespan:
        Availability period; the context expires at ``timestamp +
        lifespan``.  Defaults to :data:`INFINITE_LIFESPAN`.
    source:
        Name of the producing context source, for diagnostics.
    corrupted:
        Ground-truth flag: ``True`` if the workload generator injected
        an error into this context.  Practical resolution strategies
        MUST NOT read this field; it exists for OPT-R and for metrics.
    attributes:
        Optional extra key/value payload (reader id, RSSI, floor, ...).
    """

    ctx_id: str
    ctx_type: str
    subject: str
    value: Any
    timestamp: float
    lifespan: float = INFINITE_LIFESPAN
    source: str = "unknown"
    corrupted: bool = False
    attributes: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.lifespan < 0:
            raise ValueError(
                f"context {self.ctx_id!r} has negative lifespan {self.lifespan}"
            )
        if isinstance(self.attributes, Mapping):
            # Accept a mapping for convenience; store a hashable tuple.
            object.__setattr__(
                self, "attributes", tuple(sorted(self.attributes.items()))
            )

    def __hash__(self) -> int:
        # Hash by identity (ids are unique within a run) so contexts
        # with unhashable payloads -- e.g. dict values -- still work in
        # the set-heavy inconsistency machinery.  Consistent with
        # field-wise equality: equal contexts share their ctx_id.
        return hash(self.ctx_id)

    # -- derived properties -------------------------------------------------

    @property
    def expiry(self) -> float:
        """Simulation time at which this context expires."""
        return self.timestamp + self.lifespan

    def is_expired(self, now: float) -> bool:
        """Whether the context's availability period has passed."""
        return now >= self.expiry

    def attr(self, key: str, default: Any = None) -> Any:
        """Look up an entry of :attr:`attributes` by key."""
        for k, v in self.attributes:
            if k == key:
                return v
        return default

    # -- convenience for location-valued contexts ---------------------------

    @property
    def position(self) -> Tuple[float, float]:
        """The ``(x, y)`` position for location-valued contexts.

        Raises
        ------
        TypeError
            If the value is not a 2-sequence of numbers.
        """
        value = self.value
        if (
            isinstance(value, (tuple, list))
            and len(value) == 2
            and all(isinstance(c, (int, float)) for c in value)
        ):
            return (float(value[0]), float(value[1]))
        raise TypeError(
            f"context {self.ctx_id!r} of type {self.ctx_type!r} does not "
            f"carry an (x, y) position: {value!r}"
        )

    def distance_to(self, other: "Context") -> float:
        """Euclidean distance between two location-valued contexts."""
        ax, ay = self.position
        bx, by = other.position
        return math.hypot(ax - bx, ay - by)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = "!" if self.corrupted else ""
        return (
            f"Context({self.ctx_id}{flag}, {self.ctx_type}, {self.subject}, "
            f"{self.value!r}, t={self.timestamp:g})"
        )


class ContextFactory:
    """Produces :class:`Context` objects with sequential unique ids.

    The factory is the single place a workload generator needs to touch
    to mint contexts; it guarantees id uniqueness within a run, which
    the context pool relies on.
    """

    def __init__(self, prefix: str = "ctx") -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    def make(
        self,
        ctx_type: str,
        subject: str,
        value: Any,
        timestamp: float,
        *,
        lifespan: float = INFINITE_LIFESPAN,
        source: str = "unknown",
        corrupted: bool = False,
        attributes: Optional[Mapping[str, Any]] = None,
        ctx_id: Optional[str] = None,
    ) -> Context:
        """Create a new context with a fresh id (unless one is given)."""
        if ctx_id is None:
            ctx_id = f"{self._prefix}-{next(self._counter)}"
        return Context(
            ctx_id=ctx_id,
            ctx_type=ctx_type,
            subject=subject,
            value=value,
            timestamp=timestamp,
            lifespan=lifespan,
            source=source,
            corrupted=corrupted,
            attributes=tuple(sorted((attributes or {}).items())),
        )
