"""The resolution service: detector + strategy glued to a context pool.

:class:`ResolutionService` is the middleware plug-in module of the
paper's experimental setup ("an inconsistency resolution module was
implemented as a plug-in service ... invoked whenever Cabot received
new contexts").  It wires together:

* an :class:`InconsistencyDetector` (implemented by the constraint
  checker in :mod:`repro.constraints`, or by anything satisfying the
  protocol), and
* a :class:`~repro.core.strategy.ResolutionStrategy`.

The service is deliberately ignorant of how contexts are produced or
consumed; the middleware manager drives it with the two context-change
events and applies the outcomes to its pool.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .context import Context
from .inconsistency import Inconsistency
from .strategy import AddOutcome, ResolutionStrategy, UseOutcome

__all__ = ["InconsistencyDetector", "ResolutionService", "ResolutionLog"]


class InconsistencyDetector(ABC):
    """Detects inconsistencies a new context causes with existing ones."""

    @abstractmethod
    def is_relevant(self, ctx: Context) -> bool:
        """Whether any consistency constraint mentions ``ctx``'s type."""

    @abstractmethod
    def detect(
        self, ctx: Context, existing: Sequence[Context], now: float
    ) -> List[Inconsistency]:
        """Inconsistencies caused by adding ``ctx`` to ``existing``.

        ``existing`` is the set of contexts that still participate in
        checking (per the active strategy's checking scope).  Only
        inconsistencies that involve ``ctx`` should be returned: the
        check is incremental, triggered by the addition change.
        """

    @abstractmethod
    def forget(self, ctx: Context) -> None:
        """Drop any cached evaluation state for ``ctx``.

        Called when a context is discarded or leaves checking scope so
        incremental detectors do not leak.
        """


@dataclass
class ResolutionLog:
    """Audit trail of the resolution decisions of one run.

    The experiment metrics (survival rate, removal precision, rule
    satisfaction) are computed from this log together with the
    contexts' ground-truth flags.
    """

    added: List[Context] = field(default_factory=list)
    discarded: List[Context] = field(default_factory=list)
    delivered: List[Context] = field(default_factory=list)
    detected: List[Inconsistency] = field(default_factory=list)
    marked_bad: List[Context] = field(default_factory=list)

    def discarded_corrupted(self) -> int:
        """Discarded contexts that were indeed corrupted (true positives)."""
        return sum(1 for c in self.discarded if c.corrupted)

    def discarded_expected(self) -> int:
        """Discarded contexts that were actually correct (false positives)."""
        return sum(1 for c in self.discarded if not c.corrupted)

    def removal_precision(self) -> float:
        """Fraction of discarded contexts that were corrupted.

        The Section 5.2 case study reports this as "removal precision"
        (84.7% for drop-bad on Landmarc).  Returns 1.0 when nothing was
        discarded.
        """
        if not self.discarded:
            return 1.0
        return self.discarded_corrupted() / len(self.discarded)

    def survival_rate(self) -> float:
        """Fraction of expected contexts that were NOT discarded.

        The Section 5.2 case study reports this as "location context
        survival rate" (96.5% for drop-bad on Landmarc).
        """
        expected_total = sum(1 for c in self.added if not c.corrupted)
        if expected_total == 0:
            return 1.0
        return 1.0 - self.discarded_expected() / expected_total


class ResolutionService:
    """Hosts one strategy and one detector over a live context pool.

    Parameters
    ----------
    detector:
        The inconsistency detector (typically a
        :class:`repro.constraints.checker.ConstraintChecker`).
    strategy:
        The resolution strategy plug-in.
    """

    def __init__(
        self, detector: InconsistencyDetector, strategy: ResolutionStrategy
    ) -> None:
        self.detector = detector
        self.strategy = strategy
        self.log = ResolutionLog()
        #: Telemetry bundle (repro.obs); hosts swap in a live one via
        #: ``Middleware.attach_telemetry`` / ``ShardPipeline``.
        from ..obs.telemetry import NULL_TELEMETRY

        self.telemetry = NULL_TELEMETRY

    @property
    def telemetry(self):
        return self._telemetry

    @telemetry.setter
    def telemetry(self, telemetry) -> None:
        # Rebind the reusable stage timers whenever the bundle is
        # swapped -- the per-addition hot path re-enters these instead
        # of paying a stage() call each time.
        self._telemetry = telemetry
        self._stage_check = telemetry.stage_timer("check")
        self._stage_resolve = telemetry.stage_timer("resolve")

    @property
    def stage_check(self):
        """The reusable ``check`` stage timer (context manager).

        The batched detection planner (:mod:`repro.runtime.batch`) times
        its ``detect_batch`` calls through this, so checking latency
        lands in the same ``check`` stage histogram whether verdicts
        are computed per context or per batch.
        """
        return self._stage_check

    def handle_addition(
        self,
        ctx: Context,
        pool_contexts: Sequence[Context],
        now: float,
        detected: Optional[List[Inconsistency]] = None,
    ) -> AddOutcome:
        """Process a context addition change.

        ``pool_contexts`` are the live contexts currently in the pool
        (excluding ``ctx``); the service filters them down to the
        strategy's checking scope before detection.  ``detected``, when
        not ``None``, is a precomputed detection verdict for exactly
        this addition (the batched detection path of
        :mod:`repro.runtime.batch` plans these through
        ``detect_batch``): the detector is not consulted, but logging,
        strategy dispatch and outcome handling are unchanged, so the
        decision trail is byte-identical to an inline detect.
        """
        telemetry = self._telemetry
        self.log.added.append(ctx)
        relevant = self.detector.is_relevant(ctx)
        new_inconsistencies: List[Inconsistency] = []
        if relevant:
            if detected is not None:
                new_inconsistencies = detected
            else:
                with self._stage_check:
                    scope = [
                        c
                        for c in pool_contexts
                        if not c.is_expired(now)
                        and self.strategy.participates_in_checking(c)
                    ]
                    new_inconsistencies = self.detector.detect(ctx, scope, now)
            self.log.detected.extend(new_inconsistencies)
        with self._stage_resolve:
            outcome = self.strategy.on_context_added(
                ctx, new_inconsistencies, relevant=relevant, now=now
            )
        for victim in outcome.discarded:
            self.detector.forget(victim)
        self.log.discarded.extend(outcome.discarded)
        if outcome.discarded:
            telemetry.count(
                "strategy_discards_total",
                len(outcome.discarded),
                labels={"strategy": self.strategy.name},
                help="Contexts discarded, by deciding strategy",
            )
        return outcome

    def handle_use(self, ctx: Context, now: float) -> UseOutcome:
        """Process a context deletion change (application uses ``ctx``)."""
        telemetry = self._telemetry
        with self._stage_resolve:
            outcome = self.strategy.on_context_used(ctx, now=now)
        for victim in outcome.discarded:
            self.detector.forget(victim)
        self.log.discarded.extend(outcome.discarded)
        self.log.marked_bad.extend(outcome.newly_bad)
        if outcome.discarded:
            telemetry.count(
                "strategy_discards_total",
                len(outcome.discarded),
                labels={"strategy": self.strategy.name},
                help="Contexts discarded, by deciding strategy",
            )
        if outcome.delivered:
            self.log.delivered.append(ctx)
        return outcome

    def reset(self) -> None:
        """Clear strategy state and the audit log for a fresh run."""
        self.strategy.reset()
        self.log = ResolutionLog()
