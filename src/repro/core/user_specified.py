"""The user-specified resolution strategy (Section 2.3, discussed).

Following Ranganathan et al. [13] and Insuk et al. [7], inconsistency
resolution follows user preferences or policies: the user ranks
contexts (by source trust, by type priority, by subject, ...) and the
lowest-ranked involved context is discarded.

The paper points out that such policies make resolution results
"unreliable (depending on ... user policies)" and that human
participation is too slow for dynamic environments; automated
preference functions stand in for the human here.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from .context import Context
from .inconsistency import Inconsistency
from .strategy import ImmediateStrategy, register_strategy

__all__ = ["UserSpecifiedStrategy", "source_trust_policy", "freshness_policy"]

#: A preference function: larger value = the user prefers to KEEP the
#: context; the involved context with the smallest preference is
#: discarded.
PreferenceFunction = Callable[[Context], float]


def source_trust_policy(
    trust: Mapping[str, float], default: float = 0.5
) -> PreferenceFunction:
    """Prefer contexts from trusted sources.

    ``trust`` maps source names to trust scores in [0, 1].
    """

    def preference(ctx: Context) -> float:
        return trust.get(ctx.source, default)

    return preference


def freshness_policy() -> PreferenceFunction:
    """Prefer fresher contexts (the Bu et al. [1] 'latest is most
    reliable' assumption expressed as a user policy)."""

    def preference(ctx: Context) -> float:
        return ctx.timestamp

    return preference


@register_strategy("user-specified")
class UserSpecifiedStrategy(ImmediateStrategy):
    """Discard the least-preferred context of each inconsistency.

    Parameters
    ----------
    preference:
        A :data:`PreferenceFunction`.  Defaults to
        :func:`freshness_policy` (keep fresher contexts), a policy
        users commonly specified in the constraint study [19].
    """

    name = "user-specified"

    def __init__(self, preference: Optional[PreferenceFunction] = None) -> None:
        super().__init__()
        self._preference = preference or freshness_policy()

    def choose_victims(
        self, ctx: Context, inconsistency: Inconsistency
    ) -> Iterable[Context]:
        victim = min(
            inconsistency.contexts,
            key=lambda c: (self._preference(c), c.ctx_id),
        )
        return (victim,)
