"""The artificial optimal resolution strategy (OPT-R, Section 4.1).

OPT-R has a specially designed oracle that discards *precisely* each
incorrect (corrupted) context, so it serves as the theoretical upper
bound of good strategies.  Its metric values define the 100% baseline
that the other strategies' context-use and situation-activation rates
are normalized against.

The oracle reads the ground-truth ``corrupted`` flag that the workload
generator stamps on each context -- the one field practical strategies
are forbidden to touch.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .context import Context, ContextState
from .inconsistency import Inconsistency
from .strategy import AddOutcome, ImmediateStrategy, register_strategy

__all__ = ["OptimalStrategy"]


@register_strategy("opt-r")
class OptimalStrategy(ImmediateStrategy):
    """Discard exactly the corrupted contexts, as soon as they arrive.

    Because the oracle acts on ground truth rather than on detected
    inconsistencies, corrupted contexts are removed on arrival whether
    or not they have yet violated a constraint; expected contexts are
    never removed.  Under Heuristic Rule 1 (no false inconsistency
    reports) this resolves every inconsistency.
    """

    name = "opt-r"

    def on_context_added(
        self,
        ctx: Context,
        new_inconsistencies: Sequence[Inconsistency],
        *,
        relevant: bool = True,
        now: float = 0.0,
    ) -> AddOutcome:
        self.lifecycle.register(ctx, now)
        self.inconsistencies_seen += len(new_inconsistencies)
        if ctx.corrupted:
            self._discard(ctx, now)
            return AddOutcome(discarded=(ctx,))
        self._admit(ctx, now)
        return AddOutcome(admitted=(ctx,))

    def choose_victims(
        self, ctx: Context, inconsistency: Inconsistency
    ) -> Iterable[Context]:
        """Corrupted members of the inconsistency.

        Unused by :meth:`on_context_added` above (the oracle acts on
        arrival), but provided so the class still honours the
        :class:`ImmediateStrategy` contract if invoked generically.
        """
        return tuple(
            c
            for c in sorted(inconsistency.contexts, key=lambda c: c.ctx_id)
            if c.corrupted
        )
