"""The four-state context life cycle (paper Figure 8).

Each context managed by the resolution service is in exactly one of the
states ``undecided``, ``consistent``, ``bad`` or ``inconsistent``.  The
legal transitions are::

    undecided ──(irrelevant to any constraint, or judged correct
                 when used)──────────────────────────▶ consistent
    undecided ──(largest count value when used)──────▶ inconsistent
    undecided ──(largest count value when some associated
                 inconsistency is resolved early)────▶ bad
    bad ───────(used)────────────────────────────────▶ inconsistent

``consistent`` and ``inconsistent`` are terminal.  Any other transition
is a programming error and raises :class:`LifecycleError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .context import Context, ContextState

__all__ = ["LifecycleError", "ContextRecord", "LifecycleTracker"]

#: The legal state transitions.  The first four edges are Figure 8
#: (the drop-bad life cycle).  The ``CONSISTENT -> INCONSISTENT`` edge
#: is *not* part of Figure 8 and is never taken by drop-bad (a property
#: test asserts this); it exists because the baseline drop-all strategy
#: revokes contexts that were already admitted as consistent
#: (Section 2.3: discarding d2 after it had been accepted).
_LEGAL_TRANSITIONS: FrozenSet[Tuple[ContextState, ContextState]] = frozenset(
    {
        (ContextState.UNDECIDED, ContextState.CONSISTENT),
        (ContextState.UNDECIDED, ContextState.BAD),
        (ContextState.UNDECIDED, ContextState.INCONSISTENT),
        (ContextState.BAD, ContextState.INCONSISTENT),
        (ContextState.CONSISTENT, ContextState.INCONSISTENT),
    }
)


class LifecycleError(RuntimeError):
    """Raised on an illegal context state transition."""


@dataclass
class ContextRecord:
    """Mutable per-context state kept by the resolution service.

    :class:`~repro.core.context.Context` objects are immutable; the
    record carries the life-cycle state plus bookkeeping about when the
    context entered the buffer and when it was decided.
    """

    context: Context
    state: ContextState = ContextState.UNDECIDED
    buffered_at: Optional[float] = None
    decided_at: Optional[float] = None
    history: List[Tuple[ContextState, Optional[float]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.history.append((self.state, self.buffered_at))

    def transition(self, new_state: ContextState, at: Optional[float] = None) -> None:
        """Move to ``new_state``, validating against Figure 8.

        Raises
        ------
        LifecycleError
            If the transition is not one of the legal edges.
        """
        if new_state == self.state:
            return
        if (self.state, new_state) not in _LEGAL_TRANSITIONS:
            raise LifecycleError(
                f"illegal transition {self.state.value} -> {new_state.value} "
                f"for context {self.context.ctx_id!r}"
            )
        self.state = new_state
        self.history.append((new_state, at))
        if new_state.is_terminal():
            self.decided_at = at

    @property
    def is_decided(self) -> bool:
        return self.state.is_terminal()

    @property
    def is_available(self) -> bool:
        """Whether applications may read this context."""
        return self.state == ContextState.CONSISTENT

    @property
    def is_discarded(self) -> bool:
        return self.state == ContextState.INCONSISTENT


class LifecycleTracker:
    """Registry of :class:`ContextRecord` objects for a run.

    The tracker is the single source of truth for "what state is this
    context in"; strategies and the resolver manipulate states only
    through it, so every transition is validated and recorded.
    """

    def __init__(self) -> None:
        self._records: Dict[str, ContextRecord] = {}

    def register(self, ctx: Context, at: Optional[float] = None) -> ContextRecord:
        """Create (or return the existing) record for ``ctx``."""
        record = self._records.get(ctx.ctx_id)
        if record is None:
            record = ContextRecord(context=ctx, buffered_at=at)
            self._records[ctx.ctx_id] = record
        return record

    def record_of(self, ctx: Context) -> ContextRecord:
        """The record for ``ctx``; raises ``KeyError`` if unregistered."""
        return self._records[ctx.ctx_id]

    def state_of(self, ctx: Context) -> ContextState:
        """Current life-cycle state of ``ctx``."""
        return self._records[ctx.ctx_id].state

    def known(self, ctx: Context) -> bool:
        return ctx.ctx_id in self._records

    def set_state(
        self, ctx: Context, state: ContextState, at: Optional[float] = None
    ) -> ContextRecord:
        """Transition ``ctx`` to ``state`` (validated)."""
        record = self.record_of(ctx)
        record.transition(state, at)
        return record

    def in_state(self, state: ContextState) -> List[ContextRecord]:
        """All records currently in ``state`` (sorted by context id)."""
        return sorted(
            (r for r in self._records.values() if r.state == state),
            key=lambda r: r.context.ctx_id,
        )

    def all_records(self) -> List[ContextRecord]:
        return sorted(self._records.values(), key=lambda r: r.context.ctx_id)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, ctx: object) -> bool:
        return isinstance(ctx, Context) and ctx.ctx_id in self._records
