"""The drop-bad resolution strategy (D-BAD, Section 3 -- the paper's
primary contribution).

Unlike the immediate strategies, drop-bad tolerates a detected
inconsistency until one of its contexts is actually *used* by an
application.  All unresolved inconsistencies are tracked in the set Δ,
and every context carries a *count value*: the number of tracked
inconsistencies it participates in.  The guiding observation is that

    a context that participates more frequently in inconsistencies is
    likelier to be incorrect.

Resolution process (Figure 7):

Part 1 -- when a new context ``d`` is recognized:
    if ``d`` is irrelevant to every consistency constraint, it is set
    ``consistent`` and made available immediately; otherwise it is
    moved to a buffer and any inconsistencies it causes join Δ.

Part 2 -- when a buffered context ``d`` is used:
    * if ``d`` is ``bad``, or there is a tracked inconsistency in
      which ``d`` carries the largest count value, then ``d`` is set
      ``inconsistent`` and discarded;
    * otherwise ``d`` is set ``consistent`` and delivered, and for
      every inconsistency ``d`` participated in, the involved context
      with the largest count value is marked ``bad`` (it will be
      discarded when *it* is used -- deferring the discard lets the
      middleware gather more count evidence first, Section 3.3).
    Either way the inconsistencies involving ``d`` are resolved and
    removed from Δ.

Reliability (Section 3.4): under Heuristic Rules 1 + 2 (Theorem 1) or
1 + 2' (Theorem 2), every context this strategy discards is indeed
corrupted.  Property-based tests in
``tests/core/test_theorems.py`` machine-check both theorems.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set

from .context import Context, ContextState
from .inconsistency import Inconsistency
from .strategy import AddOutcome, ResolutionStrategy, UseOutcome, register_strategy
from .tiebreak import OldestFirst, TieBreakPolicy

__all__ = ["DropBadStrategy"]


@register_strategy("drop-bad")
class DropBadStrategy(ResolutionStrategy):
    """Deferred, count-value-based inconsistency resolution.

    Parameters
    ----------
    tiebreak:
        Policy used to pick the context to mark ``bad`` when several
        involved contexts tie at the maximal count value (Section 5.1's
        open tie case).  Defaults to :class:`OldestFirst`.
    discard_on_tie:
        When the *used* context ties (rather than strictly leads) at
        the maximal count value of an inconsistency, Figure 7 treats it
        as "having the largest count value" and discards it; set this
        to ``False`` for the conservative variant that only discards a
        strict maximum (compared in the tie-break ablation).
    """

    name = "drop-bad"

    #: Used contexts are removed from checking (Section 3.2); only the
    #: buffer participates.
    checking_states = frozenset({ContextState.UNDECIDED, ContextState.BAD})

    def __init__(
        self,
        tiebreak: Optional[TieBreakPolicy] = None,
        discard_on_tie: bool = True,
    ) -> None:
        super().__init__()
        self._tiebreak = tiebreak or OldestFirst()
        self._discard_on_tie = discard_on_tie

    # -- part 1: context addition change -------------------------------------

    def on_context_added(
        self,
        ctx: Context,
        new_inconsistencies: Sequence[Inconsistency],
        *,
        relevant: bool = True,
        now: float = 0.0,
    ) -> AddOutcome:
        self.lifecycle.register(ctx, now)
        if not relevant:
            # Irrelevant to any consistency constraint: no inconsistency
            # can ever involve it, so make it available immediately.
            self._admit(ctx, now)
            return AddOutcome(admitted=(ctx,))
        added = self.delta.add_all(new_inconsistencies)
        self.inconsistencies_seen += added
        return AddOutcome(buffered=True)

    # -- part 2: context deletion (use) change --------------------------------

    def on_context_used(self, ctx: Context, *, now: float = 0.0) -> UseOutcome:
        if not self.lifecycle.known(ctx):
            # A context the strategy never saw (e.g. injected directly
            # into the pool): treat like an irrelevant admission.
            self.lifecycle.register(ctx, now)
            self._admit(ctx, now)
            return UseOutcome(delivered=True)

        state = self.state_of(ctx)
        if state == ContextState.CONSISTENT:
            # Already decided (irrelevant context, or re-used).
            return UseOutcome(delivered=True)
        if state == ContextState.INCONSISTENT:
            return UseOutcome(delivered=False)

        if state == ContextState.BAD:
            # Deferred discard finally happens.
            self._discard(ctx, now)
            self.delta.resolve_involving(ctx)
            return UseOutcome(delivered=False, discarded=(ctx,))

        # state == UNDECIDED
        involved = self.delta.involving(ctx)
        if self._should_discard(ctx, involved):
            self._discard(ctx, now)
            self.delta.resolve_involving(ctx)
            return UseOutcome(delivered=False, discarded=(ctx,))

        # ctx is judged consistent; blame the largest-count context of
        # each of its inconsistencies instead.
        self._admit(ctx, now)
        newly_bad = self._mark_culprits_bad(ctx, involved, now)
        self.delta.resolve_involving(ctx)
        return UseOutcome(delivered=True, newly_bad=tuple(newly_bad))

    # -- internals ------------------------------------------------------------

    def _should_discard(
        self, ctx: Context, involved: Sequence[Inconsistency]
    ) -> bool:
        """Figure 7's discard test for an undecided used context."""
        for inconsistency in involved:
            maxima = self.delta.max_count_contexts(inconsistency)
            if ctx not in maxima:
                continue
            if len(maxima) == 1 or self._discard_on_tie:
                return True
        return False

    def _mark_culprits_bad(
        self, ctx: Context, involved: Sequence[Inconsistency], now: float
    ) -> List[Context]:
        """Mark the largest-count context of each inconsistency bad.

        ``ctx`` has just been judged consistent, so it is not a strict
        maximum in any of its inconsistencies; the chosen culprit is
        always a different context.
        """
        newly_bad: List[Context] = []
        for inconsistency in involved:
            all_maxima = self.delta.max_count_contexts(inconsistency)
            if ctx in all_maxima:
                # Only reachable with discard_on_tie=False: ctx tied at
                # the maximum and survived.  The tied peers are no more
                # suspicious than ctx itself, so nobody is blamed.
                continue
            maxima = all_maxima
            culprit = (
                maxima[0]
                if len(maxima) == 1
                else self._tiebreak.choose(maxima, self.delta)
            )
            if self.state_of(culprit) == ContextState.UNDECIDED:
                self.lifecycle.set_state(culprit, ContextState.BAD, now)
                newly_bad.append(culprit)
        return newly_bad

    def reset(self) -> None:
        super().reset()
