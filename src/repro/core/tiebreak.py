"""Tie-breaking policies for the drop-bad strategy.

Section 5.1 of the paper identifies the *tie case* -- several contexts
carrying the same maximal count value inside one inconsistency -- as
the main room for improvement of drop-bad, and proposes examining
"discarding which particular context among them would cause less
impact on context-aware applications" as future work.

This module makes the choice pluggable.  A policy receives the tied
candidates (all carrying the maximal count value) plus the tracked
inconsistency set, and returns the single context to treat as the
"largest" one.  The experiment in
``benchmarks/test_bench_ablation_tiebreak.py`` compares the policies.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Type

from .context import Context
from .inconsistency import TrackedInconsistencies

__all__ = [
    "TieBreakPolicy",
    "OldestFirst",
    "NewestFirst",
    "RandomChoice",
    "LeastGlobalCount",
    "MostGlobalCount",
    "make_tiebreak",
]


class TieBreakPolicy(ABC):
    """Chooses among contexts tied at the maximal count value."""

    name: str = "abstract"

    @abstractmethod
    def choose(
        self, candidates: Sequence[Context], delta: TrackedInconsistencies
    ) -> Context:
        """Pick the context to mark bad / discard among ``candidates``.

        ``candidates`` is non-empty and all members carry the same
        (maximal) count value within the inconsistency being resolved.
        """

    def _require(self, candidates: Sequence[Context]) -> None:
        if not candidates:
            raise ValueError("tie-break invoked with no candidates")


class OldestFirst(TieBreakPolicy):
    """Prefer discarding the oldest tied context.

    Rationale: old contexts are closer to expiry and their loss impacts
    applications for the shortest remaining time.
    """

    name = "oldest"

    def choose(
        self, candidates: Sequence[Context], delta: TrackedInconsistencies
    ) -> Context:
        self._require(candidates)
        return min(candidates, key=lambda c: (c.timestamp, c.ctx_id))


class NewestFirst(TieBreakPolicy):
    """Prefer discarding the newest tied context.

    This mirrors the drop-latest intuition that the freshest context is
    the one that "caused" the inconsistency.
    """

    name = "newest"

    def choose(
        self, candidates: Sequence[Context], delta: TrackedInconsistencies
    ) -> Context:
        self._require(candidates)
        return max(candidates, key=lambda c: (c.timestamp, c.ctx_id))


class RandomChoice(TieBreakPolicy):
    """Uniform random choice, with an explicit seeded generator."""

    name = "random"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random(0)

    def choose(
        self, candidates: Sequence[Context], delta: TrackedInconsistencies
    ) -> Context:
        self._require(candidates)
        ordered = sorted(candidates, key=lambda c: c.ctx_id)
        return self._rng.choice(ordered)


class LeastGlobalCount(TieBreakPolicy):
    """Prefer the candidate with the *smallest* count over all of Δ.

    Within the inconsistency the counts are tied by construction, but a
    candidate may participate in fewer inconsistencies globally than
    another; keeping the globally busier context alive lets later
    resolutions gather more evidence about it.
    """

    name = "least-global"

    def choose(
        self, candidates: Sequence[Context], delta: TrackedInconsistencies
    ) -> Context:
        self._require(candidates)
        return min(candidates, key=lambda c: (delta.count_of(c), c.ctx_id))


class MostGlobalCount(TieBreakPolicy):
    """Prefer the candidate most entangled with the rest of Δ.

    Discarding it resolves the most tracked inconsistencies at once --
    the "as few discarded contexts as possible" objective of
    Section 5.1 taken greedily.
    """

    name = "most-global"

    def choose(
        self, candidates: Sequence[Context], delta: TrackedInconsistencies
    ) -> Context:
        self._require(candidates)
        return max(candidates, key=lambda c: (delta.count_of(c), c.ctx_id))


_POLICIES: Dict[str, Type[TieBreakPolicy]] = {
    OldestFirst.name: OldestFirst,
    NewestFirst.name: NewestFirst,
    RandomChoice.name: RandomChoice,
    LeastGlobalCount.name: LeastGlobalCount,
    MostGlobalCount.name: MostGlobalCount,
}


def make_tiebreak(name: str, rng: Optional[random.Random] = None) -> TieBreakPolicy:
    """Instantiate a tie-break policy by name.

    ``rng`` is used only by the stochastic policies.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown tie-break policy {name!r}; known: {known}")
    if cls is RandomChoice:
        return RandomChoice(rng)
    return cls()
