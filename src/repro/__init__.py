"""repro: heuristics-based context inconsistency resolution.

A full reproduction of *Heuristics-Based Strategies for Resolving
Context Inconsistencies in Pervasive Computing Applications* (Xu,
Cheung, Chan, Ye -- ICDCS 2008): the drop-bad resolution strategy and
its baselines, a Cabot-like context middleware with first-order
consistency-constraint checking, simulated sensing (location tracking,
Landmarc, RFID, Active Badge), the two evaluated applications, and the
complete experiment harness.

Quickstart::

    from repro import (
        CallForwardingApp, ComparisonConfig, run_comparison,
        format_comparison,
    )

    app = CallForwardingApp()
    result = run_comparison(app, ComparisonConfig(groups_per_point=3))
    print(format_comparison(result, "Figure 9"))
"""

from .analysis import InstrumentedDropBad, RuleReport
from .apps import (
    CallForwardingApp,
    ForwardingController,
    RFIDAnomaliesApp,
    RingerController,
    SmartPhoneApp,
)
from .constraints import (
    Constraint,
    ConstraintChecker,
    Evaluator,
    FunctionRegistry,
    parse_constraint,
    parse_formula,
    standard_registry,
)
from .core import (
    Context,
    ContextFactory,
    ContextState,
    DropAllStrategy,
    DropBadStrategy,
    DropLatestStrategy,
    DropRandomStrategy,
    Inconsistency,
    OptimalStrategy,
    ResolutionService,
    ResolutionStrategy,
    TrackedInconsistencies,
    UserSpecifiedStrategy,
    make_strategy,
    strategy_names,
)
from .experiments import (
    CaseStudyConfig,
    CaseStudyResult,
    ComparisonConfig,
    ComparisonResult,
    count_values,
    format_case_study,
    format_comparison,
    format_scenarios,
    format_tiebreak_ablation,
    format_window_ablation,
    replay_strategy,
    run_case_study,
    run_comparison,
    run_group,
    run_tiebreak_ablation,
    run_window_ablation,
)
from .middleware import EventBus, Middleware, SimulationClock
from .situations import Situation, SituationEngine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "InstrumentedDropBad",
    "RuleReport",
    "CallForwardingApp",
    "ForwardingController",
    "RFIDAnomaliesApp",
    "RingerController",
    "SmartPhoneApp",
    "Constraint",
    "ConstraintChecker",
    "Evaluator",
    "FunctionRegistry",
    "parse_constraint",
    "parse_formula",
    "standard_registry",
    "Context",
    "ContextFactory",
    "ContextState",
    "DropAllStrategy",
    "DropBadStrategy",
    "DropLatestStrategy",
    "DropRandomStrategy",
    "Inconsistency",
    "OptimalStrategy",
    "ResolutionService",
    "ResolutionStrategy",
    "TrackedInconsistencies",
    "UserSpecifiedStrategy",
    "make_strategy",
    "strategy_names",
    "CaseStudyConfig",
    "CaseStudyResult",
    "ComparisonConfig",
    "ComparisonResult",
    "count_values",
    "format_case_study",
    "format_comparison",
    "format_scenarios",
    "format_tiebreak_ablation",
    "format_window_ablation",
    "replay_strategy",
    "run_case_study",
    "run_comparison",
    "run_group",
    "run_tiebreak_ablation",
    "run_window_ablation",
    "EventBus",
    "Middleware",
    "SimulationClock",
    "Situation",
    "SituationEngine",
]
