"""Scope analysis: partition constraints into independent shards.

A consistency constraint can only relate contexts of the types it
quantifies over (:meth:`Constraint.relevant_types`).  Two constraints
therefore interact only when their quantified type sets overlap --
discarding a context of a type neither quantifies cannot change either
constraint's violations.  Union-find over the "shares a type" relation
yields *scope groups*: sets of constraints (with their types) that are
mutually independent of every other group.

Each group must live on one shard, but distinct groups can be resolved
on distinct shards without changing any resolution outcome.  Groups
are packed onto the requested number of shards with a deterministic
longest-processing-time heuristic, weighting a group by its constraint
and type counts (a proxy for its checking cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..constraints.ast import Constraint

__all__ = ["UnionFind", "ScopeGroup", "ScopePartition", "partition_constraints"]


class UnionFind:
    """Disjoint-set forest over hashable items (path halving + rank)."""

    def __init__(self) -> None:
        self._parent: Dict[object, object] = {}
        self._rank: Dict[object, int] = {}

    def add(self, item: object) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: object) -> object:
        self.add(item)
        parent = self._parent
        while parent[item] is not item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, a: object, b: object) -> object:
        """Merge the sets of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra is rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def groups(self) -> List[List[object]]:
        """All disjoint sets, each sorted, sorted by their first item."""
        by_root: Dict[object, List[object]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        out = [sorted(members, key=repr) for members in by_root.values()]
        out.sort(key=lambda members: repr(members[0]))
        return out


@dataclass(frozen=True)
class ScopeGroup:
    """One independent scope: constraints coupled through shared types."""

    constraints: Tuple[Constraint, ...]
    ctx_types: FrozenSet[str]

    @property
    def weight(self) -> int:
        """Estimated relative checking cost of the group."""
        return len(self.constraints) + len(self.ctx_types)


@dataclass(frozen=True)
class ScopePartition:
    """Assignment of scope groups (hence types) to shards.

    ``shard_constraints[i]`` is the constraint set of shard ``i``;
    ``type_to_shard`` maps every quantified context type to its owning
    shard.  Types no constraint quantifies are absent -- the router
    spreads those by stable hashing.
    """

    shards: int
    groups: Tuple[ScopeGroup, ...]
    shard_constraints: Tuple[Tuple[Constraint, ...], ...]
    type_to_shard: Dict[str, int] = field(default_factory=dict)

    @property
    def independent_scopes(self) -> int:
        return len(self.groups)

    def shard_of_type(self, ctx_type: str) -> int:
        """Owning shard of ``ctx_type``, or -1 when unconstrained."""
        return self.type_to_shard.get(ctx_type, -1)


def _scope_groups(constraints: Sequence[Constraint]) -> List[ScopeGroup]:
    """Union-find the constraints into independent scope groups."""
    uf = UnionFind()
    for constraint in constraints:
        uf.add(constraint.name)
        for ctx_type in constraint.relevant_types():
            # Types are first-class union-find members so that two
            # constraints never mentioned together but sharing a type
            # still coalesce.  Prefix type keys to avoid colliding with
            # constraint names.
            uf.union(constraint.name, ("type", ctx_type))

    by_name = {c.name: c for c in constraints}
    groups: List[ScopeGroup] = []
    for members in uf.groups():
        names = sorted(m for m in members if isinstance(m, str))
        types = frozenset(
            m[1] for m in members if isinstance(m, tuple) and m[0] == "type"
        )
        if not names:
            continue
        groups.append(
            ScopeGroup(
                constraints=tuple(by_name[n] for n in names),
                ctx_types=types,
            )
        )
    # Deterministic order: heaviest first, ties by first constraint name.
    groups.sort(key=lambda g: (-g.weight, g.constraints[0].name))
    return groups


def partition_constraints(
    constraints: Iterable[Constraint], shards: int
) -> ScopePartition:
    """Partition ``constraints`` into at most ``shards`` shards.

    Deterministic: the same constraint set and shard count always
    produce the same assignment (required so the router in a worker
    process agrees with the parent's).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    constraint_list = list(constraints)
    names = [c.name for c in constraint_list]
    if len(set(names)) != len(names):
        raise ValueError("constraint names must be unique for sharding")
    groups = _scope_groups(constraint_list)

    # LPT packing: heaviest group onto the currently lightest shard.
    loads = [0] * shards
    shard_lists: List[List[Constraint]] = [[] for _ in range(shards)]
    type_to_shard: Dict[str, int] = {}
    for group in groups:
        target = min(range(shards), key=lambda i: (loads[i], i))
        loads[target] += group.weight
        shard_lists[target].extend(group.constraints)
        for ctx_type in group.ctx_types:
            type_to_shard[ctx_type] = target

    return ScopePartition(
        shards=shards,
        groups=tuple(groups),
        shard_constraints=tuple(tuple(lst) for lst in shard_lists),
        type_to_shard=type_to_shard,
    )
