"""Push-style engine sessions: incremental arrivals, deferred close.

:meth:`ShardedEngine.run` consumes a whole stream and returns; a
serving front-door (:mod:`repro.serve`) has no whole stream -- contexts
trickle in from live connections and the engine must absorb them as
they arrive.  :class:`EngineStream` is that entrypoint: an open inline
session over the engine's shard pipelines that accepts batches through
the amortized runtime arrival path (:func:`repro.runtime.batch.
receive_batch`), keeps the use scheduler live between submissions, and
flushes the remaining pending uses only when the session closes.

Decision equivalence: submitting a stream through any sequence of
``submit`` calls followed by ``close`` produces byte-identical
decisions to ``ShardedEngine.run`` over the concatenated stream in
inline mode -- chunking is invisible to the runtime (the golden
equivalence suite pins this for the batch path, and
``tests/engine/test_stream.py`` pins it for open sessions).

The session is single-submitter by design: one caller (the serve
layer's engine pump task) feeds it sequentially.  It is not
thread-safe and never spawns workers -- scaling beyond one core is the
process mode's job, behind this same facade.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.context import Context
from ..ledger import LedgerRecorder, LedgerWriter
from ..middleware.bus import (
    ContextDelivered,
    ContextDiscarded,
    ContextDuplicate,
    ContextExpired,
    ContextStale,
    Event,
)
from ..obs.telemetry import Telemetry
from ..runtime.batch import receive_batch
from .shard import ShardPipeline, StreamDriver

__all__ = ["EngineStream"]


class EngineStream:
    """An open inline resolution session over a :class:`ShardedEngine`.

    Built by :meth:`ShardedEngine.open_stream`; the engine supplies the
    shard specs, the router and the event bus.  Terminal decision
    events (delivered / discarded / expired) are tallied as they are
    published, so a serving layer can account for every admitted
    context without keeping its own event log.
    """

    def __init__(self, engine, *, telemetry: Optional[Telemetry] = None) -> None:
        self._engine = engine
        bundle = (
            telemetry
            if telemetry is not None
            else engine.telemetry
            if engine.telemetry is not None
            else Telemetry.disabled()
        )
        self.telemetry = bundle
        pipelines: List[ShardPipeline] = []
        for spec in engine.shard_specs():
            pipeline = spec.build(telemetry=bundle)
            pipeline.bus = engine.bus
            pipelines.append(pipeline)
        self.pipelines = pipelines
        self.driver = StreamDriver(
            pipelines,
            engine.router.route,
            use_window=engine.config.use_window,
            use_delay=engine.config.use_delay,
            async_check=engine.config.async_check,
            batch_kernels=engine.config.batch_kernels,
        )
        self.bus = engine.bus
        self.submitted = 0
        self.delivered = 0
        self.discarded = 0
        self.expired = 0
        #: Async-check ingress refusals (0 when the mode is off).
        self.stale = 0
        self.duplicates = 0
        self.closed = False
        self.bus.subscribe(ContextDelivered, self._on_delivered)
        self.bus.subscribe(ContextDiscarded, self._on_discarded)
        self.bus.subscribe(ContextExpired, self._on_expired)
        self.bus.subscribe(ContextStale, self._on_stale)
        self.bus.subscribe(ContextDuplicate, self._on_duplicate)
        # Open sessions record their ledger *live* -- entries hit the
        # writer as decisions happen, not at close, so a crashed serve
        # process still leaves a verifiable prefix on disk.
        self.ledger_writer: Optional[LedgerWriter] = None
        self._ledger_recorder: Optional[LedgerRecorder] = None
        if engine.config.ledger_path:
            bundle.registry.gauge(
                "repro_ruleset_info",
                help="Resolution ruleset identity (value is always 1)",
                labels={"ruleset_hash": engine.ruleset_hash},
            ).set(1.0)
            self.ledger_writer = LedgerWriter(
                engine.config.ledger_path,
                engine.ruleset_document(),
                meta={
                    "host": "engine",
                    "mode": "stream",
                    "shards": engine.config.shards,
                    "kernels": engine.config.kernels,
                    "batch_kernels": engine.config.batch_kernels,
                },
                fsync=engine.config.ledger_fsync,
                telemetry=bundle,
            )
            self._ledger_recorder = LedgerRecorder(
                self.ledger_writer.append, shard_of=engine.router.shard_for
            )
            self._ledger_recorder.attach(self.bus)

    # -- bus tallies --------------------------------------------------------

    def _on_delivered(self, event: Event) -> None:
        self.delivered += 1

    def _on_discarded(self, event: Event) -> None:
        self.discarded += 1

    def _on_expired(self, event: Event) -> None:
        self.expired += 1

    def _on_stale(self, event: Event) -> None:
        self.stale += 1

    def _on_duplicate(self, event: Event) -> None:
        self.duplicates += 1

    # -- submission ---------------------------------------------------------

    def submit(self, contexts: Sequence[Context]) -> int:
        """Resolve a batch of arrivals; returns how many were processed.

        Each context is checked against its shard's pool, resolved, and
        scheduled for use; uses whose window elapsed are drained before
        the call returns.  Contexts still inside their use window stay
        pending across calls -- that is the point of an open session.
        """
        if self.closed:
            raise RuntimeError("cannot submit to a closed engine stream")
        processed = receive_batch(self.driver, contexts)
        self.submitted += processed
        return processed

    def pending_uses(self) -> int:
        """Admitted contexts still awaiting their use window."""
        return len(self.driver.scheduler)

    def pool_size(self) -> int:
        """Total contexts currently held across all shard pools."""
        return sum(len(pipeline.pool) for pipeline in self.pipelines)

    # -- close --------------------------------------------------------------

    def close(self) -> None:
        """End the stream: use every context still awaiting its window.

        Mirrors the end-of-stream flush of :meth:`ShardedEngine.run`;
        after this, every admitted context has reached a terminal
        decision (delivered, discarded, or expired).  Idempotent.
        """
        if self.closed:
            return
        self.driver.flush_uses()
        for pipeline in self.pipelines:
            pipeline.flush_stats()
        # Drop the bus subscriptions: the engine's bus outlives the
        # session, and a later session's events must not inflate this
        # one's tallies.
        self.bus.unsubscribe(ContextDelivered, self._on_delivered)
        self.bus.unsubscribe(ContextDiscarded, self._on_discarded)
        self.bus.unsubscribe(ContextExpired, self._on_expired)
        self.bus.unsubscribe(ContextStale, self._on_stale)
        self.bus.unsubscribe(ContextDuplicate, self._on_duplicate)
        if self._ledger_recorder is not None:
            self._ledger_recorder.detach()
            self._ledger_recorder = None
        if self.ledger_writer is not None:
            self.ledger_writer.close()
        self.closed = True

    def decided(self) -> int:
        """Terminal outcomes seen so far.

        Delivered + discarded + expired, plus the async-check ingress
        refusals (stale / duplicate) -- a refused context is accounted
        for, it just never reached a pool.
        """
        return (
            self.delivered
            + self.discarded
            + self.expired
            + self.stale
            + self.duplicates
        )
