"""Context routing: which shard handles an arriving context.

Contexts of a constrained type go to the shard owning that type's
scope group -- mandatory for correctness, since all contexts a
constraint can relate must share a pool.  Contexts of unconstrained
types can go anywhere (no constraint will ever involve them; every
shard admits them directly), so the router spreads them *subject-keyed*
with a stable hash: all of one subject's unconstrained contexts land on
one shard, keeping per-subject arrival order intact within the shard.

Hashing uses :func:`zlib.crc32`, not :func:`hash`, because Python's
string hashing is salted per process and the parent and its worker
processes must agree on every routing decision.
"""

from __future__ import annotations

import zlib
from typing import Dict

from ..core.context import Context
from .scope import ScopePartition

__all__ = ["ContextRouter"]


def _stable_hash(text: str) -> int:
    return zlib.crc32(text.encode("utf-8"))


class ContextRouter:
    """Deterministic context -> shard assignment for a partition."""

    def __init__(self, partition: ScopePartition) -> None:
        self.partition = partition
        self.shards = partition.shards
        #: Routing decisions per shard, for load diagnostics.
        self.routed: Dict[int, int] = {i: 0 for i in range(self.shards)}

    def shard_for(self, ctx: Context) -> int:
        """Pure routing decision for ``ctx`` (no load accounting).

        Observers (the decision ledger's shard attribution) use this to
        ask "where does this context live?" without inflating the
        ``routed`` load counters that :meth:`route` maintains.
        """
        shard = self.partition.shard_of_type(ctx.ctx_type)
        if shard < 0:
            # Unconstrained type: subject-keyed stable spreading.
            key = ctx.subject if ctx.subject else ctx.ctx_type
            shard = _stable_hash(key) % self.shards
        return shard

    def route(self, ctx: Context) -> int:
        """The shard that must (or may) process ``ctx``."""
        shard = self.shard_for(ctx)
        self.routed[shard] += 1
        return shard

    def load_skew(self) -> float:
        """max/mean routed contexts across shards (1.0 = perfectly even)."""
        counts = list(self.routed.values())
        total = sum(counts)
        if total == 0:
            return 1.0
        mean = total / len(counts)
        return max(counts) / mean if mean else 1.0
