"""Engine configuration.

One frozen dataclass collects every tunable of the sharded engine so
the CLI, the benchmarks and the tests construct engines the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..runtime.snapshot import AsyncCheckConfig

__all__ = ["EngineConfig", "FaultConfig"]

#: Execution modes.
#:
#: * ``inline`` -- every shard runs in-process behind a single global
#:   control loop that preserves the single-pool middleware's use
#:   schedule exactly (deterministic mode; bit-for-bit decision
#:   equivalence for both window kinds).
#: * ``local`` -- shards still run in-process but each consumes its
#:   own sub-stream with shard-local windows (the decomposition the
#:   process mode uses, without the processes; useful for testing it).
#: * ``process`` -- shards run in worker processes
#:   (``concurrent.futures.ProcessPoolExecutor``) fed through bounded
#:   queues in batches; windows are shard-local.  With time-based
#:   windows and timestamp-ordered streams this is decision-equivalent
#:   to ``inline`` (see docs/engine.md).
MODES = ("inline", "local", "process")


@dataclass(frozen=True)
class FaultConfig:
    """Fault-tolerance tunables of the process execution mode.

    The supervisor (:mod:`repro.engine.supervisor`) retries a failed
    shard worker with exponential backoff, replays its unacknowledged
    batches from the last checkpoint, and -- once the retry budget is
    spent -- either degrades the shard to in-parent ``local`` execution
    or raises :class:`~repro.engine.supervisor.EngineWorkerError`.
    Decisions are identical whichever path executes (see
    docs/engine.md, "Failure handling").

    Parameters
    ----------
    max_retries:
        Worker respawns allowed per shard after the initial attempt.
    batch_timeout_s:
        Seconds without batch progress (acks) before an alive worker
        with outstanding work is declared hung and terminated.
    backoff_base_s:
        First retry delay; doubles per attempt up to ``backoff_max_s``.
    backoff_max_s:
        Upper bound on the exponential backoff delay.
    backoff_jitter:
        Fractional random jitter applied to each delay (``0.1`` means
        +-10%), decorrelating simultaneous respawns.
    heartbeat_interval_s:
        Period of the worker's heartbeat thread.  A worker whose
        heartbeats stop while it has outstanding work is treated as
        stalled without waiting out the full batch timeout.  ``0``
        disables heartbeats.
    checkpoint_every:
        A worker ships a state checkpoint with every Nth batch ack;
        replay after a failure restarts from the last checkpoint, so
        this bounds both the replay-log memory and the recomputation a
        crash can cost.  ``0`` disables checkpointing (a failed shard
        replays its whole sub-stream).
    degrade_on_exhaustion:
        When a shard exceeds ``max_retries``: ``True`` continues the
        shard in-parent (``local`` execution, same decisions),
        ``False`` raises ``EngineWorkerError``.
    """

    max_retries: int = 2
    batch_timeout_s: float = 30.0
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.1
    heartbeat_interval_s: float = 0.5
    checkpoint_every: int = 8
    degrade_on_exhaustion: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.batch_timeout_s <= 0:
            raise ValueError(
                f"batch_timeout_s must be > 0, got {self.batch_timeout_s}"
            )
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError(
                "backoff_max_s must be >= backoff_base_s, got "
                f"{self.backoff_max_s} < {self.backoff_base_s}"
            )
        if not 0 <= self.backoff_jitter <= 1:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.heartbeat_interval_s < 0:
            raise ValueError(
                "heartbeat_interval_s must be >= 0, got "
                f"{self.heartbeat_interval_s}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )

    def backoff_delay(self, attempt: int) -> float:
        """Deterministic (pre-jitter) delay before retry ``attempt``."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_max_s, self.backoff_base_s * 2 ** (attempt - 1)
        )


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of a :class:`~repro.engine.facade.ShardedEngine` run.

    Parameters
    ----------
    shards:
        Number of shards to spread the constraint scopes over (>= 1).
        Independent scopes are packed onto shards balancing estimated
        load; asking for more shards than there are independent scopes
        leaves the surplus shards empty.
    mode:
        ``inline`` (default, deterministic), ``local`` or ``process``.
    use_window:
        Count-based use window (arrivals before a context is used),
        exactly as in :class:`~repro.middleware.manager.Middleware`.
        Ignored when ``use_delay`` is set.
    use_delay:
        Time-based use window (simulated seconds).
    batch_size:
        Contexts per batch handed to a shard worker (process mode).
    max_queue_batches:
        Bound on each shard's in-flight (dispatched, unacknowledged)
        batches.  When a shard falls this far behind the router stalls
        -- backpressure that keeps memory proportional to
        ``shards * max_queue_batches * batch_size`` however long the
        stream is.
    fault:
        Fault-tolerance tunables of process mode (supervision,
        retry/backoff, checkpointed replay); see :class:`FaultConfig`.
    kernels:
        Compile constraint bodies into specialized closures and prune
        candidate enumeration through equality-join indexes (default).
        ``False`` forces the interpreted reference path -- the
        ``repro engine run --no-kernels`` escape hatch.
    batch_kernels:
        Columnar batched detection (default): the runtime batch path
        plans whole runs of arrivals through
        ``ConstraintChecker.detect_batch`` -- vectorized batch
        kernels, fused same-shape constraints, shared candidate-index
        probes.  Decision-neutral by construction (the equivalence and
        golden suites pin it); ``False`` is the ``repro engine run
        --no-batch-kernels`` escape hatch and the A/B lever of the
        ``detection_batch`` benchmark column.
    runtime_batch:
        Apply arrivals through the amortized runtime batch path
        (:func:`repro.runtime.batch.receive_batch`, default).
        ``False`` falls back to per-context ``driver.receive`` -- the
        ``repro engine run --no-runtime-batch`` escape hatch and the
        A/B lever of the ``runtime_batch`` benchmark column.
    ledger_path:
        When set, the run writes an immutable decision ledger (see
        :mod:`repro.ledger`) to this JSONL path: every arrival,
        detection and verdict hash-chained under the run's
        ``ruleset_hash``.  Works in every mode -- local/process runs
        merge per-shard segments into the same deterministic global
        order as the merged events.
    ledger_fsync:
        Force-fsync every ledger flush (durability over throughput).
    async_check:
        Optional :class:`~repro.runtime.snapshot.AsyncCheckConfig`
        enabling the snapshot-window asynchronous checking mode:
        arrivals are buffered, deduplicated and released to the
        checker in timestamp order behind a watermark, tolerating
        late / reordered / duplicated streams.  ``None`` (default) is
        the historical synchronous path.  Decision-*relevant* (a
        perturbed stream resolves differently with it on), so it is
        recorded in the ledger ruleset, not in ``meta``.  In inline
        mode one global window orders the whole stream; in local /
        process modes each shard windows its own sub-stream.
    """

    shards: int = 4
    mode: str = "inline"
    use_window: int = 4
    use_delay: Optional[float] = None
    batch_size: int = 64
    max_queue_batches: int = 8
    fault: FaultConfig = field(default_factory=FaultConfig)
    kernels: bool = True
    batch_kernels: bool = True
    runtime_batch: bool = True
    ledger_path: Optional[str] = None
    ledger_fsync: bool = False
    async_check: Optional[AsyncCheckConfig] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.mode not in MODES:
            raise ValueError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.use_window < 0:
            raise ValueError(f"use_window must be >= 0, got {self.use_window}")
        if self.use_delay is not None and self.use_delay < 0:
            raise ValueError(f"use_delay must be >= 0, got {self.use_delay}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_queue_batches < 1:
            raise ValueError(
                f"max_queue_batches must be >= 1, got {self.max_queue_batches}"
            )
        if not isinstance(self.fault, FaultConfig):
            raise ValueError(
                f"fault must be a FaultConfig, got {type(self.fault).__name__}"
            )
        if self.async_check is not None and not isinstance(
            self.async_check, AsyncCheckConfig
        ):
            raise ValueError(
                "async_check must be an AsyncCheckConfig or None, got "
                f"{type(self.async_check).__name__}"
            )

    def with_shards(self, shards: int) -> "EngineConfig":
        """This configuration with a different shard count."""
        return replace(self, shards=shards)
