"""Engine configuration.

One frozen dataclass collects every tunable of the sharded engine so
the CLI, the benchmarks and the tests construct engines the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["EngineConfig"]

#: Execution modes.
#:
#: * ``inline`` -- every shard runs in-process behind a single global
#:   control loop that preserves the single-pool middleware's use
#:   schedule exactly (deterministic mode; bit-for-bit decision
#:   equivalence for both window kinds).
#: * ``local`` -- shards still run in-process but each consumes its
#:   own sub-stream with shard-local windows (the decomposition the
#:   process mode uses, without the processes; useful for testing it).
#: * ``process`` -- shards run in worker processes
#:   (``concurrent.futures.ProcessPoolExecutor``) fed through bounded
#:   queues in batches; windows are shard-local.  With time-based
#:   windows and timestamp-ordered streams this is decision-equivalent
#:   to ``inline`` (see docs/engine.md).
MODES = ("inline", "local", "process")


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of a :class:`~repro.engine.facade.ShardedEngine` run.

    Parameters
    ----------
    shards:
        Number of shards to spread the constraint scopes over (>= 1).
        Independent scopes are packed onto shards balancing estimated
        load; asking for more shards than there are independent scopes
        leaves the surplus shards empty.
    mode:
        ``inline`` (default, deterministic), ``local`` or ``process``.
    use_window:
        Count-based use window (arrivals before a context is used),
        exactly as in :class:`~repro.middleware.manager.Middleware`.
        Ignored when ``use_delay`` is set.
    use_delay:
        Time-based use window (simulated seconds).
    batch_size:
        Contexts per batch handed to a shard worker (process mode).
    max_queue_batches:
        Bound of each shard's input queue, in batches.  When a queue
        is full the router blocks -- backpressure that keeps memory
        proportional to ``shards * max_queue_batches * batch_size``
        however long the stream is.
    """

    shards: int = 4
    mode: str = "inline"
    use_window: int = 4
    use_delay: Optional[float] = None
    batch_size: int = 64
    max_queue_batches: int = 8

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.mode not in MODES:
            raise ValueError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.use_window < 0:
            raise ValueError(f"use_window must be >= 0, got {self.use_window}")
        if self.use_delay is not None and self.use_delay < 0:
            raise ValueError(f"use_delay must be >= 0, got {self.use_delay}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_queue_batches < 1:
            raise ValueError(
                f"max_queue_batches must be >= 1, got {self.max_queue_batches}"
            )

    def with_shards(self, shards: int) -> "EngineConfig":
        """This configuration with a different shard count."""
        return replace(self, shards=shards)
