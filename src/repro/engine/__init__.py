"""Sharded streaming resolution engine.

The single-pool :class:`~repro.middleware.manager.Middleware` caps
every run at one pool, one checker and one core.  This package scales
the same resolution semantics out: a *scope analyzer* partitions the
consistency constraints into independent shards (constraints are
coupled only through the context types they quantify over), a *router*
assigns arriving contexts to shards, and each shard runs its own
context pool + incremental checker + strategy instance.  Because the
constraint scopes are disjoint, shard-merged resolution decisions are
identical to the single-pool middleware's -- a property-based test
(``tests/engine/test_equivalence.py``) machine-checks this on random
streams.

See ``docs/engine.md`` for the architecture and the shard-safety
argument.
"""

from .config import EngineConfig, FaultConfig
from .facade import ShardedEngine
from .merge import EngineResult, merge_events
from .metrics import EngineMetrics, ShardStats, write_bench_json
from .router import ContextRouter
from .scope import ScopePartition, partition_constraints
from .shard import (
    ShardCheckpoint,
    ShardExecutionState,
    ShardPipeline,
    ShardRunResult,
    ShardSpec,
    run_shard_substream,
)
from .stream import EngineStream
from .supervisor import EngineWorkerError, ShardSupervisor
from .workload import run_scalability_bench, scalability_workload

__all__ = [
    "EngineConfig",
    "FaultConfig",
    "ShardedEngine",
    "EngineStream",
    "EngineWorkerError",
    "ShardSupervisor",
    "EngineResult",
    "merge_events",
    "EngineMetrics",
    "ShardStats",
    "write_bench_json",
    "ContextRouter",
    "ScopePartition",
    "partition_constraints",
    "ShardCheckpoint",
    "ShardExecutionState",
    "ShardPipeline",
    "ShardRunResult",
    "ShardSpec",
    "run_shard_substream",
    "run_scalability_bench",
    "scalability_workload",
]
