"""Deterministic merging of per-shard results.

In inline mode every shard publishes onto one shared bus, so the event
stream is already globally ordered.  In local/process mode each shard
records its own event list; :func:`merge_events` interleaves them into
one deterministic stream ordered by simulation time (stable within a
shard, ties across shards broken by shard id) -- the same observable
surface ``Middleware`` exposes, reconstructed after the fact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.context import Context
from ..middleware.bus import Event
from .metrics import EngineMetrics

__all__ = ["merge_events", "EngineResult"]


def merge_events(per_shard_events: Sequence[Sequence[Event]]) -> List[Event]:
    """Merge shard event streams into deterministic timestamp order.

    Each shard's stream is already time-ordered (simulation clocks are
    monotone), so this is a k-way merge on ``(at, shard_id, seq)``:
    within one timestamp, shard-internal order is preserved and shards
    are interleaved lowest-id first.
    """
    keyed = []
    for shard_id, events in enumerate(per_shard_events):
        keyed.append(
            [(event.at, shard_id, seq, event) for seq, event in enumerate(events)]
        )
    return [entry[3] for entry in heapq.merge(*keyed)]


@dataclass
class EngineResult:
    """Aggregated outcome of one engine run.

    ``delivered``/``discarded`` are in decision order; ``events`` is
    the merged, deterministic event stream; ``metrics`` carries the
    throughput/per-shard numbers the benchmarks record.
    """

    delivered: List[Context] = field(default_factory=list)
    discarded: List[Context] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)
    metrics: EngineMetrics = field(default_factory=EngineMetrics)

    @property
    def delivered_ids(self) -> List[str]:
        return [c.ctx_id for c in self.delivered]

    @property
    def discarded_ids(self) -> List[str]:
        return [c.ctx_id for c in self.discarded]

    def decision_signature(self) -> Dict[str, List[str]]:
        """The engine's externally visible decisions, for equivalence
        checks against the single-pool middleware."""
        return {
            "delivered": self.delivered_ids,
            "discarded": self.discarded_ids,
        }
