"""Worker supervision for the engine's process execution mode.

:class:`ShardSupervisor` owns the worker processes of one
``mode="process"`` run and makes them survive the checking substrate's
own failures -- the property the paper's middleware setting demands
(consistency services keep resolving under unreliable inputs, so the
resolution substrate itself must tolerate partial failure):

* **Supervision loop.** One single-threaded event loop routes the
  context stream into per-shard batches, dispatches them within a
  bounded in-flight window (``max_queue_batches`` -- the same
  backpressure the bounded queues used to provide, now enforced by the
  supervisor's ack accounting), drains worker acknowledgements, and
  watches liveness: process exit codes, per-batch progress deadlines
  (``batch_timeout_s``) and worker heartbeats.
* **Checkpointed batch replay.** Every dispatched batch is retained in
  a per-shard replay log until a worker ack carrying a
  :class:`~repro.engine.shard.ShardCheckpoint` covers it.  A crashed or
  hung worker is respawned from the last checkpoint and replayed the
  retained batches in order -- deterministically, because the worker's
  whole mutable state rides in the checkpoint and batch application is
  idempotent by index.  Results from a failed attempt never leak: a
  worker only ships decisions in its final result message.
* **Retry with exponential backoff and jitter.**  Each shard has a
  retry budget (``max_retries``); respawns are delayed by
  ``backoff_base_s * 2**(attempt-1)`` (capped, jittered) without
  blocking the other shards' progress.
* **Graceful degradation.**  A shard that exhausts its budget either
  continues **in-parent** from its last checkpoint (``local``
  execution, identical decisions -- the run completes with
  ``engine_degraded{shard=...}`` set) or, with
  ``degrade_on_exhaustion=False``, raises :class:`EngineWorkerError`
  carrying the worker's traceback.  Worker failures are never silent:
  every one is logged with its traceback and counted in
  ``engine_worker_failures_total``.

The telemetry series recorded here (``engine_worker_restarts_total``,
``engine_batches_replayed_total``, ``engine_worker_failures_total``,
``engine_degraded``) are documented in docs/observability.md; the
failure-handling semantics in docs/engine.md.
"""

from __future__ import annotations

import logging
import random
import time
from collections import deque
from enum import Enum
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from ..core.context import Context
from ..obs.telemetry import Telemetry
from .config import EngineConfig, FaultConfig
from .shard import (
    ShardCheckpoint,
    ShardExecutionState,
    ShardRunResult,
    ShardSpec,
    run_shard_supervised,
)

__all__ = ["EngineWorkerError", "ShardSupervisor"]

_log = logging.getLogger("repro.engine")

#: Idle poll granularity of the supervision loop (seconds).  Acks wake
#: the loop earlier; this only bounds how stale liveness checks can be.
_POLL_S = 0.02


class EngineWorkerError(RuntimeError):
    """A shard worker failed beyond its retry budget (no degradation).

    Raised by the supervisor when ``degrade_on_exhaustion`` is off.
    Carries the shard, the number of attempts made and the last
    failure's detail (including the worker traceback when one was
    reported) -- decisions are never silently dropped.
    """

    def __init__(self, shard_id: int, attempts: int, detail: str) -> None:
        super().__init__(
            f"shard {shard_id} worker failed after {attempts} attempt(s): "
            f"{detail}"
        )
        self.shard_id = shard_id
        self.attempts = attempts
        self.detail = detail


class _LaneStatus(Enum):
    RUNNING = "running"
    BACKOFF = "backoff"
    DEGRADED = "degraded"
    DONE = "done"


class _Lane:
    """Supervision state of one shard: worker, replay log, budget."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.status = _LaneStatus.RUNNING
        self.process = None
        self.work_queue = None
        #: Contexts routed here but not yet batched.
        self.buffer: List[Context] = []
        self.next_batch_index = 0
        #: Batches awaiting dispatch, in index order.
        self.outbox: Deque[Tuple[int, List[Context]]] = deque()
        #: Dispatched, unacknowledged batches.
        self.inflight: Dict[int, List[Context]] = {}
        #: Acknowledged batches not yet covered by a checkpoint -- the
        #: replay log a respawn re-dispatches.
        self.acked_tail: Deque[Tuple[int, List[Context]]] = deque()
        self.checkpoint: Optional[ShardCheckpoint] = None
        self.attempt = 0
        self.restarts = 0
        self.failures: List[str] = []
        self.sentinel_sent = False
        self.not_before = 0.0
        self.last_progress = 0.0
        self.last_heartbeat = 0.0
        self.result: Optional[ShardRunResult] = None
        #: In-parent execution state once the lane has degraded.
        self.local_state: Optional[ShardExecutionState] = None

    def flush_buffer(self) -> None:
        if self.buffer:
            self.outbox.append((self.next_batch_index, self.buffer))
            self.next_batch_index += 1
            self.buffer = []

    def outstanding(self) -> bool:
        """Whether the worker owes us progress (acks or the result)."""
        return bool(self.inflight) or (
            self.sentinel_sent and self.result is None
        )

    def replay_batches(self) -> List[Tuple[int, List[Context]]]:
        """Dispatched batches the last checkpoint does not cover."""
        return sorted(list(self.acked_tail) + list(self.inflight.items()))


class ShardSupervisor:
    """Supervised process-mode execution over one engine run.

    Constructing the supervisor starts the ``multiprocessing`` manager
    (the availability probe -- restricted sandboxes fail here, and the
    facade falls back to the in-process decomposition); :meth:`run`
    spawns one worker per shard and drives the loop; :meth:`close`
    reaps whatever is still alive.
    """

    def __init__(
        self,
        specs: List[ShardSpec],
        route: Callable[[Context], int],
        config: EngineConfig,
        telemetry: Telemetry,
    ) -> None:
        import multiprocessing

        self._mp = multiprocessing
        self.config = config
        self.fault: FaultConfig = config.fault
        self.route = route
        self.telemetry = telemetry
        self._rng = random.Random()
        self._manager = multiprocessing.Manager()
        self._ack_queue = self._manager.Queue()
        self.lanes = [_Lane(spec) for spec in specs]

    # -- lifecycle -----------------------------------------------------------

    def run(self, contexts: Iterable[Context]) -> List[ShardRunResult]:
        """Resolve the whole stream; per-shard results in shard order.

        Raises :class:`EngineWorkerError` when a shard exhausts its
        retry budget and degradation is disabled.
        """
        now = time.monotonic()
        for lane in self.lanes:
            self._spawn(lane, now)
        stream = iter(contexts)
        stream_done = False
        while True:
            stream_done = self._pump(stream, stream_done)
            for lane in self.lanes:
                self._service(lane, stream_done)
            self._drain_acks(_POLL_S)
            now = time.monotonic()
            for lane in self.lanes:
                self._check_liveness(lane, now)
            if all(lane.result is not None for lane in self.lanes):
                return [lane.result for lane in self.lanes]

    def close(self) -> None:
        """Terminate surviving workers and shut the manager down."""
        for lane in self.lanes:
            self._reap(lane)
        try:
            self._manager.shutdown()
        except Exception:  # pragma: no cover - manager already gone
            pass

    # -- input pumping -------------------------------------------------------

    def _pump(self, stream, stream_done: bool) -> bool:
        """Route contexts into lane buffers while no lane is backlogged.

        Backpressure: pulling pauses while any lane's outbox is at the
        ``max_queue_batches`` bound (its worker is behind or mid-retry),
        exactly bounding retained-but-undispatched memory.
        """
        if stream_done:
            return True
        bound = self.config.max_queue_batches
        batch_size = self.config.batch_size
        while all(len(lane.outbox) < bound for lane in self.lanes):
            try:
                ctx = next(stream)
            except StopIteration:
                for lane in self.lanes:
                    lane.flush_buffer()
                return True
            lane = self.lanes[self.route(ctx)]
            lane.buffer.append(ctx)
            if len(lane.buffer) >= batch_size:
                lane.flush_buffer()
        return False

    # -- dispatch ------------------------------------------------------------

    def _service(self, lane: _Lane, stream_done: bool) -> None:
        if lane.status is _LaneStatus.DONE:
            return
        if lane.status is _LaneStatus.DEGRADED:
            self._service_degraded(lane, stream_done)
            return
        if lane.status is _LaneStatus.BACKOFF:
            return  # respawned by _check_liveness once the delay passes
        while lane.outbox and len(lane.inflight) < self.config.max_queue_batches:
            index, batch = lane.outbox.popleft()
            lane.inflight[index] = batch
            lane.work_queue.put((index, batch))
        if (
            stream_done
            and not lane.buffer
            and not lane.outbox
            and not lane.sentinel_sent
        ):
            lane.work_queue.put(None)
            lane.sentinel_sent = True
            lane.last_progress = time.monotonic()

    def _service_degraded(self, lane: _Lane, stream_done: bool) -> None:
        state = lane.local_state
        while lane.outbox:
            index, batch = lane.outbox.popleft()
            state.process_batch(index, batch)
        if stream_done and not lane.buffer and lane.result is None:
            lane.result = state.finish()
            lane.status = _LaneStatus.DONE

    # -- acknowledgements ----------------------------------------------------

    def _drain_acks(self, timeout: float) -> None:
        import queue as queue_module

        block = timeout
        while True:
            try:
                message = self._ack_queue.get(timeout=block)
            except queue_module.Empty:
                return
            block = 0.0  # drain whatever else already arrived
            self._handle_message(message)

    def _handle_message(self, message) -> None:
        kind, shard_id, attempt = message[0], message[1], message[2]
        lane = self.lanes[shard_id]
        if attempt != lane.attempt or lane.status in (
            _LaneStatus.DEGRADED,
            _LaneStatus.DONE,
        ):
            return  # stale message from a terminated attempt
        now = time.monotonic()
        lane.last_heartbeat = now
        if kind == "ack":
            _, _, _, index, _count, ckpt = message
            batch = lane.inflight.pop(index, None)
            if batch is not None:
                lane.acked_tail.append((index, batch))
            lane.last_progress = now
            if ckpt is not None:
                lane.checkpoint = ckpt
                while (
                    lane.acked_tail
                    and lane.acked_tail[0][0] <= ckpt.batch_index
                ):
                    lane.acked_tail.popleft()
        elif kind == "result":
            lane.result = message[3]
            lane.status = _LaneStatus.DONE
            self._reap(lane)
        elif kind == "error":
            _, _, _, index, tb_text = message
            self._handle_failure(
                lane,
                kind="error",
                detail=f"batch {index} raised in the worker:\n{tb_text}",
            )
        elif kind == "warn":
            _log.warning("shard %d worker: %s", shard_id, message[3])
        # "ready" and "hb" only refresh the heartbeat above.

    # -- liveness ------------------------------------------------------------

    def _check_liveness(self, lane: _Lane, now: float) -> None:
        if lane.status is _LaneStatus.BACKOFF:
            if now >= lane.not_before:
                self._spawn(lane, now)
            return
        if lane.status is not _LaneStatus.RUNNING:
            return
        if lane.process is not None and not lane.process.is_alive():
            # A clean result may still be in flight; look once more
            # before declaring the worker crashed.
            self._drain_acks(0.0)
            if lane.result is not None or lane.status is not _LaneStatus.RUNNING:
                return
            self._handle_failure(
                lane,
                kind="crash",
                detail=(
                    "worker process exited with code "
                    f"{lane.process.exitcode} before delivering its result"
                ),
            )
            return
        if not lane.outstanding():
            return
        fault = self.fault
        if now - lane.last_progress > fault.batch_timeout_s:
            self._handle_failure(
                lane,
                kind="timeout",
                detail=(
                    f"no batch progress for {fault.batch_timeout_s:g}s "
                    f"with {len(lane.inflight)} batch(es) in flight"
                ),
            )
            return
        if fault.heartbeat_interval_s > 0:
            stale_after = max(5 * fault.heartbeat_interval_s, 2.0)
            if now - lane.last_heartbeat > stale_after:
                self._handle_failure(
                    lane,
                    kind="stalled",
                    detail=f"worker heartbeats stopped for {stale_after:g}s",
                )

    # -- failure handling ----------------------------------------------------

    def _handle_failure(self, lane: _Lane, kind: str, detail: str) -> None:
        shard_id = lane.spec.shard_id
        lane.failures.append(f"[attempt {lane.attempt}] {kind}: {detail}")
        _log.warning(
            "shard %d worker failure (%s, attempt %d/%d): %s",
            shard_id,
            kind,
            lane.attempt + 1,
            self.fault.max_retries + 1,
            detail,
        )
        self._counter(
            "engine_worker_failures_total",
            help="Shard worker failures noticed by the supervisor",
            labels={"shard": str(shard_id), "kind": kind},
        ).inc()
        self._reap(lane)
        if lane.attempt >= self.fault.max_retries:
            self._exhaust(lane)
            return
        lane.attempt += 1
        delay = self.fault.backoff_delay(lane.attempt)
        if self.fault.backoff_jitter:
            delay *= 1 + self._rng.uniform(
                -self.fault.backoff_jitter, self.fault.backoff_jitter
            )
        lane.status = _LaneStatus.BACKOFF
        lane.not_before = time.monotonic() + delay

    def _exhaust(self, lane: _Lane) -> None:
        shard_id = lane.spec.shard_id
        attempts = lane.attempt + 1
        if not self.fault.degrade_on_exhaustion:
            raise EngineWorkerError(shard_id, attempts, lane.failures[-1])
        _log.warning(
            "shard %d exhausted its retry budget (%d attempts); degrading "
            "to in-parent local execution from batch %d",
            shard_id,
            attempts,
            (lane.checkpoint.batch_index + 1) if lane.checkpoint else 0,
        )
        with self.telemetry.span(
            "engine.shard.degrade", shard=shard_id, attempts=attempts
        ):
            replay = lane.replay_batches()
            self._counter(
                "engine_batches_replayed_total",
                help="Batches re-dispatched after worker failures",
                labels={"shard": str(shard_id)},
            ).inc(len(replay))
            state = ShardExecutionState(lane.spec, checkpoint=lane.checkpoint)
            for index, batch in replay + sorted(lane.outbox):
                state.process_batch(index, batch)
        lane.inflight.clear()
        lane.acked_tail.clear()
        lane.outbox.clear()
        lane.local_state = state
        lane.status = _LaneStatus.DEGRADED
        self.telemetry.registry.gauge(
            "engine_degraded",
            help="1 when the shard finished in-parent after retry exhaustion",
            labels={"shard": str(shard_id)},
        ).set(1.0)

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, lane: _Lane, now: float) -> None:
        """(Re)start a worker for ``lane``, replaying unacked batches."""
        shard_id = lane.spec.shard_id
        respawn = lane.attempt > 0
        if respawn:
            replay = lane.replay_batches()
            lane.outbox = deque(replay + sorted(lane.outbox))
            lane.inflight.clear()
            lane.acked_tail.clear()
            lane.sentinel_sent = False
            lane.restarts += 1
            self._counter(
                "engine_worker_restarts_total",
                help="Shard worker respawns after failures",
                labels={"shard": str(shard_id)},
            ).inc()
            self._counter(
                "engine_batches_replayed_total",
                help="Batches re-dispatched after worker failures",
                labels={"shard": str(shard_id)},
            ).inc(len(replay))
        try:
            with self.telemetry.span(
                "engine.worker.restart" if respawn else "engine.worker.spawn",
                shard=shard_id,
                attempt=lane.attempt,
            ):
                lane.work_queue = self._manager.Queue()
                process = self._mp.Process(
                    target=run_shard_supervised,
                    args=(lane.spec, lane.work_queue, self._ack_queue),
                    kwargs={
                        "fault": self.fault,
                        "attempt": lane.attempt,
                        "checkpoint": lane.checkpoint,
                    },
                    daemon=True,
                )
                process.start()
        except OSError as error:
            self._handle_failure(
                lane, kind="spawn", detail=f"could not start worker: {error}"
            )
            return
        lane.process = process
        lane.status = _LaneStatus.RUNNING
        lane.last_progress = now
        lane.last_heartbeat = now

    def _reap(self, lane: _Lane) -> None:
        process = lane.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
                process.join(timeout=2.0)
        else:
            process.join(timeout=0.1)
        lane.process = None

    # -- telemetry -----------------------------------------------------------

    def _counter(self, name: str, *, help: str, labels: Dict[str, str]):
        # Supervision accounting is recorded even on disabled bundles,
        # like ShardPipeline.flush_stats: EngineMetrics is a view over
        # these series in every execution mode.
        return self.telemetry.registry.counter(name, help=help, labels=labels)
