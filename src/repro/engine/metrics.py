"""Engine metrics and machine-readable benchmark output.

``EngineMetrics`` is a *view* over the telemetry registry: shards
flush their accounting into per-shard ``engine_shard_*`` series
(:meth:`~repro.engine.shard.ShardPipeline.flush_stats`), workers ship
registry snapshots back over the result queues, and
:meth:`EngineMetrics.from_registry` reads the merged registry back
into the familiar totals -- one accounting path, whichever execution
mode ran.

``BENCH_engine.json`` (written under ``benchmarks/out/`` next to the
textual reports) records contexts/second per shard count so tooling
can track scalability across commits without parsing tables.
``contexts_per_second`` is recorded **raw** -- consumers compare
floats; rounding is for text reports only (see :meth:`summary`).
"""

from __future__ import annotations

import json
import logging
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from ..obs.sidecar import atomic_write_text

__all__ = ["ShardStats", "EngineMetrics", "write_bench_json"]

_log = logging.getLogger("repro.engine")


@dataclass
class ShardStats:
    """Per-shard accounting of one engine run."""

    shard_id: int
    constraints: int = 0
    contexts: int = 0
    delivered: int = 0
    discarded: int = 0
    inconsistencies: int = 0
    detect_calls: int = 0
    #: Fault-tolerance accounting (process mode; zero elsewhere).
    restarts: int = 0
    replayed: int = 0
    degraded: bool = False


@dataclass
class EngineMetrics:
    """Whole-run accounting: totals, per-shard stats, throughput."""

    mode: str = "inline"
    shards: int = 1
    contexts_total: int = 0
    delivered_total: int = 0
    discarded_total: int = 0
    inconsistencies_total: int = 0
    worker_restarts: int = 0
    batches_replayed: int = 0
    degraded_shards: int = 0
    elapsed_s: float = 0.0
    per_shard: List[ShardStats] = field(default_factory=list)

    @property
    def contexts_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.contexts_total / self.elapsed_s

    @classmethod
    def from_registry(
        cls, registry, *, mode: str, shards: int
    ) -> "EngineMetrics":
        """Build the metrics view from a (merged) telemetry registry.

        Reads the ``engine_shard_*`` series every shard flushed
        (``registry`` is a :class:`repro.obs.MetricsRegistry`); shards
        that never flushed -- e.g. a worker that died -- simply read
        as zeros rather than corrupting the totals.
        """
        per_shard: List[ShardStats] = []
        for shard_id in range(shards):
            labels = {"shard": str(shard_id)}
            per_shard.append(
                ShardStats(
                    shard_id=shard_id,
                    constraints=int(
                        registry.value("engine_shard_constraints", labels)
                    ),
                    contexts=int(
                        registry.value("engine_shard_contexts_total", labels)
                    ),
                    delivered=int(
                        registry.value("engine_shard_delivered_total", labels)
                    ),
                    discarded=int(
                        registry.value("engine_shard_discarded_total", labels)
                    ),
                    inconsistencies=int(
                        registry.value(
                            "engine_shard_inconsistencies_total", labels
                        )
                    ),
                    detect_calls=int(
                        registry.value(
                            "engine_shard_detect_calls_total", labels
                        )
                    ),
                    restarts=int(
                        registry.value("engine_worker_restarts_total", labels)
                    ),
                    replayed=int(
                        registry.value("engine_batches_replayed_total", labels)
                    ),
                    degraded=bool(
                        registry.value("engine_degraded", labels)
                    ),
                )
            )
        return cls(
            mode=mode,
            shards=shards,
            contexts_total=sum(s.contexts for s in per_shard),
            delivered_total=sum(s.delivered for s in per_shard),
            discarded_total=sum(s.discarded for s in per_shard),
            inconsistencies_total=sum(s.inconsistencies for s in per_shard),
            worker_restarts=sum(s.restarts for s in per_shard),
            batches_replayed=sum(s.replayed for s in per_shard),
            degraded_shards=sum(1 for s in per_shard if s.degraded),
            per_shard=per_shard,
        )

    def summary(self) -> Dict[str, object]:
        """JSON-ready dict; ``contexts_per_second`` is the raw float.

        Bench JSON consumers compare throughput floats across commits,
        so no precision is dropped here; text reports round at the
        formatting edge (:meth:`summary_text`).
        """
        data = asdict(self)
        data["contexts_per_second"] = self.contexts_per_second
        return data

    def summary_text(self) -> str:
        """One-line human summary (rounded for reading, not storage)."""
        text = (
            f"{self.contexts_total} contexts on {self.shards} shard(s) "
            f"[{self.mode}] in {self.elapsed_s:.3f}s "
            f"({self.contexts_per_second:.1f} ctx/s): "
            f"{self.delivered_total} delivered, "
            f"{self.discarded_total} discarded, "
            f"{self.inconsistencies_total} inconsistencies"
        )
        if self.worker_restarts or self.degraded_shards:
            text += (
                f"; {self.worker_restarts} worker restart(s), "
                f"{self.batches_replayed} batch(es) replayed, "
                f"{self.degraded_shards} shard(s) degraded"
            )
        return text


def write_bench_json(
    path: Union[str, Path], workload: str, record: Dict[str, object]
) -> Dict[str, object]:
    """Merge ``record`` under ``workload`` into the JSON file at ``path``.

    Existing entries for other workloads are preserved, so the
    scalability benchmark and the engine benchmark can both contribute
    to one ``BENCH_engine.json``.  A corrupt existing file is reset to
    a fresh document -- but loudly: the parse error is logged as a
    warning first, because silently discarding past benchmark records
    hides history loss.  Returns the full document written.
    """
    path = Path(path)
    document: Dict[str, object] = {}
    if path.exists():
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError) as error:
            _log.warning(
                "resetting corrupt bench JSON %s (%s: %s)",
                path,
                type(error).__name__,
                error,
            )
            document = {}
    if not isinstance(document, dict):
        _log.warning(
            "resetting bench JSON %s: top level is %s, expected object",
            path,
            type(document).__name__,
        )
        document = {}
    document[workload] = record
    # Atomic replace: a crash mid-write must not destroy the merged
    # history of every other workload's records.
    atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    return document
