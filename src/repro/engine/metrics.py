"""Engine metrics and machine-readable benchmark output.

``BENCH_engine.json`` (written under ``benchmarks/out/`` next to the
textual reports) records contexts/second per shard count so tooling
can track scalability across commits without parsing tables.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Union

__all__ = ["ShardStats", "EngineMetrics", "write_bench_json"]


@dataclass
class ShardStats:
    """Per-shard accounting of one engine run."""

    shard_id: int
    constraints: int = 0
    contexts: int = 0
    delivered: int = 0
    discarded: int = 0
    inconsistencies: int = 0
    detect_calls: int = 0


@dataclass
class EngineMetrics:
    """Whole-run accounting: totals, per-shard stats, throughput."""

    mode: str = "inline"
    shards: int = 1
    contexts_total: int = 0
    delivered_total: int = 0
    discarded_total: int = 0
    inconsistencies_total: int = 0
    elapsed_s: float = 0.0
    per_shard: List[ShardStats] = field(default_factory=list)

    @property
    def contexts_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.contexts_total / self.elapsed_s

    def summary(self) -> Dict[str, object]:
        data = asdict(self)
        data["contexts_per_second"] = round(self.contexts_per_second, 1)
        return data


def write_bench_json(
    path: Union[str, Path], workload: str, record: Dict[str, object]
) -> Dict[str, object]:
    """Merge ``record`` under ``workload`` into the JSON file at ``path``.

    Existing entries for other workloads are preserved, so the
    scalability benchmark and the engine benchmark can both contribute
    to one ``BENCH_engine.json``.  Returns the full document written.
    """
    path = Path(path)
    document: Dict[str, object] = {}
    if path.exists():
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            document = {}
    if not isinstance(document, dict):
        document = {}
    document[workload] = record
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return document
