"""Shard pipelines: per-shard pool + checker + strategy execution.

A :class:`ShardPipeline` owns one :class:`~repro.middleware.pool.ContextPool`,
one detector and one strategy instance, and applies the two context
changes exactly as :class:`~repro.middleware.manager.Middleware` does --
but against the shard-local pool only, and with use scheduling factored
out so a caller can drive it (the engine facade drives all shards from
one global schedule; a worker process drives its shard from its own).

:class:`StreamDriver` is that factored-out schedule: the clock, the
arrival counter and the pending-use queue of ``Middleware.receive``,
generalized to dispatch each context to one of several pipelines.
Driving *n* pipelines through one driver reproduces the single-pool
middleware's use schedule globally; driving one pipeline per driver
gives the shard-local schedule worker processes use.

Module-level functions (:func:`run_shard_substream`,
:func:`run_shard_from_queue`) are the process-pool entry points; a
:class:`ShardSpec` carries everything a worker needs to rebuild its
pipeline, in picklable form.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..constraints.ast import Constraint
from ..constraints.builtins import FunctionRegistry, standard_registry
from ..constraints.checker import ConstraintChecker
from ..core.context import Context
from ..core.resolver import AddOutcome, ResolutionService, UseOutcome
from ..core.strategy import ResolutionStrategy, make_strategy
from ..middleware.bus import (
    ContextAdmitted,
    ContextBuffered,
    ContextDelivered,
    ContextDiscarded,
    ContextExpired,
    ContextMarkedBad,
    ContextReceived,
    Event,
    EventBus,
    InconsistencyDetected,
)
from ..middleware.clock import SimulationClock
from ..middleware.pool import ContextPool

__all__ = [
    "ShardPipeline",
    "StreamDriver",
    "ShardSpec",
    "ShardRunResult",
    "run_shard_substream",
    "run_shard_from_queue",
]


class ShardPipeline:
    """One shard's pool, detector and strategy, externally scheduled.

    The ``add``/``use``/``expire_due`` methods mirror the corresponding
    steps of ``Middleware.receive``/``use``/``_expire`` verbatim,
    against the shard-local pool.  Expiry is guarded by a min-heap of
    pending expiries so streams of immortal contexts pay O(1) per
    arrival instead of a full pool scan.
    """

    def __init__(
        self,
        shard_id: int,
        detector,
        strategy: ResolutionStrategy,
        bus: Optional[EventBus] = None,
        telemetry=None,
    ) -> None:
        self.shard_id = shard_id
        self.pool = ContextPool()
        self.resolution = ResolutionService(detector, strategy)
        self.bus = bus if bus is not None else EventBus()
        self._expiry_heap: List[Tuple[float, int, Context]] = []
        self._heap_seq = 0
        #: Contexts this shard has processed (arrivals routed here).
        self.arrivals = 0
        self.uses = 0
        # Each pipeline needs a registry of its own (or its engine's):
        # EngineMetrics is a view over it -- flush_stats() lands here.
        if telemetry is None:
            from ..obs.telemetry import Telemetry

            telemetry = Telemetry.disabled()
        self.telemetry = telemetry
        self.resolution.telemetry = telemetry
        if hasattr(detector, "telemetry"):
            detector.telemetry = telemetry
        # Reusable stage instruments, allocated once and re-entered per
        # context.  Deliver/discard carry spans (their span counts must
        # equal the delivered/discarded totals); the receive/use
        # wrappers record histogram-only -- their interesting sub-work
        # (check/resolve/deliver) is already spanned inside, and the
        # throughput engine pays for every span it opens (see the
        # telemetry overhead benchmark).
        self._stage_receive = telemetry.stage_observer("receive")
        self._stage_use = telemetry.stage_observer("use")
        self._stage_deliver = telemetry.stage_timer("deliver")
        self._stage_discard = telemetry.stage_timer("discard")

    @property
    def strategy(self) -> ResolutionStrategy:
        return self.resolution.strategy

    # -- the context addition change (Middleware.receive core) ------------

    def add(self, ctx: Context, now: float) -> AddOutcome:
        """Check ``ctx`` against the shard pool and apply the strategy.

        Returns the strategy outcome; the caller schedules the context
        for use iff it survived (``ctx not in outcome.discarded``) and
        unschedules the victims.
        """
        self.arrivals += 1
        with self._stage_receive:
            existing = [
                c for c in self.pool.contents() if c.ctx_id != ctx.ctx_id
            ]
            detected_before = len(self.resolution.log.detected)
            outcome = self.resolution.handle_addition(ctx, existing, now)
            self.bus.publish(ContextReceived(at=now, context=ctx))
            for inconsistency in self.resolution.log.detected[detected_before:]:
                self.bus.publish(
                    InconsistencyDetected(at=now, inconsistency=inconsistency)
                )

            discarded_ids = {c.ctx_id for c in outcome.discarded}
            if ctx.ctx_id not in discarded_ids:
                self.pool.add(ctx)
                if ctx.expiry != float("inf"):
                    self._heap_seq += 1
                    heapq.heappush(
                        self._expiry_heap, (ctx.expiry, self._heap_seq, ctx)
                    )
            for victim in outcome.discarded:
                with self._stage_discard:
                    self.pool.remove(victim)
                    self.bus.publish(ContextDiscarded(at=now, context=victim))
            for admitted in outcome.admitted:
                self.bus.publish(ContextAdmitted(at=now, context=admitted))
            if outcome.buffered:
                self.bus.publish(ContextBuffered(at=now, context=ctx))
        return outcome

    # -- the context deletion (use) change ---------------------------------

    def use(self, ctx: Context, now: float) -> UseOutcome:
        """An application uses ``ctx``; mirrors ``Middleware.use``."""
        self.uses += 1
        with self._stage_use:
            outcome = self.resolution.handle_use(ctx, now)
            for bad in outcome.newly_bad:
                self.bus.publish(ContextMarkedBad(at=now, context=bad))
            for victim in outcome.discarded:
                with self._stage_discard:
                    self.pool.remove(victim)
                    self.bus.publish(ContextDiscarded(at=now, context=victim))
            if outcome.delivered:
                with self._stage_deliver:
                    self.bus.publish(ContextDelivered(at=now, context=ctx))
        return outcome

    # -- expiry -------------------------------------------------------------

    def expire_due(self, now: float) -> List[Context]:
        """Remove every pooled context whose availability period passed.

        The heap makes the no-expiry case O(1); entries for contexts
        that were discarded first are skipped lazily.
        """
        expired: List[Context] = []
        heap = self._expiry_heap
        while heap and heap[0][0] <= now:
            _, _, ctx = heapq.heappop(heap)
            live = self.pool.get(ctx.ctx_id)
            if live is None:
                continue
            self.pool.remove(live)
            self.resolution.strategy.delta.resolve_involving(live)
            self.bus.publish(ContextExpired(at=now, context=live))
            expired.append(live)
        return expired

    # -- diagnostics --------------------------------------------------------

    def detect_calls(self) -> int:
        detector = self.resolution.detector
        return getattr(detector, "detect_calls", 0)

    def flush_stats(self) -> None:
        """Write this shard's run accounting into the telemetry registry.

        Called once after the shard's stream is drained.  These
        ``engine_shard_*`` series are what
        :meth:`~repro.engine.metrics.EngineMetrics.from_registry`
        reads back -- the registry is the single accounting path, in
        every execution mode.  Recorded even when the bundle is
        disabled (plain counters; the hot-path span/histogram hooks
        stay off).
        """
        registry = self.telemetry.registry
        labels = {"shard": str(self.shard_id)}
        log = self.resolution.log
        registry.counter(
            "engine_shard_contexts_total",
            help="Contexts routed to the shard",
            labels=labels,
        ).inc(self.arrivals)
        registry.counter(
            "engine_shard_delivered_total",
            help="Contexts the shard delivered",
            labels=labels,
        ).inc(len(log.delivered))
        registry.counter(
            "engine_shard_discarded_total",
            help="Contexts the shard discarded",
            labels=labels,
        ).inc(len(log.discarded))
        registry.counter(
            "engine_shard_inconsistencies_total",
            help="Inconsistencies the shard detected",
            labels=labels,
        ).inc(len(log.detected))
        registry.counter(
            "engine_shard_detect_calls_total",
            help="Incremental checker invocations on the shard",
            labels=labels,
        ).inc(self.detect_calls())
        constraints = getattr(self.resolution.detector, "constraints", None)
        if callable(constraints):
            registry.gauge(
                "engine_shard_constraints",
                help="Constraints assigned to the shard",
                labels=labels,
            ).set(len(constraints()))


class StreamDriver:
    """Global use scheduling over one or more shard pipelines.

    Reproduces the window bookkeeping of ``Middleware.receive`` -- the
    shared clock, the admitted-arrival counter, the pending-use queue,
    both window semantics, and the ordering of expiry, draining,
    checking and use around each arrival -- while the per-context pool
    work happens in whichever pipeline ``route`` selects.
    """

    def __init__(
        self,
        pipelines: Sequence[ShardPipeline],
        route: Callable[[Context], int],
        *,
        use_window: int = 4,
        use_delay: Optional[float] = None,
    ) -> None:
        if use_window < 0:
            raise ValueError(f"use_window must be >= 0, got {use_window}")
        if use_delay is not None and use_delay < 0:
            raise ValueError(f"use_delay must be >= 0, got {use_delay}")
        self.pipelines = list(pipelines)
        self.route = route
        self.use_window = use_window
        self.use_delay = use_delay
        self.clock = SimulationClock()
        self._pending_use: Deque[Tuple[Context, int, int, float]] = deque()
        self._arrivals = 0
        self.delivered: List[Context] = []

    # -- arrivals -----------------------------------------------------------

    def receive(self, ctx: Context) -> None:
        now = max(self.clock.now(), ctx.timestamp)
        self.clock.advance_to(now)
        for pipeline in self.pipelines:
            for expired in pipeline.expire_due(now):
                self._unschedule(expired)
        if self.use_delay is not None:
            self._drain_due_uses(now)

        pipeline_index = self.route(ctx)
        pipeline = self.pipelines[pipeline_index]
        outcome = pipeline.add(ctx, now)
        discarded_ids = {c.ctx_id for c in outcome.discarded}
        if ctx.ctx_id not in discarded_ids:
            self._arrivals += 1
            self._pending_use.append((ctx, pipeline_index, self._arrivals, now))
        for victim in outcome.discarded:
            self._unschedule(victim)

        self._drain_due_uses(now)

    def receive_all(self, contexts: Iterable[Context]) -> None:
        for ctx in contexts:
            self.receive(ctx)
        self.flush_uses()

    # -- uses ---------------------------------------------------------------

    def flush_uses(self) -> None:
        while self._pending_use:
            ctx, pipeline_index, _, _ = self._pending_use.popleft()
            self._use(ctx, pipeline_index)

    def _use(self, ctx: Context, pipeline_index: int) -> None:
        now = self.clock.now()
        outcome = self.pipelines[pipeline_index].use(ctx, now)
        for victim in outcome.discarded:
            self._unschedule(victim)
        if outcome.delivered:
            self.delivered.append(ctx)

    def _drain_due_uses(self, now: float) -> None:
        def head_is_due() -> bool:
            if not self._pending_use:
                return False
            _, _, arrival_index, arrived_at = self._pending_use[0]
            if self.use_delay is not None:
                return now >= arrived_at + self.use_delay
            return self._arrivals - arrival_index >= self.use_window

        while head_is_due():
            ctx, pipeline_index, _, _ = self._pending_use.popleft()
            self._use(ctx, pipeline_index)

    def _unschedule(self, ctx: Context) -> None:
        self._pending_use = deque(
            entry for entry in self._pending_use if entry[0].ctx_id != ctx.ctx_id
        )


# -- process-mode plumbing ----------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to rebuild one shard.

    All fields must be picklable: the constraint ASTs and contexts are
    plain frozen dataclasses; ``registry_factory`` and custom strategy
    factories must be module-level callables.
    """

    shard_id: int
    constraints: Tuple[Constraint, ...]
    strategy: str = "drop-latest"
    strategy_kwargs: Tuple[Tuple[str, object], ...] = ()
    registry_factory: Callable[[], FunctionRegistry] = standard_registry
    use_window: int = 4
    use_delay: Optional[float] = None
    #: Whether a worker rebuilds its pipeline with live telemetry
    #: (spans + histograms); the snapshot ships back in the result.
    telemetry_enabled: bool = False

    def build(self, telemetry=None) -> ShardPipeline:
        """Rebuild the pipeline; ``telemetry`` overrides the spec flag
        (inline mode shares the engine's bundle across shards)."""
        checker = ConstraintChecker(
            self.constraints, registry=self.registry_factory()
        )
        strategy = make_strategy(self.strategy, **dict(self.strategy_kwargs))
        if telemetry is None:
            from ..obs.telemetry import Telemetry

            telemetry = Telemetry(enabled=self.telemetry_enabled)
        return ShardPipeline(
            self.shard_id, checker, strategy, telemetry=telemetry
        )


@dataclass
class ShardRunResult:
    """What one shard's run produced, in merge-ready form."""

    shard_id: int
    events: List[Event] = field(default_factory=list)
    delivered: List[Context] = field(default_factory=list)
    discarded: List[Context] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    #: Serialized :meth:`repro.obs.Telemetry.snapshot` of the worker's
    #: bundle; merged into the parent registry after the run.
    telemetry: Optional[Dict[str, object]] = None


def _drive_substream(
    spec: ShardSpec,
    batches_for: Callable[[ShardPipeline], Iterable[Sequence[Context]]],
) -> ShardRunResult:
    """Run one shard over its sub-stream with shard-local windows.

    ``batches_for`` receives the freshly built pipeline (so a queue
    reader can time its waits against the pipeline's telemetry) and
    returns the batch iterable to drain.
    """
    started = time.perf_counter()
    pipeline = spec.build()
    telemetry = pipeline.telemetry
    events: List[Event] = []
    pipeline.bus.subscribe(Event, events.append)
    driver = StreamDriver(
        [pipeline],
        lambda _ctx: 0,
        use_window=spec.use_window,
        use_delay=spec.use_delay,
    )
    total = 0
    batch_histogram = (
        telemetry.registry.histogram(
            "engine_batch_seconds",
            help="Per-batch resolution latency on the shard",
            labels={"shard": str(spec.shard_id)},
        )
        if telemetry.enabled
        else None
    )
    for batch in batches_for(pipeline):
        total += len(batch)
        with telemetry.span(
            "engine.batch", shard=spec.shard_id, size=len(batch)
        ):
            batch_started = time.perf_counter()
            for ctx in batch:
                driver.receive(ctx)
            if batch_histogram is not None:
                batch_histogram.observe(time.perf_counter() - batch_started)
    driver.flush_uses()
    elapsed = time.perf_counter() - started
    pipeline.flush_stats()
    telemetry.registry.gauge(
        "engine_shard_elapsed_seconds",
        help="Wall-clock seconds the shard spent on its sub-stream",
        labels={"shard": str(spec.shard_id)},
    ).set(elapsed)
    log = pipeline.resolution.log
    return ShardRunResult(
        shard_id=spec.shard_id,
        events=events,
        delivered=list(log.delivered),
        discarded=list(log.discarded),
        stats={
            "contexts": float(total),
            "detect_calls": float(pipeline.detect_calls()),
            "inconsistencies": float(len(log.detected)),
            "elapsed_s": elapsed,
        },
        telemetry=telemetry.snapshot(),
    )


def run_shard_substream(
    spec: ShardSpec, contexts: Sequence[Context]
) -> ShardRunResult:
    """Process-pool entry point: one shard, its whole sub-stream."""
    return _drive_substream(spec, lambda _pipeline: [contexts])


def run_shard_from_queue(spec: ShardSpec, queue) -> ShardRunResult:
    """Process-pool entry point: one shard fed batches through a queue.

    ``queue`` is a (manager-proxied) bounded queue of context batches;
    ``None`` is the end-of-stream sentinel.  The bounded queue is what
    gives the engine backpressure: the router blocks once a shard falls
    ``max_queue_batches`` batches behind.  Time spent blocked in
    ``queue.get`` is recorded per shard (``engine_queue_wait_seconds``)
    -- the router-starvation signal the batch latency alone cannot
    show.
    """

    def batches(pipeline: ShardPipeline):
        telemetry = pipeline.telemetry
        wait_histogram = (
            telemetry.registry.histogram(
                "engine_queue_wait_seconds",
                help="Time the shard worker spent waiting on its queue",
                labels={"shard": str(spec.shard_id)},
            )
            if telemetry.enabled
            else None
        )
        while True:
            waited = time.perf_counter()
            batch = queue.get()
            if wait_histogram is not None:
                wait_histogram.observe(time.perf_counter() - waited)
            if batch is None:
                return
            yield batch

    return _drive_substream(spec, batches)
