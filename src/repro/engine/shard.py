"""Shard adapters over the canonical runtime, plus process plumbing.

Since ISSUE 5 the receive/check/resolve/use/expire life cycle lives in
exactly one place -- :mod:`repro.runtime` -- and this module only
*adapts* it to the sharded engine:

* :class:`ShardPipeline` is a
  :class:`~repro.runtime.pipeline.ResolutionPipeline` with a shard id,
  per-shard arrival/use counters and the ``engine_shard_*`` accounting
  (:meth:`~ShardPipeline.flush_stats`).  No stage logic is defined
  here.
* :class:`StreamDriver` is a
  :class:`~repro.runtime.pipeline.PipelineDriver` under its historical
  name: driving *n* pipelines through one driver reproduces the
  single-pool middleware's use schedule globally (inline mode);
  driving one pipeline per driver gives the shard-local schedule
  worker processes use.

Module-level functions (:func:`run_shard_substream`,
:func:`run_shard_from_queue`, :func:`run_shard_supervised`) are the
worker-process entry points; a :class:`ShardSpec` carries everything a
worker needs to rebuild its pipeline, in picklable form.

:class:`ShardExecutionState` is the checkpointable core the supervised
entry point (and the supervisor's in-parent degraded lane) drive: it
owns the pipeline, the shard-local :class:`StreamDriver` and the event
log, applies batches idempotently by batch index -- through the
amortized :func:`repro.runtime.batch.receive_batch` path unless the
spec opts out -- and can capture / restore a :class:`ShardCheckpoint`,
the plain-data snapshot that makes deterministic replay after a worker
crash possible.
"""

from __future__ import annotations

import pickle
import threading
import time
import traceback
from dataclasses import dataclass, field
from functools import partial
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..constraints.ast import Constraint
from ..constraints.builtins import FunctionRegistry, standard_registry
from ..constraints.checker import ConstraintChecker
from ..core.context import Context
from ..core.resolver import AddOutcome, UseOutcome
from ..core.strategy import ResolutionStrategy, make_strategy
from ..middleware.bus import Event, EventBus
from ..runtime.batch import receive_batch
from ..runtime.pipeline import PipelineDriver, ResolutionPipeline
from ..runtime.snapshot import AsyncCheckConfig

__all__ = [
    "ShardPipeline",
    "StreamDriver",
    "ShardSpec",
    "ShardRunResult",
    "ShardCheckpoint",
    "ShardExecutionState",
    "run_shard_substream",
    "run_shard_from_queue",
    "run_shard_supervised",
]


class ShardPipeline(ResolutionPipeline):
    """One shard's pool, detector and strategy, externally scheduled.

    The life cycle itself is inherited; this class adds the shard id,
    the per-shard arrival/use counters and the ``engine_shard_*``
    registry accounting.  The receive/use stage wrappers record
    histogram-only (``wrapper_spans=False``): their interesting
    sub-work (check/resolve/deliver) is already spanned inside, and the
    throughput engine pays for every span it opens (see the telemetry
    overhead benchmark).
    """

    def __init__(
        self,
        shard_id: int,
        detector,
        strategy: ResolutionStrategy,
        bus: Optional[EventBus] = None,
        telemetry=None,
    ) -> None:
        self.shard_id = shard_id
        #: Contexts this shard has processed (arrivals routed here).
        self.arrivals = 0
        self.uses = 0
        # Each pipeline needs a registry of its own (or its engine's):
        # EngineMetrics is a view over it -- flush_stats() lands here,
        # even when the bundle is disabled, so a shared NULL bundle
        # would collide shards into one registry.
        if telemetry is None:
            from ..obs.telemetry import Telemetry

            telemetry = Telemetry.disabled()
        super().__init__(
            detector,
            strategy,
            bus=bus,
            telemetry=telemetry,
            wrapper_spans=False,
        )

    def add(self, ctx: Context, now: float, detected=None) -> AddOutcome:
        self.arrivals += 1
        return super().add(ctx, now, detected=detected)

    def expire_on_receive(self, ctx: Context, now: float) -> None:
        # A dead-on-arrival context was still routed here: it counts
        # toward engine_shard_contexts_total like any other arrival.
        self.arrivals += 1
        super().expire_on_receive(ctx, now)

    def use(self, ctx: Context, now: float) -> UseOutcome:
        self.uses += 1
        return super().use(ctx, now)

    # -- diagnostics --------------------------------------------------------

    def detect_calls(self) -> int:
        detector = self.resolution.detector
        return getattr(detector, "detect_calls", 0)

    def flush_stats(self) -> None:
        """Write this shard's run accounting into the telemetry registry.

        Called once after the shard's stream is drained.  These
        ``engine_shard_*`` series are what
        :meth:`~repro.engine.metrics.EngineMetrics.from_registry`
        reads back -- the registry is the single accounting path, in
        every execution mode.  Recorded even when the bundle is
        disabled (plain counters; the hot-path span/histogram hooks
        stay off).
        """
        registry = self.telemetry.registry
        labels = {"shard": str(self.shard_id)}
        log = self.resolution.log
        registry.counter(
            "engine_shard_contexts_total",
            help="Contexts routed to the shard",
            labels=labels,
        ).inc(self.arrivals)
        registry.counter(
            "engine_shard_delivered_total",
            help="Contexts the shard delivered",
            labels=labels,
        ).inc(len(log.delivered))
        registry.counter(
            "engine_shard_discarded_total",
            help="Contexts the shard discarded",
            labels=labels,
        ).inc(len(log.discarded))
        registry.counter(
            "engine_shard_inconsistencies_total",
            help="Inconsistencies the shard detected",
            labels=labels,
        ).inc(len(log.detected))
        registry.counter(
            "engine_shard_detect_calls_total",
            help="Incremental checker invocations on the shard",
            labels=labels,
        ).inc(self.detect_calls())
        constraints = getattr(self.resolution.detector, "constraints", None)
        if callable(constraints):
            registry.gauge(
                "engine_shard_constraints",
                help="Constraints assigned to the shard",
                labels=labels,
            ).set(len(constraints()))


class StreamDriver(PipelineDriver):
    """Global use scheduling over one or more shard pipelines.

    The historical engine name for the canonical
    :class:`~repro.runtime.pipeline.PipelineDriver` -- the clock, the
    :class:`~repro.runtime.scheduler.UseScheduler` and the arrival
    loop are all inherited unchanged.
    """


# -- process-mode plumbing ----------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to rebuild one shard.

    All fields must be picklable: the constraint ASTs and contexts are
    plain frozen dataclasses; ``registry_factory`` and custom strategy
    factories must be module-level callables.
    """

    shard_id: int
    constraints: Tuple[Constraint, ...]
    strategy: str = "drop-latest"
    strategy_kwargs: Tuple[Tuple[str, object], ...] = ()
    registry_factory: Callable[[], FunctionRegistry] = standard_registry
    use_window: int = 4
    use_delay: Optional[float] = None
    #: Whether a worker rebuilds its pipeline with live telemetry
    #: (spans + histograms); the snapshot ships back in the result.
    telemetry_enabled: bool = False
    #: Chaos/testing hook: called as ``injector(shard_id, batch_index,
    #: attempt, phase)`` with ``phase`` in ``("start", "mid")`` around
    #: each supervised batch, so fault-injection harnesses can crash,
    #: hang or poison workers on schedule.  Runs only in worker
    #: processes -- never in the parent's degraded lane -- and must be
    #: picklable (a module-level callable or instance of one).
    fault_injector: Optional[Callable[[int, int, int, str], None]] = None
    #: Compiled constraint kernels + equality-join candidate indexes
    #: (the ``--no-kernels`` escape hatch turns this off).
    kernels: bool = True
    #: Columnar batched detection: the runtime batch path plans
    #: verdict runs through ``ConstraintChecker.detect_batch`` (the
    #: ``--no-batch-kernels`` escape hatch turns this off; decisions
    #: are identical either way).
    batch_kernels: bool = True
    #: Apply batches through the amortized runtime batch path
    #: (:func:`repro.runtime.batch.receive_batch`); ``False`` falls
    #: back to per-context ``driver.receive`` (the benchmark's A/B
    #: lever and the ``--no-runtime-batch`` escape hatch).
    runtime_batch: bool = True
    #: Snapshot-window asynchronous checking for this shard's driver
    #: (``None`` keeps the synchronous path).  A frozen plain-data
    #: config, so it pickles with the spec.
    async_check: Optional[AsyncCheckConfig] = None

    def build(self, telemetry=None) -> ShardPipeline:
        """Rebuild the pipeline; ``telemetry`` overrides the spec flag
        (inline mode shares the engine's bundle across shards)."""
        checker = ConstraintChecker(
            self.constraints,
            registry=self.registry_factory(),
            kernels=self.kernels,
            batch_kernels=self.batch_kernels,
        )
        strategy = make_strategy(self.strategy, **dict(self.strategy_kwargs))
        if telemetry is None:
            from ..obs.telemetry import Telemetry

            telemetry = Telemetry(enabled=self.telemetry_enabled)
        return ShardPipeline(
            self.shard_id, checker, strategy, telemetry=telemetry
        )


@dataclass
class ShardRunResult:
    """What one shard's run produced, in merge-ready form."""

    shard_id: int
    events: List[Event] = field(default_factory=list)
    delivered: List[Context] = field(default_factory=list)
    discarded: List[Context] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    #: Serialized :meth:`repro.obs.Telemetry.snapshot` of the worker's
    #: bundle; merged into the parent registry after the run.
    telemetry: Optional[Dict[str, object]] = None


@dataclass
class ShardCheckpoint:
    """Plain-data snapshot of one shard's mid-stream execution state.

    Everything a respawned worker (or the supervisor's in-parent
    degraded lane) needs to resume exactly where the checkpointing
    worker acked: the strategy instance, the audit log, the pool
    contents, the shard-local driver's clock and
    :class:`~repro.runtime.scheduler.UseScheduler` snapshot, and the
    events published so far.  The expiry heap and the checker's
    candidate indexes are *not* captured: restoring re-adds the pool
    contents, and both structures rebuild themselves through the pool
    listeners.  All fields are picklable plain data -- the unpicklable
    machinery (checker registry closures, telemetry locks) is rebuilt
    from the :class:`ShardSpec` on restore, which is sound because the
    checker keeps no per-context state beyond ``detect_calls``.

    Because one checkpoint pickles as a single object graph, shared
    ``Context`` references (pool vs. strategy state vs. events) stay
    shared after a round-trip.
    """

    shard_id: int
    #: Index of the last batch folded into this state.
    batch_index: int
    total: int
    elapsed_s: float
    strategy: ResolutionStrategy
    log: object  # ResolutionLog; typed loosely to keep imports acyclic
    detect_calls: int
    pool_contexts: List[Context]
    arrivals: int
    uses: int
    clock_now: float
    #: :meth:`repro.runtime.scheduler.UseScheduler.snapshot` payload.
    scheduler: Dict[str, object]
    driver_delivered: List[Context]
    events: List[Event]
    #: :meth:`repro.runtime.snapshot.SnapshotIngress.snapshot` payload
    #: (``None`` when the shard runs synchronously) -- without it, a
    #: respawned worker would lose the contexts the snapshot window
    #: still buffered at checkpoint time.
    ingress: Optional[Dict[str, object]] = None


class ShardExecutionState:
    """One shard's live pipeline + driver + event log, checkpointable.

    The unit both supervised executors drive: the worker process loop
    (:func:`run_shard_supervised`) and the supervisor's in-parent
    degraded lane feed it batches; :func:`run_shard_substream` and
    :func:`run_shard_from_queue` drive it through
    :func:`_drive_substream`.  Batches are applied idempotently by
    index (``last_batch_index`` guards re-entry, so a replayed batch
    the state already contains is a no-op) and the whole mutable state
    can round-trip through a :class:`ShardCheckpoint`.
    """

    def __init__(
        self,
        spec: ShardSpec,
        checkpoint: Optional[ShardCheckpoint] = None,
        telemetry=None,
    ) -> None:
        self.spec = spec
        self.started = time.perf_counter()
        self.pipeline = spec.build(telemetry=telemetry)
        self.telemetry = self.pipeline.telemetry
        self.events: List[Event] = []
        self.pipeline.bus.subscribe(Event, self.events.append)
        self.driver = StreamDriver(
            [self.pipeline],
            lambda _ctx: 0,
            use_window=spec.use_window,
            use_delay=spec.use_delay,
            async_check=spec.async_check,
            batch_kernels=spec.batch_kernels,
        )
        self.total = 0
        self.last_batch_index = -1
        #: Work seconds accumulated by previous attempts (restored from
        #: the checkpoint), so elapsed stats survive respawns.
        self.elapsed_before = 0.0
        self._batch_histogram = (
            self.telemetry.registry.histogram(
                "engine_batch_seconds",
                help="Per-batch resolution latency on the shard",
                labels={"shard": str(spec.shard_id)},
            )
            if self.telemetry.enabled
            else None
        )
        if checkpoint is not None:
            self._restore(checkpoint)

    # -- checkpoint / restore ------------------------------------------------

    def _restore(self, ckpt: ShardCheckpoint) -> None:
        pipeline = self.pipeline
        resolution = pipeline.resolution
        resolution.strategy = ckpt.strategy
        resolution.log = ckpt.log
        detector = resolution.detector
        if hasattr(detector, "detect_calls"):
            detector.detect_calls = ckpt.detect_calls
        for ctx in ckpt.pool_contexts:
            # Re-adding rebuilds the expiry heap and the checker's
            # candidate indexes through the pool listeners.
            pipeline.pool.add(ctx)
        pipeline.arrivals = ckpt.arrivals
        pipeline.uses = ckpt.uses
        driver = self.driver
        driver.clock.advance_to(ckpt.clock_now)
        driver.scheduler.restore(ckpt.scheduler)
        driver.delivered = list(ckpt.driver_delivered)
        if ckpt.ingress is not None and driver.ingress is not None:
            driver.ingress.restore(ckpt.ingress)
        self.events.extend(ckpt.events)
        self.total = ckpt.total
        self.last_batch_index = ckpt.batch_index
        self.elapsed_before = ckpt.elapsed_s

    def checkpoint(self) -> ShardCheckpoint:
        """Snapshot the current state (after a fully applied batch).

        The snapshot aliases live objects; callers serialize it
        immediately (the ack queue pickles at ``put`` time), which is
        what makes it a point-in-time copy.
        """
        pipeline = self.pipeline
        resolution = pipeline.resolution
        driver = self.driver
        return ShardCheckpoint(
            shard_id=self.spec.shard_id,
            batch_index=self.last_batch_index,
            total=self.total,
            elapsed_s=self.elapsed_before
            + (time.perf_counter() - self.started),
            strategy=resolution.strategy,
            log=resolution.log,
            detect_calls=getattr(resolution.detector, "detect_calls", 0),
            pool_contexts=pipeline.pool.contents(),
            arrivals=pipeline.arrivals,
            uses=pipeline.uses,
            clock_now=driver.clock.now(),
            scheduler=driver.scheduler.snapshot(),
            driver_delivered=list(driver.delivered),
            events=list(self.events),
            ingress=(
                driver.ingress.snapshot()
                if driver.ingress is not None
                else None
            ),
        )

    # -- batch application ---------------------------------------------------

    def process_batch(
        self,
        index: int,
        batch: Sequence[Context],
        mid_hook: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Apply one batch; returns ``False`` for an already-applied
        index (idempotent re-entry after replay)."""
        if index <= self.last_batch_index:
            return False
        telemetry = self.telemetry
        with telemetry.span(
            "engine.batch", shard=self.spec.shard_id, size=len(batch)
        ):
            batch_started = time.perf_counter()
            half = len(batch) // 2
            if self.spec.runtime_batch:
                position_hook = None
                if mid_hook is not None:

                    def position_hook(position: int) -> None:
                        if position == half:
                            mid_hook()

                receive_batch(self.driver, batch, position_hook=position_hook)
            else:
                for position, ctx in enumerate(batch):
                    if mid_hook is not None and position == half:
                        mid_hook()
                    self.driver.receive(ctx)
            if self._batch_histogram is not None:
                self._batch_histogram.observe(
                    time.perf_counter() - batch_started
                )
        self.total += len(batch)
        self.last_batch_index = index
        return True

    def finish(self) -> ShardRunResult:
        """Flush pending uses and stats; the shard's final result."""
        self.driver.flush_uses()
        elapsed = self.elapsed_before + (time.perf_counter() - self.started)
        pipeline = self.pipeline
        pipeline.flush_stats()
        self.telemetry.registry.gauge(
            "engine_shard_elapsed_seconds",
            help="Wall-clock seconds the shard spent on its sub-stream",
            labels={"shard": str(self.spec.shard_id)},
        ).set(elapsed)
        log = pipeline.resolution.log
        stats = {
            "contexts": float(self.total),
            "detect_calls": float(pipeline.detect_calls()),
            "inconsistencies": float(len(log.detected)),
            "elapsed_s": elapsed,
        }
        ingress = self.driver.ingress
        if ingress is not None:
            stats["ingress_stale"] = float(ingress.stale)
            stats["ingress_duplicates"] = float(ingress.duplicates)
            stats["ingress_forced"] = float(ingress.forced)
        return ShardRunResult(
            shard_id=self.spec.shard_id,
            events=self.events,
            delivered=list(log.delivered),
            discarded=list(log.discarded),
            stats=stats,
            telemetry=self.telemetry.snapshot(),
        )


def _drive_substream(
    spec: ShardSpec,
    batches_for: Callable[[ShardPipeline], Iterable[Sequence[Context]]],
) -> ShardRunResult:
    """Run one shard over its sub-stream with shard-local windows.

    ``batches_for`` receives the freshly built pipeline (so a queue
    reader can time its waits against the pipeline's telemetry) and
    returns the batch iterable to drain.
    """
    state = ShardExecutionState(spec)
    for index, batch in enumerate(batches_for(state.pipeline)):
        state.process_batch(index, batch)
    return state.finish()


def run_shard_substream(
    spec: ShardSpec, contexts: Sequence[Context]
) -> ShardRunResult:
    """Process-pool entry point: one shard, its whole sub-stream."""
    return _drive_substream(spec, lambda _pipeline: [contexts])


def run_shard_from_queue(spec: ShardSpec, queue) -> ShardRunResult:
    """Process-pool entry point: one shard fed batches through a queue.

    ``queue`` is a (manager-proxied) bounded queue of context batches;
    ``None`` is the end-of-stream sentinel.  The bounded queue is what
    gives the engine backpressure: the router blocks once a shard falls
    ``max_queue_batches`` batches behind.  Time spent blocked in
    ``queue.get`` is recorded per shard (``engine_queue_wait_seconds``)
    -- the router-starvation signal the batch latency alone cannot
    show.
    """

    def batches(pipeline: ShardPipeline):
        telemetry = pipeline.telemetry
        wait_histogram = (
            telemetry.registry.histogram(
                "engine_queue_wait_seconds",
                help="Time the shard worker spent waiting on its queue",
                labels={"shard": str(spec.shard_id)},
            )
            if telemetry.enabled
            else None
        )
        while True:
            waited = time.perf_counter()
            batch = queue.get()
            if wait_histogram is not None:
                wait_histogram.observe(time.perf_counter() - waited)
            if batch is None:
                return
            yield batch

    return _drive_substream(spec, batches)


# -- supervised worker protocol ----------------------------------------------
#
# The supervisor (repro.engine.supervisor) feeds each worker
# ``(batch_index, contexts)`` items plus a ``None`` end-of-stream
# sentinel on a per-attempt work queue, and the worker reports back on
# one shared ack queue.  Every worker message carries ``(kind,
# shard_id, attempt, ...)`` so the supervisor can drop stale messages
# from terminated attempts:
#
# * ``("ready", sid, attempt)`` -- pipeline built, consuming.
# * ``("hb", sid, attempt, wall_time)`` -- heartbeat-thread liveness.
# * ``("ack", sid, attempt, batch_index, n_contexts, checkpoint|None)``
#   -- batch applied; a checkpoint rides along every
#   ``checkpoint_every``-th batch and lets the supervisor trim its
#   replay log.
# * ``("warn", sid, attempt, text)`` -- non-fatal condition (e.g. an
#   unpicklable checkpoint), logged by the supervisor.
# * ``("error", sid, attempt, batch_index, traceback_text)`` -- the
#   batch raised; the worker exits after sending.
# * ``("result", sid, attempt, ShardRunResult)`` -- final result after
#   the sentinel.


def _heartbeat_loop(ack_queue, shard_id, attempt, interval, stop) -> None:
    while not stop.wait(interval):
        try:
            ack_queue.put(("hb", shard_id, attempt, time.time()))
        except Exception:
            return  # parent gone; the worker is about to die anyway


def run_shard_supervised(
    spec: ShardSpec,
    work_queue,
    ack_queue,
    fault,
    attempt: int = 0,
    checkpoint: Optional[ShardCheckpoint] = None,
) -> None:
    """Worker-process entry point under supervision (process mode).

    Consumes ``(batch_index, contexts)`` items until the ``None``
    sentinel, acking each applied batch -- with a state checkpoint
    every ``fault.checkpoint_every`` batches -- and ships the final
    :class:`ShardRunResult` instead of returning it.  A respawned
    attempt restores ``checkpoint`` first and skips any replayed batch
    the checkpoint already contains (idempotent re-entry).
    """
    shard_id = spec.shard_id
    stop = threading.Event()
    if fault.heartbeat_interval_s > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(ack_queue, shard_id, attempt, fault.heartbeat_interval_s, stop),
            daemon=True,
        ).start()
    state: Optional[ShardExecutionState] = None
    try:
        state = ShardExecutionState(spec, checkpoint=checkpoint)
        ack_queue.put(("ready", shard_id, attempt))
        injector = spec.fault_injector
        while True:
            item = work_queue.get()
            if item is None:
                ack_queue.put(("result", shard_id, attempt, state.finish()))
                return
            index, batch = item
            if index <= state.last_batch_index:
                # Replayed batch already folded into the restored
                # state: ack without re-applying.
                ack_queue.put(("ack", shard_id, attempt, index, 0, None))
                continue
            mid_hook = None
            if injector is not None:
                injector(shard_id, index, attempt, "start")
                mid_hook = partial(injector, shard_id, index, attempt, "mid")
            state.process_batch(index, batch, mid_hook=mid_hook)
            ckpt = None
            if (
                fault.checkpoint_every
                and (index + 1) % fault.checkpoint_every == 0
            ):
                ckpt = state.checkpoint()
            try:
                ack_queue.put(
                    ("ack", shard_id, attempt, index, len(batch), ckpt)
                )
            except (pickle.PicklingError, TypeError, AttributeError) as error:
                # Unpicklable strategy state: keep running, but tell
                # the supervisor its replay log cannot be trimmed.
                ack_queue.put(
                    (
                        "warn",
                        shard_id,
                        attempt,
                        f"checkpoint not picklable ({type(error).__name__}: "
                        f"{error}); acking without checkpoint",
                    )
                )
                ack_queue.put(
                    ("ack", shard_id, attempt, index, len(batch), None)
                )
    except BaseException:
        try:
            failed_index = state.last_batch_index + 1 if state is not None else 0
            ack_queue.put(
                ("error", shard_id, attempt, failed_index, traceback.format_exc())
            )
        except Exception:
            pass  # supervisor will see the dead process instead
