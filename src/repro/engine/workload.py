"""Scalability workload and benchmark runner for the sharded engine.

The workload is built to have exactly the structure the scope analyzer
exploits: ``scope_groups`` independent families of context types, each
family coupled by a chain of two-variable consistency constraints over
adjacent types.  The single-pool middleware pays O(pool) bookkeeping
per arrival across *all* families (pool scans, checking-scope
filtering, per-type indexing); a shard only pays for its own family,
which is where the measured speedup comes from even before worker
processes add real parallelism on multi-core hosts.

Decisions are identical at every shard count (the equivalence property
the engine guarantees), so throughput is the only thing that varies.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..constraints.ast import Constraint, forall, pred
from ..core.context import Context
from .config import EngineConfig
from .facade import ShardedEngine

__all__ = ["scalability_workload", "run_scalability_bench"]


def scalability_workload(
    n_contexts: int = 2000,
    *,
    scope_groups: int = 4,
    types_per_group: int = 8,
    subjects_per_type: int = 4,
    time_horizon: float = 1e9,
    seed: int = 0,
) -> Tuple[List[Constraint], List[Context]]:
    """A stream plus constraints with ``scope_groups`` independent scopes.

    Context types are ``g{G}t{T}``; each group chains its types with
    ``forall a in t_i, forall b in t_{i+1} : same_subject(a, b) implies
    within_time(a, b, horizon)`` so union-find keeps the whole group in
    one scope while groups stay mutually independent.  The generous
    horizon keeps violations rare: the pool grows with the stream and
    per-arrival pool costs dominate, which is the regime the paper's
    middleware would face under sustained multi-user traffic.
    """
    if scope_groups < 1 or types_per_group < 2:
        raise ValueError("need >= 1 group and >= 2 types per group")
    constraints: List[Constraint] = []
    all_types: List[str] = []
    for group in range(scope_groups):
        types = [f"g{group}t{index}" for index in range(types_per_group)]
        all_types.extend(types)
        for index in range(types_per_group - 1):
            left, right = types[index], types[index + 1]
            constraints.append(
                Constraint(
                    name=f"chain-g{group}-{index}",
                    formula=forall(
                        "a",
                        left,
                        forall(
                            "b",
                            right,
                            pred("same_subject", "a", "b").implies(
                                pred("within_time", "a", "b", time_horizon)
                            ),
                        ),
                    ),
                    description=f"{left} and {right} reads of one subject "
                    f"must be within {time_horizon:g}s",
                )
            )

    contexts: List[Context] = []
    n_types = len(all_types)
    for index in range(n_contexts):
        ctx_type = all_types[index % n_types]
        subject = f"{ctx_type}-s{(index // n_types) % subjects_per_type}"
        contexts.append(
            Context(
                ctx_id=f"sc-{seed}-{index}",
                ctx_type=ctx_type,
                subject=subject,
                value=float(index),
                timestamp=float(index),
                source="scalability",
            )
        )
    return constraints, contexts


def run_scalability_bench(
    shard_counts: Sequence[int] = (1, 2, 4),
    *,
    n_contexts: int = 2000,
    use_window: int = 20,
    strategy: str = "drop-latest",
    mode: str = "inline",
    repeats: int = 2,
    seed: int = 0,
    workload: Optional[Tuple[List[Constraint], List[Context]]] = None,
    telemetry=None,
    kernels: bool = True,
    batch_kernels: bool = True,
) -> Dict[str, object]:
    """Measure engine throughput at each shard count on one workload.

    Returns a JSON-ready record: per-shard-count contexts/second (best
    of ``repeats``), the decision totals (identical across counts --
    asserted), and the headline speedup of the largest count over the
    smallest.  ``contexts_per_second`` is stored raw (floats are for
    comparing across commits); ``elapsed_s`` is rounded only because it
    is redundant with it.  An optional ``telemetry`` bundle
    (:class:`repro.obs.Telemetry`) is threaded into every engine run so
    the benchmark can emit a sidecar alongside the numbers.

    ``batch_kernels`` toggles columnar batched detection.  The
    scalability thresholds were calibrated on the per-context detection
    path, whose pool-scan cost is exactly what scope sharding removes;
    batched detection attacks that same cost directly, so measuring the
    sharding speedup with it enabled conflates the two optimizations --
    pass ``False`` to isolate the shard-count variable.
    """
    constraints, contexts = workload or scalability_workload(
        n_contexts, seed=seed
    )
    results: Dict[str, object] = {}
    signature = None
    for shards in shard_counts:
        config = EngineConfig(
            shards=shards,
            mode=mode,
            use_window=use_window,
            kernels=kernels,
            batch_kernels=batch_kernels,
        )
        best: Optional[float] = None
        last = None
        engine = None
        for _ in range(max(1, repeats)):
            engine = ShardedEngine(
                constraints,
                strategy=strategy,
                config=config,
                telemetry=telemetry,
            )
            last = engine.run(contexts)
            if best is None or last.metrics.elapsed_s < best:
                best = last.metrics.elapsed_s
        assert last is not None and best is not None and engine is not None
        decisions = (
            tuple(last.delivered_ids),
            tuple(sorted(last.discarded_ids)),
        )
        if signature is None:
            signature = decisions
        elif decisions != signature:
            raise AssertionError(
                f"decisions diverged at {shards} shards -- sharding bug"
            )
        results[str(shards)] = {
            "contexts_per_second": len(contexts) / best,
            "elapsed_s": round(best, 4),
            "delivered": len(last.delivered),
            "discarded": len(last.discarded),
            "independent_scopes": engine.partition.independent_scopes,
        }

    counts = sorted(int(k) for k in results)
    low, high = str(counts[0]), str(counts[-1])
    low_cps = results[low]["contexts_per_second"]  # type: ignore[index]
    high_cps = results[high]["contexts_per_second"]  # type: ignore[index]
    return {
        "workload": {
            "n_contexts": len(contexts),
            "strategy": strategy,
            "mode": mode,
            "use_window": use_window,
            "seed": seed,
            "kernels": kernels,
            "batch_kernels": batch_kernels,
        },
        "contexts_per_second_by_shards": results,
        "speedup": {
            f"{high}_shards_vs_{low}": round(
                float(high_cps) / float(low_cps), 2
            )
            if low_cps
            else 0.0
        },
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
