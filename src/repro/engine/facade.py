"""The engine facade: sharded, batched streaming resolution.

:class:`ShardedEngine` is the drop-in scalable counterpart of
:class:`~repro.middleware.manager.Middleware`: same constraints, same
strategies, same event vocabulary, same decisions -- but the pool, the
incremental checker and the strategy are instantiated once per
independent constraint scope, so disjoint scopes never pay for each
other's pool scans and can execute on separate worker processes.

Three execution modes (see :mod:`repro.engine.config`):

* ``inline`` -- one global control loop drives all shards through the
  exact use schedule of the single-pool middleware.  Deterministic,
  decision-identical for both window kinds; events stream live on
  ``engine.bus`` in global order.
* ``local`` -- each shard consumes its own sub-stream with shard-local
  windows, sequentially in-process.  The decomposition process mode
  uses, minus the processes.
* ``process`` -- shards run in *supervised* worker processes
  (:mod:`repro.engine.supervisor`), fed batches through queues under
  ack-based backpressure.  Worker failures are retried with backoff
  from checkpointed replay logs; a shard that exhausts its retry
  budget degrades to in-parent execution (or raises
  :class:`~repro.engine.supervisor.EngineWorkerError`) -- decisions
  are never dropped silently.  Falls back to ``local`` only when the
  multiprocessing substrate itself is unavailable.  Events are merged
  into deterministic timestamp order after the run and re-published on
  ``engine.bus``.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Iterable, List, Optional, Sequence

from ..constraints.ast import Constraint
from ..constraints.builtins import FunctionRegistry, standard_registry
from ..core.context import Context
from ..ledger import LedgerWriter, entries_from_events, merge_segments
from ..ledger import ruleset_document as build_ruleset_document
from ..ledger import ruleset_hash as hash_ruleset
from ..middleware.bus import ContextDelivered, ContextDiscarded, Event, EventBus
from ..obs.telemetry import Telemetry
from .config import EngineConfig
from .merge import EngineResult, merge_events
from .metrics import EngineMetrics
from .router import ContextRouter
from .scope import partition_constraints
from .shard import (
    ShardPipeline,
    ShardRunResult,
    ShardSpec,
    StreamDriver,
    run_shard_substream,
)
from .supervisor import ShardSupervisor

__all__ = ["ShardedEngine"]

_log = logging.getLogger("repro.engine")


class ShardedEngine:
    """Sharded streaming resolution over independent constraint scopes.

    Parameters
    ----------
    constraints:
        The consistency constraints to enforce (uniquely named).
    strategy:
        Registered strategy name instantiated once per shard; each
        shard owns an independent instance, which is safe because
        every inconsistency is confined to one scope group.
        Stochastic strategies (``drop-random``) are not decision-
        equivalent to the single-pool middleware -- the per-shard RNGs
        draw in a different order.
    strategy_kwargs:
        Keyword arguments for the strategy factory (must be picklable
        for process mode).
    registry_factory:
        Zero-argument callable building the predicate registry each
        shard's checker uses.  Must be a module-level callable for
        process mode; defaults to the standard library registry.
    config:
        Engine tunables (shards, mode, windows, batching).
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle.  When given, the
        shards' stage timers, spans and queue metrics land in it (and,
        in process mode, worker snapshots merge back into it).  The
        engine always keeps *some* bundle -- metrics are a view over
        its registry -- so omitting this only disables the hot-path
        span/histogram hooks, not the accounting.
    fault_injector:
        Optional chaos hook for the fault-injection tests: a picklable
        callable ``(shard_id, batch_index, attempt, phase)`` invoked
        inside process-mode workers around each batch (``phase`` is
        ``"start"`` or ``"mid"``).  Whatever it raises (or does --
        ``os._exit``, ``time.sleep``) is a *worker* fault for the
        supervisor to handle; it is never invoked in the parent, so
        degraded execution runs clean.  ``None`` in production.
    """

    def __init__(
        self,
        constraints: Iterable[Constraint],
        *,
        strategy: str = "drop-latest",
        strategy_kwargs: Optional[dict] = None,
        registry_factory: Callable[[], FunctionRegistry] = standard_registry,
        config: Optional[EngineConfig] = None,
        telemetry: Optional[Telemetry] = None,
        fault_injector: Optional[Callable[[int, int, int, str], None]] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.constraints = tuple(constraints)
        self.strategy_name = strategy
        self.strategy_kwargs = tuple(sorted((strategy_kwargs or {}).items()))
        self.registry_factory = registry_factory
        self.partition = partition_constraints(self.constraints, self.config.shards)
        self.router = ContextRouter(self.partition)
        #: Outward event stream (same vocabulary as ``Middleware.bus``).
        self.bus = EventBus()
        self.telemetry = telemetry
        self.fault_injector = fault_injector
        self._ruleset_hash: Optional[str] = None
        self._last_shard_results: Optional[Sequence[ShardRunResult]] = None

    # -- construction helpers ----------------------------------------------

    def shard_specs(self) -> List[ShardSpec]:
        telemetry_enabled = (
            self.telemetry.enabled if self.telemetry is not None else False
        )
        return [
            ShardSpec(
                shard_id=shard_id,
                constraints=self.partition.shard_constraints[shard_id],
                strategy=self.strategy_name,
                strategy_kwargs=self.strategy_kwargs,
                registry_factory=self.registry_factory,
                use_window=self.config.use_window,
                use_delay=self.config.use_delay,
                telemetry_enabled=telemetry_enabled,
                fault_injector=self.fault_injector,
                kernels=self.config.kernels,
                batch_kernels=self.config.batch_kernels,
                runtime_batch=self.config.runtime_batch,
                async_check=self.config.async_check,
            )
            for shard_id in range(self.config.shards)
        ]

    def ruleset_document(self) -> dict:
        """The run's full resolution configuration as a ledger ruleset.

        Covers everything that determines decisions -- constraint DSL
        texts, strategy + kwargs, window semantics, predicate registry
        -- and deliberately excludes decision-neutral execution knobs
        (kernels, mode, shard count), so a kernels-on and a kernels-off
        run of the same configuration share one ``ruleset_hash`` and
        stay diffable.
        """
        return build_ruleset_document(
            self.constraints,
            strategy=self.strategy_name,
            strategy_kwargs=dict(self.strategy_kwargs),
            use_window=self.config.use_window,
            use_delay=self.config.use_delay,
            registry_factory=self.registry_factory,
            async_check=(
                self.config.async_check.to_document()
                if self.config.async_check is not None
                else None
            ),
        )

    @property
    def ruleset_hash(self) -> str:
        """Hash of :meth:`ruleset_document` (cached; config is frozen)."""
        if self._ruleset_hash is None:
            self._ruleset_hash = hash_ruleset(self.ruleset_document())
        return self._ruleset_hash

    # -- open sessions -------------------------------------------------------

    def open_stream(self, *, telemetry: Optional[Telemetry] = None):
        """Open a push-style inline session (the serving entrypoint).

        Returns an :class:`~repro.engine.stream.EngineStream`: arrivals
        are submitted incrementally in batches, pending uses survive
        between submissions, and ``close()`` performs the end-of-stream
        flush.  Decisions are byte-identical to :meth:`run` over the
        same concatenated stream in inline mode.  ``telemetry``
        overrides the engine's bundle for this session.
        """
        from .stream import EngineStream  # local import: cycle

        return EngineStream(self, telemetry=telemetry)

    # -- running -------------------------------------------------------------

    def run(self, contexts: Iterable[Context]) -> EngineResult:
        """Resolve a whole stream; returns the aggregated result.

        ``contexts`` may be any iterable (including a lazy trace
        reader); inline and process modes consume it streamingly.
        """
        self.router.routed = {i: 0 for i in range(self.config.shards)}
        # Every run accounts into *some* registry; a caller-supplied
        # bundle keeps Prometheus counter semantics (cumulative across
        # runs), an implicit one is fresh per engine.
        telemetry = (
            self.telemetry if self.telemetry is not None else Telemetry.disabled()
        )
        telemetry.registry.gauge(
            "repro_ruleset_info",
            help="Resolution ruleset identity (value is always 1)",
            labels={"ruleset_hash": self.ruleset_hash},
        ).set(1.0)
        self._last_shard_results = None
        started = time.perf_counter()
        if self.config.mode == "inline":
            result = self._run_inline(contexts, telemetry)
        elif self.config.mode == "local":
            result = self._run_substreams(
                contexts, executed_mode="local", telemetry=telemetry
            )
        else:
            result = self._run_process(contexts, telemetry)
        # Ledger emission is part of the run, so its cost lands inside
        # elapsed_s -- the benchmark's overhead column stays honest.
        if self.config.ledger_path:
            self._write_ledger(result, telemetry)
        result.metrics.elapsed_s = time.perf_counter() - started
        return result

    def _write_ledger(self, result: EngineResult, telemetry: Telemetry) -> None:
        """Emit the run's decision ledger to ``config.ledger_path``.

        Inline runs convert the globally ordered event stream directly,
        attributing shards through the router's pure :meth:`shard_for`.
        Local/process runs convert each worker's own event list into a
        per-shard segment and k-way merge the segments -- the same
        deterministic ``(at, shard, seq)`` order ``merge_events``
        produced for the result itself.  (Recording live off the bus
        was measured as a wash against this post-hoc walk: the extra
        per-event subscriber dispatch costs what the warm-cache entry
        build saves.)
        """
        if self._last_shard_results is not None:
            entries = merge_segments(
                [
                    entries_from_events(r.events, shard_id=r.shard_id)
                    for r in self._last_shard_results
                ]
            )
        else:
            entries = entries_from_events(
                result.events, shard_of=self.router.shard_for
            )
        meta = {
            "host": "engine",
            "mode": result.metrics.mode,
            "shards": self.config.shards,
            "kernels": self.config.kernels,
            "batch_kernels": self.config.batch_kernels,
        }
        with LedgerWriter(
            self.config.ledger_path,
            self.ruleset_document(),
            meta=meta,
            fsync=self.config.ledger_fsync,
            buffer_entries=len(entries) + 1,
            telemetry=telemetry,
        ) as writer:
            # The entry dicts are freshly built above and discarded
            # after the write, so the defensive copy is skipped.
            writer.append_many(entries, copy=False)

    # -- inline (deterministic) mode -----------------------------------------

    def _run_inline(
        self, contexts: Iterable[Context], telemetry: Telemetry
    ) -> EngineResult:
        specs = self.shard_specs()
        pipelines: List[ShardPipeline] = []
        for spec in specs:
            # Inline shards share the engine's bundle: one registry,
            # one span ring, global ordering preserved.
            pipeline = spec.build(telemetry=telemetry)
            pipeline.bus = self.bus
            pipelines.append(pipeline)
        events: List[Event] = []
        self.bus.subscribe(Event, events.append)
        driver = StreamDriver(
            pipelines,
            self.router.route,
            use_window=self.config.use_window,
            use_delay=self.config.use_delay,
            async_check=self.config.async_check,
            batch_kernels=self.config.batch_kernels,
        )
        if self.config.runtime_batch:
            driver.receive_all(contexts)
        else:
            for ctx in contexts:
                driver.receive(ctx)
            driver.flush_uses()
        return self._collect_inline(pipelines, events, telemetry)

    def _collect_inline(
        self,
        pipelines: Sequence[ShardPipeline],
        events: List[Event],
        telemetry: Telemetry,
    ) -> EngineResult:
        delivered = [e.context for e in events if isinstance(e, ContextDelivered)]
        discarded = [e.context for e in events if isinstance(e, ContextDiscarded)]
        for pipeline in pipelines:
            pipeline.flush_stats()
        metrics = EngineMetrics.from_registry(
            telemetry.registry, mode="inline", shards=self.config.shards
        )
        return EngineResult(
            delivered=delivered,
            discarded=discarded,
            events=events,
            metrics=metrics,
        )

    # -- shard-local decomposition (local + process modes) ---------------------

    def _split(self, contexts: Iterable[Context]) -> List[List[Context]]:
        substreams: List[List[Context]] = [[] for _ in range(self.config.shards)]
        for ctx in contexts:
            substreams[self.router.route(ctx)].append(ctx)
        return substreams

    def _run_substreams(
        self,
        contexts: Iterable[Context],
        executed_mode: str,
        telemetry: Telemetry,
    ) -> EngineResult:
        specs = self.shard_specs()
        substreams = self._split(contexts)
        results = [
            run_shard_substream(spec, substream)
            for spec, substream in zip(specs, substreams)
        ]
        return self._collect_shard_results(results, executed_mode, telemetry)

    def _run_process(
        self, contexts: Iterable[Context], telemetry: Telemetry
    ) -> EngineResult:
        specs = self.shard_specs()
        try:
            supervisor = ShardSupervisor(
                specs, self.router.route, self.config, telemetry
            )
        except (ImportError, OSError, PermissionError) as error:
            # Only *unavailability* of the multiprocessing substrate is
            # absorbed here (restricted sandboxes without fork or
            # semaphores).  Worker failures are the supervisor's job:
            # logged, counted, retried from checkpoints, and -- past
            # the retry budget -- degraded or raised as
            # EngineWorkerError, never surfaced as silently missing
            # decisions.
            _log.warning(
                "process mode unavailable (%s: %s); running the same "
                "decomposition in-process",
                type(error).__name__,
                error,
            )
            return self._run_substreams(
                contexts, executed_mode="process-fallback", telemetry=telemetry
            )
        try:
            results = supervisor.run(contexts)
        finally:
            supervisor.close()
        return self._collect_shard_results(
            results, executed_mode="process", telemetry=telemetry
        )

    def _collect_shard_results(
        self,
        results: Sequence[ShardRunResult],
        executed_mode: str,
        telemetry: Telemetry,
    ) -> EngineResult:
        events = merge_events([r.events for r in results])
        # Kept for the ledger writer: per-shard event lists let it emit
        # per-shard segments and merge them deterministically instead of
        # re-deriving shard attribution from the merged stream.
        self._last_shard_results = results
        delivered = [e.context for e in events if isinstance(e, ContextDelivered)]
        discarded = [e.context for e in events if isinstance(e, ContextDiscarded)]
        # Workers accounted into their own registries; their snapshots
        # travelled back in the results.  Merge them here, then read
        # the totals from the one merged registry -- a worker that died
        # before flushing simply contributes nothing.
        for r in results:
            if r.telemetry is not None:
                telemetry.merge_snapshot(r.telemetry)
        metrics = EngineMetrics.from_registry(
            telemetry.registry, mode=executed_mode, shards=self.config.shards
        )
        for event in events:
            self.bus.publish(event)
        return EngineResult(
            delivered=delivered,
            discarded=discarded,
            events=events,
            metrics=metrics,
        )
