"""The RFID data anomalies application (paper Section 4.1, after Rao
et al.'s deferred RFID cleansing [14] and Jeffery et al.'s adaptive
RFID cleaning [8]).

Tagged items flow through a facility (dock -> staging -> shelves ->
checkout) and zone readers report their positions.  Raw RFID streams
are notoriously dirty -- cross reads, ghost reads, duplicates -- which
is exactly the anomaly workload the consistency constraints target.

Five consistency constraints (study coverage 81.5%) and three
situations are provided, plus the workload generator.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..constraints.ast import Constraint
from ..constraints.builtins import FunctionRegistry, standard_registry
from ..constraints.checker import ConstraintChecker
from ..constraints.parser import parse_constraint
from ..core.context import Context, ContextFactory
from ..sensing.environment import FloorPlan, warehouse_floor
from ..sensing.mobility import ZoneFlowWalker
from ..sensing.noise import ZoneNoiseModel
from ..sensing.rfid import ZoneReaderArray
from ..sensing.source import RFIDContextSource, merge_streams
from ..situations.library import entered, make_situation, value_in
from ..situations.situation import Situation

__all__ = ["RFIDAnomaliesApp"]

#: Read sampling period (s).
READ_PERIOD = 2.0

#: Monotone rank of each zone along the intended item flow.
FLOW_RANK: Dict[str, int] = {
    "dock": 0,
    "staging": 1,
    "shelf-A": 2,
    "shelf-B": 2,
    "shelf-C": 3,
    "shelf-D": 3,
    "checkout": 4,
}


class RFIDAnomaliesApp:
    """Bundles the RFID anomalies constraints, situations and workload."""

    CTX_READ = "rfid_read"

    def __init__(self, floor: Optional[FloorPlan] = None) -> None:
        self.floor = floor or warehouse_floor()

    # -- predicates --------------------------------------------------------

    def build_registry(self) -> FunctionRegistry:
        registry = standard_registry()
        floor = self.floor

        @registry.register("zones_compatible")
        def zones_compatible(a: Context, b: Context) -> bool:
            """Simultaneous reads of one tag must be in one physical
            place: same zone, or zones whose fields overlap (adjacent)."""
            zone_a, zone_b = str(a.value), str(b.value)
            if zone_a == zone_b:
                return True
            if zone_a not in floor.graph or zone_b not in floor.graph:
                return False
            return floor.graph.has_edge(zone_a, zone_b)

        @registry.register("zone_reachable")
        def zone_reachable(a: Context, b: Context) -> bool:
            """Consecutive reads must be in the same or adjacent zones
            (an item cannot teleport across the facility in one
            period)."""
            return zones_compatible(a, b)

        @registry.register("flow_order_ok")
        def flow_order_ok(earlier: Context, later: Context) -> bool:
            """Items never move backwards along the intended flow."""
            rank_earlier = FLOW_RANK.get(str(earlier.value))
            rank_later = FLOW_RANK.get(str(later.value))
            if rank_earlier is None or rank_later is None:
                return False
            return rank_later >= rank_earlier

        @registry.register("is_checkout")
        def is_checkout(ctx: Context) -> bool:
            return str(ctx.value) == "checkout"

        @registry.register("is_shelf_or_later")
        def is_shelf_or_later(ctx: Context) -> bool:
            rank = FLOW_RANK.get(str(ctx.value))
            return rank is not None and rank >= 2

        @registry.register("known_zone")
        def known_zone(ctx: Context) -> bool:
            return str(ctx.value) in FLOW_RANK

        return registry

    # -- the five consistency constraints ----------------------------------------

    def build_constraints(self) -> List[Constraint]:
        """The application's five consistency constraints.

        C1 forbids one tag in two distant places at once; C2 forbids
        teleporting between non-adjacent zones in one period; C3
        enforces monotone flow order; C4 forbids reads after checkout
        anywhere but checkout; C5 requires a checkout read to be
        preceded by a shelf-stage read (an existential constraint,
        exercising the checker beyond the prefix-universal fragment).
        """
        eps = 0.5
        adjacent_gap = READ_PERIOD * 1.5
        horizon = READ_PERIOD * 6
        t = self.CTX_READ
        return [
            parse_constraint(
                "rf-single-location",
                f"forall r1 in {t}, forall r2 in {t} : "
                f"(same_subject(r1, r2) and distinct(r1, r2) "
                f"and within_time(r1, r2, {eps})) "
                f"implies zones_compatible(r1, r2)",
                description="One tag is in one physical place at a time.",
            ),
            parse_constraint(
                "rf-no-teleport",
                f"forall r1 in {t}, forall r2 in {t} : "
                f"(same_subject(r1, r2) and before(r1, r2) "
                f"and within_time(r1, r2, {adjacent_gap})) "
                f"implies zone_reachable(r1, r2)",
                description=(
                    "Consecutive reads of a tag are in the same or "
                    "adjacent zones."
                ),
            ),
            parse_constraint(
                "rf-flow-order",
                f"forall r1 in {t}, forall r2 in {t} : "
                f"(same_subject(r1, r2) and before(r1, r2) "
                f"and within_time(r1, r2, {horizon})) "
                f"implies flow_order_ok(r1, r2)",
                description="Items never move backwards along the flow.",
            ),
            parse_constraint(
                "rf-no-reappear",
                f"forall r1 in {t}, forall r2 in {t} : "
                f"(same_subject(r1, r2) and before(r1, r2) "
                f"and is_checkout(r1)) "
                f"implies is_checkout(r2)",
                description="A checked-out item is never read elsewhere.",
            ),
            parse_constraint(
                "rf-checkout-provenance",
                f"forall r1 in {t} : is_checkout(r1) implies "
                f"(exists r2 in {t} : same_subject(r1, r2) "
                f"and before(r2, r1) and is_shelf_or_later(r2))",
                description=(
                    "A checkout read is preceded by a shelf-stage read of "
                    "the same item."
                ),
            ),
        ]

    def build_checker(
        self, incremental: bool = True, kernels: bool = True
    ) -> ConstraintChecker:
        return ConstraintChecker(
            self.build_constraints(),
            registry=self.build_registry(),
            incremental=incremental,
            kernels=kernels,
        )

    # -- the three situations ------------------------------------------------------

    def build_situations(self) -> List[Situation]:
        """The application's three situations (study coverage 81.5%)."""
        return [
            make_situation(
                "rf-arrived",
                entered(self.CTX_READ, "staging"),
                description="An item moved from the dock into staging.",
            ),
            make_situation(
                "rf-shelved",
                value_in(
                    self.CTX_READ, ["shelf-A", "shelf-B", "shelf-C", "shelf-D"]
                ),
                description="An item is on the sales floor (restock view).",
            ),
            make_situation(
                "rf-checked-out",
                entered(self.CTX_READ, "checkout"),
                description="An item reached checkout (billing event).",
            ),
        ]

    # -- workload ----------------------------------------------------------------

    def item_flow(self, rng: random.Random) -> List[str]:
        """A random intended flow for one item through the facility."""
        shelf_first = rng.choice(["shelf-A", "shelf-B"])
        shelf_second = {"shelf-A": "shelf-C", "shelf-B": "shelf-D"}[shelf_first]
        return ["dock", "staging", shelf_first, shelf_second, "checkout"]

    def generate_workload(
        self,
        err_rate: float,
        seed: int,
        *,
        items: int = 12,
        lifespan: float = 60.0,
    ) -> List[Context]:
        """One experiment group's RFID context stream.

        ``items`` tagged items each flow through the facility with
        staggered start times; their reads are noisy at ``err_rate``.
        """
        rng = random.Random(seed)
        factory = ContextFactory(prefix=f"rf{seed}")
        zones = list(FLOW_RANK)
        sources = []
        for index in range(items):
            tag = f"tag-{index:03d}"
            walker = ZoneFlowWalker(
                tag,
                self.floor,
                self.item_flow(rng),
                random.Random(rng.randrange(2**31)),
                period=READ_PERIOD,
                dwell_samples=(2, 5),
            )
            truth = walker.walk(start_time=index * READ_PERIOD * 1.5)
            readers = ZoneReaderArray(
                ZoneNoiseModel(
                    err_rate, zones, random.Random(rng.randrange(2**31))
                ),
                random.Random(rng.randrange(2**31)),
                miss_rate=0.04,
                duplicate_rate=0.04,
            )
            sources.append(
                RFIDContextSource(
                    readers.read_stream(truth),
                    factory,
                    name=f"readers-{tag}",
                    lifespan=lifespan,
                )
            )
        return merge_streams(*sources)

    def as_pack(self):
        """This application as a scenario pack (same constraints,
        registry, situations and workload; adds the pack surface --
        full-roster sweeps, inconsistency measures, ``repro packs``)."""
        from ..scenarios.packs.legacy import rfid_pack

        return rfid_pack()
