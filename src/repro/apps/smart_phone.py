"""The adaptive smart phone (the paper's Section 1 motivation).

"A smart phone would vibrate rather than beep in a concert hall to
avoid disturbing an ongoing performance, but would roar loudly in a
football match to draw its user's attention."  This application makes
that motivating example concrete: the phone consumes

* ``venue`` contexts -- which place its owner is in (from
  coarse-grained localization),
* ``noise`` contexts -- ambient sound-pressure samples (dB) from the
  microphone, and
* ``calendar`` contexts -- scheduled events with start/end times,

and adapts its ringer profile.  Five consistency constraints relate
the three context types (venue continuity, venue/noise plausibility,
noise continuity, calendar/venue agreement, single-venue), and three
situations drive the profile adaptation.

The module mirrors the structure of the two evaluated applications so
it plugs straight into the comparison harness, giving a third,
heterogeneous-context workload beyond the paper's two.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..constraints.ast import Constraint
from ..constraints.builtins import FunctionRegistry, standard_registry
from ..constraints.checker import ConstraintChecker
from ..constraints.parser import parse_constraint
from ..core.context import Context, ContextFactory
from ..situations.library import entered, make_situation, value_is
from ..situations.situation import Situation, SituationView

__all__ = ["SmartPhoneApp", "RingerController", "VENUES", "NOISE_BANDS"]

#: Sampling period for venue and noise contexts (s).
SAMPLE_PERIOD = 2.0

#: The venues of the phone owner's world; "street" connects everything
#: (you always transit through the street).
VENUES: Tuple[str, ...] = (
    "home",
    "street",
    "office",
    "cafe",
    "concert-hall",
    "stadium",
)

#: Plausible ambient noise band (dB) per venue.
NOISE_BANDS: Dict[str, Tuple[float, float]] = {
    "home": (20.0, 55.0),
    "street": (55.0, 85.0),
    "office": (30.0, 65.0),
    "cafe": (50.0, 80.0),
    "concert-hall": (60.0, 105.0),
    "stadium": (65.0, 110.0),
}

#: Which venues are compatible with which calendar event kinds
#: ("street" is always allowed: the owner may be in transit).
EVENT_VENUES: Dict[str, Tuple[str, ...]] = {
    "concert": ("concert-hall", "street"),
    "match": ("stadium", "street"),
    "meeting": ("office", "street"),
    "free": VENUES,
}


def _venue_graph() -> "nx.Graph":
    graph = nx.Graph()
    graph.add_nodes_from(VENUES)
    for venue in VENUES:
        if venue != "street":
            graph.add_edge(venue, "street")
    return graph


class SmartPhoneApp:
    """Bundles the smart-phone constraints, situations and workload."""

    CTX_VENUE = "venue"
    CTX_NOISE = "noise"
    CTX_CALENDAR = "calendar"

    def __init__(self, owner: str = "peter") -> None:
        self.owner = owner
        self.graph = _venue_graph()

    # -- predicates ----------------------------------------------------------

    def build_registry(self) -> FunctionRegistry:
        registry = standard_registry()
        graph = self.graph

        @registry.register("venues_reachable")
        def venues_reachable(a: Context, b: Context) -> bool:
            """Consecutive venues are identical or share an edge."""
            venue_a, venue_b = str(a.value), str(b.value)
            if venue_a == venue_b:
                return True
            if venue_a not in graph or venue_b not in graph:
                return False
            return graph.has_edge(venue_a, venue_b)

        @registry.register("noise_plausible")
        def noise_plausible(noise: Context, venue: Context) -> bool:
            """The sampled dB level fits the venue's ambient band."""
            band = NOISE_BANDS.get(str(venue.value))
            if band is None:
                return False
            low, high = band
            try:
                level = float(noise.value)
            except (TypeError, ValueError):
                return False
            return low <= level <= high

        @registry.register("noise_step_le")
        def noise_step_le(a: Context, b: Context, max_step: float) -> bool:
            """Ambient level cannot jump arbitrarily between samples."""
            try:
                return abs(float(a.value) - float(b.value)) <= max_step
            except (TypeError, ValueError):
                return False

        @registry.register("event_active")
        def event_active(event: Context, other: Context) -> bool:
            start = event.attr("start", event.timestamp)
            end = event.attr("end", event.expiry)
            return start <= other.timestamp <= end

        @registry.register("venue_matches_event")
        def venue_matches_event(event: Context, venue: Context) -> bool:
            allowed = EVENT_VENUES.get(str(event.value), VENUES)
            return str(venue.value) in allowed

        return registry

    # -- the five consistency constraints --------------------------------------

    def build_constraints(self) -> List[Constraint]:
        adjacent_gap = SAMPLE_PERIOD * 1.5
        eps = 0.5
        v, n, c = self.CTX_VENUE, self.CTX_NOISE, self.CTX_CALENDAR
        return [
            parse_constraint(
                "sp-venue-no-teleport",
                f"forall v1 in {v}, forall v2 in {v} : "
                f"(same_subject(v1, v2) and before(v1, v2) "
                f"and within_time(v1, v2, {adjacent_gap})) "
                f"implies venues_reachable(v1, v2)",
                description="The owner cannot jump between venues.",
            ),
            parse_constraint(
                "sp-noise-venue-agreement",
                f"forall s in {n}, forall v1 in {v} : "
                f"(same_subject(s, v1) and within_time(s, v1, {eps})) "
                f"implies noise_plausible(s, v1)",
                description=(
                    "A synchronous microphone sample fits the venue's "
                    "ambient noise band."
                ),
            ),
            parse_constraint(
                "sp-noise-continuity",
                f"forall s1 in {n}, forall s2 in {n} : "
                f"(same_subject(s1, s2) and before(s1, s2) "
                f"and within_time(s1, s2, {adjacent_gap})) "
                f"implies noise_step_le(s1, s2, 60.0)",
                description="Ambient level changes are bounded per step.",
            ),
            parse_constraint(
                "sp-calendar-venue-agreement",
                f"forall e in {c}, forall v1 in {v} : "
                f"(same_subject(e, v1) and event_active(e, v1)) "
                f"implies venue_matches_event(e, v1)",
                description=(
                    "During a scheduled event the owner is at the "
                    "event's venue (or in transit)."
                ),
            ),
            parse_constraint(
                "sp-single-venue",
                f"forall v1 in {v}, forall v2 in {v} : "
                f"(same_subject(v1, v2) and distinct(v1, v2) "
                f"and within_time(v1, v2, {eps})) "
                f"implies venues_reachable(v1, v2)",
                description="One owner is in one venue at a time.",
            ),
        ]

    def build_checker(
        self, incremental: bool = True, kernels: bool = True
    ) -> ConstraintChecker:
        return ConstraintChecker(
            self.build_constraints(),
            registry=self.build_registry(),
            incremental=incremental,
            kernels=kernels,
        )

    # -- the three situations -----------------------------------------------------

    def build_situations(self) -> List[Situation]:
        return [
            make_situation(
                "sp-silent-mode",
                entered(self.CTX_VENUE, "concert-hall", subject=self.owner),
                description="Entered the concert hall: vibrate only.",
            ),
            make_situation(
                "sp-loud-mode",
                entered(self.CTX_VENUE, "stadium", subject=self.owner),
                description="Entered the stadium: ring at full volume.",
            ),
            make_situation(
                "sp-quiet-surroundings",
                self._quiet_trigger,
                description=(
                    "Ambient level is low at home/office: soften the "
                    "ringer."
                ),
            ),
        ]

    def _quiet_trigger(self, ctx: Context, view: SituationView) -> bool:
        if ctx.ctx_type != self.CTX_NOISE or ctx.subject != self.owner:
            return False
        try:
            level = float(ctx.value)
        except (TypeError, ValueError):
            return False
        if level >= 40.0:
            return False
        recent = view.recent(ctx_type=self.CTX_VENUE, subject=self.owner, limit=1)
        return bool(recent) and recent[-1].value in ("home", "office")

    # -- workload -----------------------------------------------------------------

    def daily_schedule(self, rng: random.Random) -> List[Tuple[str, int, str]]:
        """Legs of the owner's day: (venue, samples, calendar kind)."""
        outing = rng.choice(
            [("concert-hall", "concert"), ("stadium", "match")]
        )
        legs = [
            ("home", rng.randint(4, 8), "free"),
            ("street", rng.randint(2, 4), "free"),
            ("office", rng.randint(6, 12), "meeting"),
            ("street", rng.randint(2, 4), "free"),
            ("cafe", rng.randint(3, 6), "free"),
            ("street", rng.randint(2, 4), "free"),
            (outing[0], rng.randint(6, 12), outing[1]),
            ("street", rng.randint(2, 4), "free"),
            ("home", rng.randint(3, 6), "free"),
        ]
        return legs

    def generate_workload(
        self,
        err_rate: float,
        seed: int,
        *,
        days: int = 1,
        lifespan: float = 60.0,
    ) -> List[Context]:
        """Venue + noise + calendar contexts for the owner's day(s).

        Corruption model: a venue context misreports a uniformly random
        other venue; a noise context reports a uniformly random level
        in [0, 115] dB.  Calendar contexts come from the owner's own
        schedule and are always correct (the paper's constraints are
        correct, and so are the user's appointments).
        """
        rng = random.Random(seed)
        factory = ContextFactory(prefix=f"sp{seed}")
        contexts: List[Context] = []
        t = 0.0
        for _ in range(days):
            for venue, samples, event_kind in self.daily_schedule(rng):
                leg_start, leg_end = t, t + samples * SAMPLE_PERIOD
                if event_kind != "free":
                    contexts.append(
                        factory.make(
                            self.CTX_CALENDAR,
                            self.owner,
                            event_kind,
                            leg_start,
                            lifespan=max(lifespan, leg_end - leg_start + 10),
                            source="calendar",
                            attributes={"start": leg_start, "end": leg_end},
                        )
                    )
                for _ in range(samples):
                    if rng.random() < err_rate:
                        wrong = rng.choice([x for x in VENUES if x != venue])
                        contexts.append(
                            factory.make(
                                self.CTX_VENUE,
                                self.owner,
                                wrong,
                                t,
                                lifespan=lifespan,
                                source="localizer",
                                corrupted=True,
                            )
                        )
                    else:
                        contexts.append(
                            factory.make(
                                self.CTX_VENUE,
                                self.owner,
                                venue,
                                t,
                                lifespan=lifespan,
                                source="localizer",
                            )
                        )
                    low, high = NOISE_BANDS[venue]
                    if rng.random() < err_rate:
                        contexts.append(
                            factory.make(
                                self.CTX_NOISE,
                                self.owner,
                                round(rng.uniform(0.0, 115.0), 1),
                                t + 0.1,
                                lifespan=lifespan,
                                source="microphone",
                                corrupted=True,
                            )
                        )
                    else:
                        margin = (high - low) * 0.15
                        contexts.append(
                            factory.make(
                                self.CTX_NOISE,
                                self.owner,
                                round(rng.uniform(low + margin, high - margin), 1),
                                t + 0.1,
                                lifespan=lifespan,
                                source="microphone",
                            )
                        )
                    t += SAMPLE_PERIOD
        contexts.sort(key=lambda ctx: (ctx.timestamp, ctx.ctx_id))
        return contexts

    def as_pack(self):
        """This application as a scenario pack (same constraints,
        registry, situations and workload; adds the pack surface --
        full-roster sweeps, inconsistency measures, ``repro packs``)."""
        from ..scenarios.packs.legacy import smart_phone_pack

        return smart_phone_pack()


@dataclass
class RingerController:
    """The adaptive behaviour: which ringer profile is active.

    Subscribed to delivered venue contexts, it keeps the profile in
    sync -- the paper's vibrate-in-concert / roar-in-stadium example.
    """

    owner: str
    profile: str = "normal"
    changes: List[Tuple[float, str]] = field(default_factory=list)

    PROFILES: Dict[str, str] = field(
        default_factory=lambda: {
            "concert-hall": "vibrate",
            "stadium": "loud",
            "office": "quiet",
            "home": "normal",
            "cafe": "normal",
            "street": "normal",
        }
    )

    def on_context(self, ctx: Context) -> None:
        if ctx.ctx_type != SmartPhoneApp.CTX_VENUE or ctx.subject != self.owner:
            return
        new_profile = self.PROFILES.get(str(ctx.value), "normal")
        if new_profile != self.profile:
            self.profile = new_profile
            self.changes.append((ctx.timestamp, new_profile))
