"""The Call Forwarding application (paper Section 4.1, after Want et
al.'s Active Badge Location System [15]).

Staff wear badges; rooms have infrared sensors; incoming calls are
forwarded to the phone nearest the callee's current location.  The
application consumes two context types:

* ``badge`` -- room-level sightings of each person, and
* ``location`` -- coordinate estimates of the tracked person ("Peter")
  from a location tracking application (the Figure 1 pipeline).

Five consistency constraints (the "popular" constraints of the
authors' user study [19], Section 4.1 -- coverage 70.8%) and three
situations are provided, together with the workload generator that
plays the paper's "client thread with a controlled error rate".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..constraints.ast import Constraint
from ..constraints.builtins import FunctionRegistry, standard_registry
from ..constraints.checker import ConstraintChecker
from ..constraints.parser import parse_constraint
from ..core.context import Context, ContextFactory
from ..sensing.badge import BadgeSensorNetwork
from ..sensing.environment import FloorPlan, office_floor
from ..sensing.mobility import RandomWaypointWalker
from ..sensing.noise import LocationNoiseModel, RoomNoiseModel
from ..sensing.source import (
    BadgeContextSource,
    TrackedLocationSource,
    merge_streams,
)
from ..situations.library import co_located, entered, make_situation, value_is
from ..situations.situation import Situation

__all__ = ["CallForwardingApp", "ForwardingController"]

#: Walking speed (m/s) and the paper's 150% error-tolerance bound.
WALK_SPEED = 1.2
VELOCITY_BOUND = 1.5 * WALK_SPEED
#: Location sampling period (s).
SAMPLE_PERIOD = 2.0
#: How far outside a room's walls a coordinate may fall and still be
#: considered "in" that room by the badge-agreement constraint.  Benign
#: measurement jitter can push a reading just across a wall into a room
#: that shares no door; corrupted displacements (>= 3 m) stay detectable.
BOUNDARY_TOLERANCE = 1.0


class CallForwardingApp:
    """Bundles the Call Forwarding constraints, situations and workload.

    Parameters
    ----------
    floor:
        The office floor plan; defaults to
        :func:`~repro.sensing.environment.office_floor`.
    tracked_subject:
        The person whose coordinates are tracked ("peter").
    colleague:
        A second badge wearer for the co-location situation ("alice").
    """

    CTX_LOCATION = "location"
    CTX_BADGE = "badge"

    def __init__(
        self,
        floor: Optional[FloorPlan] = None,
        tracked_subject: str = "peter",
        colleague: str = "alice",
        office: str = "office-2",
    ) -> None:
        self.floor = floor or office_floor()
        self.tracked_subject = tracked_subject
        self.colleague = colleague
        self.office = office

    # -- predicates --------------------------------------------------------

    def build_registry(self) -> FunctionRegistry:
        """The standard registry extended with floor-aware predicates."""
        registry = standard_registry()
        floor = self.floor

        @registry.register("in_feasible_area")
        def in_feasible_area(ctx: Context) -> bool:
            """A coordinate context must fall inside (or within
            BOUNDARY_TOLERANCE of) some room.

            The tolerance keeps the constraint *correct* (Heuristic
            Rule 1): benign measurement jitter can push an expected
            reading just across the building's outer wall, while
            corrupted displacements (>= 3 m) land well outside it.
            """
            try:
                point = ctx.position
            except TypeError:
                return False
            if floor.room_at(point) is not None:
                return True
            x, y = point
            for rect in floor.rooms():
                dx = max(rect.x0 - x, 0.0, x - rect.x1)
                dy = max(rect.y0 - y, 0.0, y - rect.y1)
                if dx * dx + dy * dy <= BOUNDARY_TOLERANCE**2:
                    return True
            return False

        @registry.register("rooms_reachable")
        def rooms_reachable(a: Context, b: Context) -> bool:
            """Two consecutive badge rooms must be equal or share a door."""
            room_a, room_b = str(a.value), str(b.value)
            if room_a == room_b:
                return True
            if room_a not in floor.graph or room_b not in floor.graph:
                return False
            return floor.graph.has_edge(room_a, room_b)

        @registry.register("location_matches_badge")
        def location_matches_badge(location: Context, badge: Context) -> bool:
            """A coordinate must lie in (or next to) the badge's room."""
            try:
                point = location.position
            except TypeError:
                return False
            badge_room = str(badge.value)
            room = floor.room_at(point)
            if room is not None:
                if room.name == badge_room:
                    return True
                if badge_room in floor.graph and floor.graph.has_edge(
                    room.name, badge_room
                ):
                    return True
            # Boundary tolerance: benign jitter can land a reading just
            # across a wall into a room that shares no door with the
            # badge's.  Accept it while the point stays within
            # BOUNDARY_TOLERANCE of the badge room's rectangle.
            if badge_room not in floor.graph:
                return False
            rect = floor.room(badge_room)
            x, y = point
            dx = max(rect.x0 - x, 0.0, x - rect.x1)
            dy = max(rect.y0 - y, 0.0, y - rect.y1)
            return dx * dx + dy * dy <= BOUNDARY_TOLERANCE**2

        return registry

    # -- the five consistency constraints ----------------------------------

    def build_constraints(self) -> List[Constraint]:
        """The application's five consistency constraints.

        C1/C2 are the paper's running velocity constraints over
        adjacent and one-separated location pairs; C3 is the feasible
        area check; C4 and C5 relate badge sightings to each other and
        to tracked coordinates (cross-type inconsistencies, showing
        the strategy's generic reliability beyond location pairs).
        """
        adjacent_gap = SAMPLE_PERIOD * 1.5
        separated_gap = SAMPLE_PERIOD * 2.5
        return [
            parse_constraint(
                "cf-velocity-adjacent",
                f"forall l1 in {self.CTX_LOCATION}, "
                f"forall l2 in {self.CTX_LOCATION} : "
                f"(same_subject(l1, l2) and before(l1, l2) "
                f"and within_time(l1, l2, {adjacent_gap})) "
                f"implies velocity_le(l1, l2, {VELOCITY_BOUND})",
                description=(
                    "Walking velocity estimated from adjacent tracked "
                    "locations stays below 150% of the average velocity."
                ),
            ),
            parse_constraint(
                "cf-velocity-separated",
                f"forall l1 in {self.CTX_LOCATION}, "
                f"forall l2 in {self.CTX_LOCATION} : "
                f"(same_subject(l1, l2) and before(l1, l2) "
                f"and within_time(l1, l2, {separated_gap}) "
                f"and not within_time(l1, l2, {adjacent_gap})) "
                f"implies velocity_le(l1, l2, {VELOCITY_BOUND})",
                description=(
                    "The Section 3.1 refinement: the velocity bound also "
                    "holds for location pairs separated by one "
                    "intermediate location."
                ),
            ),
            parse_constraint(
                "cf-feasible-area",
                f"forall l in {self.CTX_LOCATION} : in_feasible_area(l)",
                description="Tracked locations fall inside the building.",
            ),
            parse_constraint(
                "cf-badge-no-teleport",
                f"forall b1 in {self.CTX_BADGE}, forall b2 in {self.CTX_BADGE} : "
                f"(same_subject(b1, b2) and before(b1, b2) "
                f"and within_time(b1, b2, {adjacent_gap})) "
                f"implies rooms_reachable(b1, b2)",
                description=(
                    "Consecutive badge sightings of one person are in the "
                    "same or directly connected rooms."
                ),
            ),
            parse_constraint(
                "cf-badge-location-agreement",
                f"forall b in {self.CTX_BADGE}, forall l in {self.CTX_LOCATION} : "
                f"(same_subject(b, l) and within_time(b, l, 1.0)) "
                f"implies location_matches_badge(l, b)",
                description=(
                    "A badge sighting and a synchronous tracked coordinate "
                    "of the same person agree on the room."
                ),
            ),
        ]

    def build_checker(
        self, incremental: bool = True, kernels: bool = True
    ) -> ConstraintChecker:
        """A constraint checker loaded with this app's constraints."""
        return ConstraintChecker(
            self.build_constraints(),
            registry=self.build_registry(),
            incremental=incremental,
            kernels=kernels,
        )

    # -- the three situations ------------------------------------------------

    def build_situations(self) -> List[Situation]:
        """The application's three situations (study coverage 70.8%)."""
        return [
            make_situation(
                "cf-at-desk",
                value_is(self.CTX_BADGE, self.office, subject=self.tracked_subject),
                description=(
                    f"{self.tracked_subject} is at the desk: forward calls "
                    f"to the {self.office} phone."
                ),
            ),
            make_situation(
                "cf-in-meeting",
                entered(self.CTX_BADGE, "meeting", subject=self.tracked_subject),
                description=(
                    f"{self.tracked_subject} entered the meeting room: "
                    f"forward calls to voicemail."
                ),
            ),
            make_situation(
                "cf-with-colleague",
                co_located(
                    self.CTX_BADGE,
                    self.tracked_subject,
                    self.colleague,
                    max_age=3.0 * SAMPLE_PERIOD,
                ),
                description=(
                    f"{self.tracked_subject} and {self.colleague} are in "
                    f"the same room: forward to the shared line."
                ),
            ),
        ]

    # -- workload ----------------------------------------------------------------

    def generate_workload(
        self,
        err_rate: float,
        seed: int,
        *,
        duration: float = 600.0,
        lifespan: float = 60.0,
    ) -> List[Context]:
        """One experiment group's context stream.

        Two walkers (the tracked person and the colleague) move around
        the floor; the tracked person additionally has a coordinate
        tracker.  All three sensing pipelines inject errors at
        ``err_rate``.
        """
        rng = random.Random(seed)
        factory = ContextFactory(prefix=f"cf{seed}")
        rooms = self.floor.room_names()

        peter_truth = RandomWaypointWalker(
            self.tracked_subject,
            self.floor,
            random.Random(rng.randrange(2**31)),
            speed=WALK_SPEED,
            period=SAMPLE_PERIOD,
            start_room=self.office,
        ).walk(duration)
        alice_truth = RandomWaypointWalker(
            self.colleague,
            self.floor,
            random.Random(rng.randrange(2**31)),
            speed=WALK_SPEED,
            period=SAMPLE_PERIOD,
            start_room="office-3",
        ).walk(duration, start_time=SAMPLE_PERIOD / 2.0)

        location_source = TrackedLocationSource(
            peter_truth,
            LocationNoiseModel(
                err_rate,
                random.Random(rng.randrange(2**31)),
                jitter_sigma=0.15,
                displacement_range=(3.0, 9.0),
            ),
            factory,
            lifespan=lifespan,
        )
        peter_badges = BadgeSensorNetwork(
            RoomNoiseModel(err_rate, rooms, random.Random(rng.randrange(2**31))),
            random.Random(rng.randrange(2**31)),
        ).sightings(peter_truth)
        alice_badges = BadgeSensorNetwork(
            RoomNoiseModel(err_rate, rooms, random.Random(rng.randrange(2**31))),
            random.Random(rng.randrange(2**31)),
        ).sightings(alice_truth)

        return merge_streams(
            location_source,
            BadgeContextSource(
                peter_badges, factory, name="badge-peter", lifespan=lifespan
            ),
            BadgeContextSource(
                alice_badges, factory, name="badge-alice", lifespan=lifespan
            ),
        )

    def as_pack(self):
        """This application as a scenario pack (same constraints,
        registry, situations and workload; adds the pack surface --
        full-roster sweeps, inconsistency measures, ``repro packs``)."""
        from ..scenarios.packs.legacy import call_forwarding_pack

        return call_forwarding_pack()


@dataclass
class ForwardingController:
    """The adaptive behaviour: where calls are forwarded right now.

    Subscribed to delivered badge contexts, it keeps the forwarding
    target up to date -- the "adaptive behavior based on contexts" the
    metrics quantify.  Examples use it to show end-to-end behaviour.
    """

    subject: str
    office: str = "office-2"
    target: str = "reception"
    decisions: List[Tuple[float, str]] = field(default_factory=list)

    #: room kind/name -> forwarding target.
    ROUTING: Dict[str, str] = field(
        default_factory=lambda: {
            "meeting": "voicemail",
            "lab": "lab-phone",
            "lounge": "lounge-phone",
        }
    )

    def on_context(self, ctx: Context) -> None:
        if ctx.ctx_type != CallForwardingApp.CTX_BADGE or ctx.subject != self.subject:
            return
        room = str(ctx.value)
        if room == self.office:
            new_target = "desk-phone"
        else:
            new_target = self.ROUTING.get(room, "reception")
        if new_target != self.target:
            self.target = new_target
            self.decisions.append((ctx.timestamp, new_target))
