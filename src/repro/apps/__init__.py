"""The evaluated applications: Call Forwarding and RFID anomalies (the
paper's two), plus the smart-phone motivating example."""

from .call_forwarding import CallForwardingApp, ForwardingController
from .rfid_anomalies import RFIDAnomaliesApp
from .smart_phone import RingerController, SmartPhoneApp

__all__ = [
    "CallForwardingApp",
    "ForwardingController",
    "RFIDAnomaliesApp",
    "RingerController",
    "SmartPhoneApp",
]
