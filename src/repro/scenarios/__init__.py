"""Declarative scenario packs: data-driven workloads for the runtime.

A :class:`~repro.scenarios.spec.ScenarioPack` bundles everything one
context-aware application needs -- entities, sensing channels, phased
ground-truth behaviour, consistency constraints, situations, a strategy
roster and an expected-metrics envelope -- as *data* instead of a
bespoke module.  Packs are registered from Python
(:func:`~repro.scenarios.registry.register_pack`) or loaded from
TOML/JSON documents (:mod:`~repro.scenarios.serialize`), and a
:class:`~repro.scenarios.runner.PackRunner` drives any pack through the
Middleware host and every engine mode of the canonical runtime,
reporting the paper's Figure 9/10 counters plus Livshits-style
inconsistency measures per run.

The three legacy applications (:mod:`repro.apps`) are exposed as packs
(:mod:`repro.scenarios.packs.legacy`) with byte-identical decision
signatures against the recorded runtime goldens; new workloads ship as
TOML documents under ``repro/scenarios/packs/data/``.
"""

from .predicates import PREDICATE_KINDS, PredicateSpec
from .registry import (
    get_pack,
    load_pack_file,
    pack_names,
    register_pack,
    unregister_pack,
)
from .runner import PackRunner, PackRunResult, rank_strategies
from .serialize import (
    dumps_json,
    dumps_toml,
    loads_json,
    loads_toml,
    pack_from_document,
    pack_to_document,
)
from .spec import (
    FULL_ROSTER,
    ConstraintSpec,
    MetricsEnvelope,
    ScenarioPack,
    SituationSpec,
    validate_pack,
)
from .workload import ChannelSpec, PhaseSpec, WorkloadSpec

__all__ = [
    "PREDICATE_KINDS",
    "PredicateSpec",
    "ConstraintSpec",
    "SituationSpec",
    "MetricsEnvelope",
    "ScenarioPack",
    "FULL_ROSTER",
    "validate_pack",
    "ChannelSpec",
    "PhaseSpec",
    "WorkloadSpec",
    "pack_to_document",
    "pack_from_document",
    "dumps_json",
    "loads_json",
    "dumps_toml",
    "loads_toml",
    "register_pack",
    "unregister_pack",
    "get_pack",
    "pack_names",
    "load_pack_file",
    "PackRunner",
    "PackRunResult",
    "rank_strategies",
]
