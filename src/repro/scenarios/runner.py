"""PackRunner: drive any scenario pack through the canonical runtime.

One :meth:`PackRunner.run` plays one generated stream under one
strategy on one *host* -- the event-driven ``middleware`` or the
sharded engine in ``inline`` / ``local`` / ``process`` mode -- and
returns the paper's Figure 9/10 counters (:class:`GroupMetrics`)
together with the Livshits-style inconsistency measures of both the
raw stream and the delivered stream.  The delivered-stream measures
are the *residual* inconsistency a strategy let through to
applications: the principled ranking signal
:func:`rank_strategies` sorts by.

:meth:`PackRunner.sweep` is the one-invocation full-roster sweep
(ROADMAP item 4): every strategy of the pack's roster -- including the
stochastic ``drop-random`` and the preference-driven
``user-specified`` -- over every error rate, sharing streams per
(rate, group) cell so comparisons are like-with-like.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.context import Context
from ..engine import EngineConfig, ShardedEngine
from ..experiments.harness import default_strategy_factory
from ..experiments.metrics import (
    GroupMetrics,
    InconsistencyMeasures,
    measure_stream,
)
from ..middleware.bus import ContextDelivered, ContextDiscarded
from ..middleware.manager import Middleware
from ..situations.situation import SituationEngine
from .registry import get_pack
from .spec import ScenarioPack

__all__ = ["HOSTS", "PackRunResult", "PackRunner", "rank_strategies"]

#: Where a pack run can execute: the event-driven middleware or the
#: sharded engine in each of its modes.
HOSTS: Tuple[str, ...] = ("middleware", "inline", "local", "process")


def decision_signature(
    delivered_ids: Sequence[str], discarded_ids: Sequence[str]
) -> str:
    """The canonical decision digest (same form as the runtime goldens)."""
    blob = json.dumps(
        {"delivered": list(delivered_ids), "discarded": list(discarded_ids)},
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _strategy_kwargs(strategy: str, seed: int) -> Dict[str, Any]:
    """Engine-host strategy kwargs mirroring ``default_strategy_factory``."""
    if strategy == "drop-random":
        return {"rng": random.Random(seed ^ 0x5EED)}
    return {}


@dataclass(frozen=True)
class PackRunResult:
    """Everything one pack run produced."""

    pack: str
    strategy: str
    err_rate: float
    seed: int
    host: str
    kernels: bool
    metrics: GroupMetrics
    measures_raw: InconsistencyMeasures
    measures_delivered: InconsistencyMeasures
    delivered_ids: Tuple[str, ...]
    discarded_ids: Tuple[str, ...]

    def signature(self) -> str:
        """Decision digest, comparable against the recorded goldens."""
        return decision_signature(self.delivered_ids, self.discarded_ids)

    def as_record(self) -> Dict[str, Any]:
        """Plain-JSON row for reports and ``BENCH_engine.json``."""
        return {
            "pack": self.pack,
            "strategy": self.strategy,
            "err_rate": self.err_rate,
            "seed": self.seed,
            "host": self.host,
            "kernels": self.kernels,
            "delivered": len(self.delivered_ids),
            "discarded": len(self.discarded_ids),
            "survival_rate": self.metrics.survival_rate,
            "removal_precision": self.metrics.removal_precision,
            "situations_activated": self.metrics.situations_activated,
            "measures_raw": self.measures_raw.as_record(),
            "measures_delivered": self.measures_delivered.as_record(),
            "signature": self.signature(),
        }


class PackRunner:
    """Drives one scenario pack through the runtime hosts."""

    def __init__(
        self,
        pack: Union[ScenarioPack, str],
        *,
        telemetry=None,
        shards: int = 2,
    ) -> None:
        self.pack = get_pack(pack) if isinstance(pack, str) else pack
        self.telemetry = telemetry
        self.shards = shards

    # -- single run ---------------------------------------------------------

    def run(
        self,
        strategy: str = "drop-bad",
        *,
        err_rate: Optional[float] = None,
        seed: Optional[int] = None,
        host: str = "middleware",
        kernels: bool = True,
        use_window: Optional[int] = None,
        stream: Optional[Sequence[Context]] = None,
        ledger_path: Optional[str] = None,
        async_check=None,
        measures: bool = True,
    ) -> PackRunResult:
        """One stream, one strategy, one host.

        ``stream`` short-circuits workload generation so sweeps can
        replay the identical stream under every strategy;
        ``ledger_path`` records the run through the existing ledger
        plumbing (a :class:`~repro.ledger.service.LedgerService` on the
        middleware host, ``EngineConfig.ledger_path`` on engine hosts).
        ``measures=False`` skips the static Livshits measurement passes
        (they re-check the full stream, which benchmarks may not want
        inside a timed section).
        """
        if host not in HOSTS:
            raise ValueError(f"unknown host {host!r}; known: {HOSTS}")
        pack = self.pack
        err = pack.envelope.reference_err_rate if err_rate is None else err_rate
        run_seed = pack.default_seed if seed is None else seed
        window = pack.use_window if use_window is None else use_window
        contexts = (
            list(stream)
            if stream is not None
            else pack.generate_workload(err, run_seed)
        )
        if host == "middleware":
            delivered, discarded, detected, activations, spurious = (
                self._run_middleware(
                    strategy,
                    contexts,
                    seed=run_seed,
                    window=window,
                    kernels=kernels,
                    ledger_path=ledger_path,
                    async_check=async_check,
                )
            )
        else:
            delivered, discarded, detected, activations, spurious = (
                self._run_engine(
                    strategy,
                    contexts,
                    seed=run_seed,
                    window=window,
                    kernels=kernels,
                    mode=host,
                    ledger_path=ledger_path,
                    async_check=async_check,
                )
            )
        metrics = GroupMetrics(
            strategy=strategy,
            err_rate=err,
            seed=run_seed,
            contexts_total=len(contexts),
            contexts_corrupted=sum(1 for c in contexts if c.corrupted),
            contexts_used=len(delivered),
            contexts_used_corrupted=sum(1 for c in delivered if c.corrupted),
            situations_activated=activations,
            situations_spurious=spurious,
            inconsistencies_detected=detected,
            contexts_discarded=len(discarded),
            discarded_corrupted=sum(1 for c in discarded if c.corrupted),
            discarded_expected=sum(
                1 for c in discarded if not c.corrupted
            ),
        )
        if measures:
            measures_raw = measure_stream(
                pack.build_checker(incremental=False, kernels=kernels),
                contexts,
            )
            measures_delivered = measure_stream(
                pack.build_checker(incremental=False, kernels=kernels),
                delivered,
            )
        else:
            measures_raw = InconsistencyMeasures(
                universe=len(contexts),
                drastic=0,
                mi_count=0,
                problematic=0,
                repair=0,
            )
            measures_delivered = InconsistencyMeasures(
                universe=len(delivered),
                drastic=0,
                mi_count=0,
                problematic=0,
                repair=0,
            )
        result = PackRunResult(
            pack=pack.name,
            strategy=strategy,
            err_rate=err,
            seed=run_seed,
            host=host,
            kernels=kernels,
            metrics=metrics,
            measures_raw=measures_raw,
            measures_delivered=measures_delivered,
            delivered_ids=tuple(c.ctx_id for c in delivered),
            discarded_ids=tuple(c.ctx_id for c in discarded),
        )
        if measures:
            self._emit_telemetry(result)
        return result

    def _run_middleware(
        self,
        strategy: str,
        contexts: Sequence[Context],
        *,
        seed: int,
        window: int,
        kernels: bool,
        ledger_path: Optional[str],
        async_check,
    ):
        pack = self.pack
        middleware = Middleware(
            pack.build_checker(kernels=kernels),
            default_strategy_factory(strategy, seed),
            use_window=window,
            telemetry=self.telemetry,
            async_check=async_check,
        )
        if ledger_path is not None:
            from ..ledger.service import LedgerService

            middleware.plug_in(
                LedgerService(
                    ledger_path,
                    strategy_kwargs=_strategy_kwargs(strategy, seed),
                    registry_factory=pack.build_registry,
                    meta={"pack": pack.name},
                )
            )
        situations = SituationEngine(pack.build_situations())
        middleware.plug_in(situations)
        delivered: List[Context] = []
        discarded: List[Context] = []
        middleware.bus.subscribe(
            ContextDelivered, lambda e: delivered.append(e.context)
        )
        middleware.bus.subscribe(
            ContextDiscarded, lambda e: discarded.append(e.context)
        )
        middleware.receive_all(contexts)
        if ledger_path is not None:
            middleware.unplug("ledger")  # flush + seal the ledger file
        return (
            delivered,
            discarded,
            len(middleware.resolution.log.detected),
            situations.total_activations(),
            situations.total_spurious(),
        )

    def _run_engine(
        self,
        strategy: str,
        contexts: Sequence[Context],
        *,
        seed: int,
        window: int,
        kernels: bool,
        mode: str,
        ledger_path: Optional[str],
        async_check,
    ):
        pack = self.pack
        engine = ShardedEngine(
            pack.build_constraints(),
            strategy=strategy,
            strategy_kwargs=_strategy_kwargs(strategy, seed),
            registry_factory=pack.build_registry,
            config=EngineConfig(
                shards=self.shards,
                mode=mode,
                use_window=window,
                kernels=kernels,
                ledger_path=ledger_path,
                async_check=async_check,
            ),
        )
        result = engine.run(contexts)
        # Engine hosts have no plug-in bus; replay the delivered stream
        # through a post-hoc SituationEngine to recover the activation
        # counters (the delivered order is the engine's decision order).
        situations = SituationEngine(pack.build_situations())
        activations = spurious = 0
        for ctx in result.delivered:
            situations.view.push(ctx, ctx.timestamp)
            for situation in situations.situations:
                if situation.matches(ctx, situations.view):
                    activations += 1
                    if ctx.corrupted:
                        spurious += 1
        return (
            result.delivered,
            result.discarded,
            result.metrics.inconsistencies_total,
            activations,
            spurious,
        )

    def _emit_telemetry(self, result: PackRunResult) -> None:
        if self.telemetry is None or not getattr(
            self.telemetry, "enabled", False
        ):
            return
        registry = self.telemetry.registry
        for stream_name, measures in (
            ("raw", result.measures_raw),
            ("delivered", result.measures_delivered),
        ):
            for measure, value in (
                ("drastic", measures.drastic),
                ("mi_count", measures.mi_count),
                ("problematic", measures.problematic),
                ("repair", measures.repair),
            ):
                registry.gauge(
                    "pack_inconsistency_measure",
                    help=(
                        "Livshits-style inconsistency measures per "
                        "pack run"
                    ),
                    labels={
                        "pack": result.pack,
                        "strategy": result.strategy,
                        "host": result.host,
                        "stream": stream_name,
                        "measure": measure,
                    },
                ).set(float(value))

    # -- the full-roster sweep ---------------------------------------------

    def sweep(
        self,
        *,
        strategies: Optional[Sequence[str]] = None,
        err_rates: Optional[Sequence[float]] = None,
        groups: int = 2,
        host: str = "middleware",
        kernels: bool = True,
        base_seed: Optional[int] = None,
        measures: bool = True,
    ) -> List[PackRunResult]:
        """Every roster strategy x error rate x group, shared streams.

        Mirrors the harness grid: each (rate, group) cell generates one
        stream and every strategy replays it, so per-cell comparisons
        isolate the strategy.  Defaults come from the pack spec; the
        full roster includes ``drop-random`` and ``user-specified``.
        """
        pack = self.pack
        roster = tuple(strategies or pack.strategies)
        rates = tuple(err_rates or pack.err_rates)
        seed0 = pack.default_seed if base_seed is None else base_seed
        results: List[PackRunResult] = []
        for rate_index, err in enumerate(rates):
            for group in range(groups):
                seed = seed0 + rate_index * 1000 + group
                stream = pack.generate_workload(err, seed)
                for strategy in roster:
                    results.append(
                        self.run(
                            strategy,
                            err_rate=err,
                            seed=seed,
                            host=host,
                            kernels=kernels,
                            stream=stream,
                            measures=measures,
                        )
                    )
        return results


def rank_strategies(
    results: Sequence[PackRunResult],
) -> List[Dict[str, Any]]:
    """Rank a sweep's strategies by residual inconsistency.

    Primary key: mean delivered-stream problematic ratio (lower is
    better -- fewer inconsistency-involved contexts reached the
    application).  Tie-breaks: higher survival rate (keep more correct
    contexts), then name for determinism.
    """
    by_strategy: Dict[str, List[PackRunResult]] = {}
    for result in results:
        by_strategy.setdefault(result.strategy, []).append(result)
    rows: List[Dict[str, Any]] = []
    for strategy, runs in by_strategy.items():
        n = len(runs)
        rows.append(
            {
                "strategy": strategy,
                "runs": n,
                "residual_problematic_ratio": sum(
                    r.measures_delivered.problematic_ratio for r in runs
                )
                / n,
                "residual_mi": sum(
                    r.measures_delivered.mi_count for r in runs
                )
                / n,
                "residual_repair": sum(
                    r.measures_delivered.repair for r in runs
                )
                / n,
                "survival_rate": sum(
                    r.metrics.survival_rate for r in runs
                )
                / n,
                "removal_precision": sum(
                    r.metrics.removal_precision for r in runs
                )
                / n,
            }
        )
    rows.sort(
        key=lambda row: (
            row["residual_problematic_ratio"],
            -row["survival_rate"],
            row["strategy"],
        )
    )
    return rows
