"""TOML/JSON document form of portable scenario packs.

The document schema (version 1) is deliberately small and fully
canonical: ``pack_to_document`` always emits every settings key, so
``pack_from_document(pack_to_document(p)) == p`` holds exactly and the
hypothesis round-trip suite can assert equality rather than
approximation.

The standard library can *parse* TOML (:mod:`tomllib`) but not write
it, so this module carries a minimal emitter covering exactly the
document schema: tables, arrays of tables, nested sub-tables, arrays,
strings (raw UTF-8 with TOML-mandated escapes), bools, ints and finite
floats.
"""

from __future__ import annotations

import json
import tomllib
from typing import Any, Dict, List, Mapping, Optional

from .predicates import PredicateSpec, thaw_params
from .spec import ConstraintSpec, MetricsEnvelope, ScenarioPack, SituationSpec
from .workload import ChannelSpec, PhaseSpec, WorkloadSpec

__all__ = [
    "SCHEMA_VERSION",
    "pack_to_document",
    "pack_from_document",
    "dumps_json",
    "loads_json",
    "dumps_toml",
    "loads_toml",
]

SCHEMA_VERSION = 1


# -- pack <-> document --------------------------------------------------------


def pack_to_document(pack: ScenarioPack) -> Dict[str, Any]:
    """The canonical plain-data form of a portable pack."""
    if not pack.portable:
        raise ValueError(
            f"pack {pack.name!r} uses Python escape hatches and cannot "
            f"be serialized; register it from code instead"
        )
    assert pack.workload is not None
    envelope: Dict[str, Any] = {
        "min_contexts": pack.envelope.min_contexts,
        "min_raw_mi": pack.envelope.min_raw_mi,
        "max_residual_ratio": float(pack.envelope.max_residual_ratio),
        "reference_err_rate": float(pack.envelope.reference_err_rate),
    }
    if pack.envelope.max_contexts is not None:
        envelope["max_contexts"] = pack.envelope.max_contexts
    return {
        "schema": SCHEMA_VERSION,
        "name": pack.name,
        "title": pack.title,
        "description": pack.description,
        "settings": {
            "strategies": list(pack.strategies),
            "err_rates": [float(e) for e in pack.err_rates],
            "use_window": pack.use_window,
            "default_seed": pack.default_seed,
            "workload_kwargs": thaw_params(pack.workload_kwargs),
        },
        "envelope": envelope,
        "predicates": [
            {
                "name": p.name,
                "kind": p.kind,
                "description": p.description,
                "params": thaw_params(p.params),
            }
            for p in pack.predicates
        ],
        "constraints": [
            {
                "name": c.name,
                "formula": c.formula,
                "description": c.description,
            }
            for c in pack.constraint_specs
        ],
        "situations": [
            {
                "name": s.name,
                "kind": s.kind,
                "description": s.description,
                "params": thaw_params(s.params),
            }
            for s in pack.situation_specs
        ],
        "workload": _workload_to_document(pack.workload),
    }


def _workload_to_document(workload: WorkloadSpec) -> Dict[str, Any]:
    return {
        "id_prefix": workload.id_prefix,
        "subject_stagger": float(workload.subject_stagger),
        "subjects": list(workload.subjects),
        "channels": [
            {
                "name": c.name,
                "kind": c.kind,
                "period": float(c.period),
                "offset": float(c.offset),
                "lifespan": float(c.lifespan),
                "corruptible": c.corruptible,
                "states": list(c.states),
                "jitter": float(c.jitter),
                "corrupt_shift": [float(v) for v in c.corrupt_shift],
            }
            for c in workload.channels
        ],
        "phases": [
            {
                "name": p.name,
                "min_duration": float(p.min_duration),
                "max_duration": float(p.max_duration),
                "values": thaw_params(p.values),
            }
            for p in workload.phases
        ],
    }


def pack_from_document(doc: Mapping[str, Any]) -> ScenarioPack:
    """Rebuild a portable pack from its document form.

    Numeric fields are coerced (TOML distinguishes int/float; JSON
    hand-edits may not), so a document round-trips regardless of which
    syntax carried it.
    """
    schema = int(doc.get("schema", 0))
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported pack schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    settings = dict(doc.get("settings", {}))
    env_doc = dict(doc.get("envelope", {}))
    max_contexts: Optional[int] = (
        int(env_doc["max_contexts"]) if "max_contexts" in env_doc else None
    )
    workload_doc = doc.get("workload")
    if not isinstance(workload_doc, Mapping):
        raise ValueError("pack document has no [workload] table")
    return ScenarioPack(
        name=str(doc.get("name", "")),
        title=str(doc.get("title", "")),
        description=str(doc.get("description", "")),
        predicates=tuple(
            PredicateSpec(
                name=str(p["name"]),
                kind=str(p["kind"]),
                params=dict(p.get("params", {})),
                description=str(p.get("description", "")),
            )
            for p in doc.get("predicates", [])
        ),
        constraint_specs=tuple(
            ConstraintSpec(
                name=str(c["name"]),
                formula=str(c["formula"]),
                description=str(c.get("description", "")),
            )
            for c in doc.get("constraints", [])
        ),
        situation_specs=tuple(
            SituationSpec(
                name=str(s["name"]),
                kind=str(s["kind"]),
                params=dict(s.get("params", {})),
                description=str(s.get("description", "")),
            )
            for s in doc.get("situations", [])
        ),
        workload=_workload_from_document(workload_doc),
        strategies=tuple(str(s) for s in settings.get("strategies", [])),
        err_rates=tuple(float(e) for e in settings.get("err_rates", [])),
        use_window=int(settings.get("use_window", 10)),
        default_seed=int(settings.get("default_seed", 7)),
        envelope=MetricsEnvelope(
            min_contexts=int(env_doc.get("min_contexts", 1)),
            max_contexts=max_contexts,
            min_raw_mi=int(env_doc.get("min_raw_mi", 0)),
            max_residual_ratio=float(env_doc.get("max_residual_ratio", 1.0)),
            reference_err_rate=float(
                env_doc.get("reference_err_rate", 0.2)
            ),
        ),
        workload_kwargs=dict(settings.get("workload_kwargs", {})),
    )


def _workload_from_document(doc: Mapping[str, Any]) -> WorkloadSpec:
    return WorkloadSpec(
        subjects=tuple(str(s) for s in doc.get("subjects", [])),
        channels=tuple(
            ChannelSpec(
                name=str(c["name"]),
                kind=str(c.get("kind", "state")),
                period=float(c.get("period", 2.0)),
                offset=float(c.get("offset", 0.0)),
                lifespan=float(c.get("lifespan", 60.0)),
                corruptible=bool(c.get("corruptible", True)),
                states=tuple(str(s) for s in c.get("states", [])),
                jitter=float(c.get("jitter", 0.0)),
                corrupt_shift=tuple(
                    float(v) for v in c.get("corrupt_shift", (0.0, 0.0))
                ),
            )
            for c in doc.get("channels", [])
        ),
        phases=tuple(
            PhaseSpec(
                name=str(p["name"]),
                min_duration=float(p["min_duration"]),
                max_duration=float(p["max_duration"]),
                values=dict(p.get("values", {})),
            )
            for p in doc.get("phases", [])
        ),
        id_prefix=str(doc.get("id_prefix", "pk")),
        subject_stagger=float(doc.get("subject_stagger", 0.0)),
    )


# -- JSON ---------------------------------------------------------------------


def dumps_json(pack: ScenarioPack) -> str:
    return json.dumps(pack_to_document(pack), indent=2, sort_keys=True) + "\n"


def loads_json(text: str) -> ScenarioPack:
    return pack_from_document(json.loads(text))


# -- TOML ---------------------------------------------------------------------


def loads_toml(text: str) -> ScenarioPack:
    return pack_from_document(tomllib.loads(text))


def dumps_toml(pack: ScenarioPack) -> str:
    """Emit the pack document as TOML (see the module docstring)."""
    lines: List[str] = []
    _emit_table("", pack_to_document(pack), lines)
    return "\n".join(lines) + "\n"


def _is_table(value: Any) -> bool:
    return isinstance(value, Mapping)


def _is_table_array(value: Any) -> bool:
    return (
        isinstance(value, (list, tuple))
        and len(value) > 0
        and all(isinstance(item, Mapping) for item in value)
    )


def _format_string(value: str) -> str:
    # json.dumps escapes the quote, the backslash and controls < 0x20
    # (all as valid TOML escapes); ensure_ascii=False keeps non-ASCII
    # raw -- TOML \uXXXX escapes must be Unicode *scalar* values, and
    # ensure_ascii would emit astral characters as surrogate pairs.
    # DEL is the one control character json leaves literal.
    return json.dumps(value, ensure_ascii=False).replace("\x7f", "\\u007f")


def _format_key(key: str) -> str:
    if key and all(c.isalnum() or c in "_-" for c in key):
        return key
    return _format_string(key)


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite float {value!r} not supported")
        return repr(value)  # repr always carries '.' or an exponent
    if isinstance(value, str):
        return _format_string(value)
    if isinstance(value, Mapping):
        inner = ", ".join(
            f"{_format_key(str(k))} = {_format_value(v)}"
            for k, v in value.items()
        )
        return "{ " + inner + " }" if inner else "{}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(v) for v in value) + "]"
    raise TypeError(f"cannot emit {type(value).__name__} as TOML")


def _emit_table(path: str, table: Mapping[str, Any], lines: List[str]) -> None:
    plain = {
        k: v
        for k, v in table.items()
        if not _is_table(v) and not _is_table_array(v)
    }
    for key, value in plain.items():
        lines.append(f"{_format_key(str(key))} = {_format_value(value)}")
    for key, value in table.items():
        if _is_table(value):
            child = f"{path}.{_format_key(str(key))}" if path else _format_key(str(key))
            lines.append("")
            lines.append(f"[{child}]")
            _emit_table(child, value, lines)
    for key, value in table.items():
        if _is_table_array(value):
            child = f"{path}.{_format_key(str(key))}" if path else _format_key(str(key))
            for item in value:
                lines.append("")
                lines.append(f"[[{child}]]")
                _emit_table(child, item, lines)
