"""Phased declarative workload generator.

A pack's workload is a plain-data script: *subjects* move through a
sequence of *phases* (ground-truth behaviour windows with randomized
durations), and *channels* (one per context type) sample each subject's
current phase at a fixed period, injecting errors at the controlled
rate exactly like the paper's "client thread with a controlled error
rate" (Section 4.1).  The generator is fully deterministic from
``(err_rate, seed)``: one master RNG dealt per subject, fixed iteration
order, and a final ``(timestamp, ctx_id)`` sort.

Channel kinds:

* ``state`` -- categorical values from the channel's ``states``
  universe; a corrupted sample reports a uniformly chosen *different*
  state (the paper's room-swap / reader-swap error model).
* ``numeric`` -- the phase's level plus benign uniform jitter
  (``jitter``); a corrupted sample is additionally displaced by a
  magnitude drawn from ``corrupt_shift`` with random sign (the
  location-displacement error model, scalar-valued).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..core.context import Context, ContextFactory
from .predicates import freeze_params

__all__ = ["CHANNEL_KINDS", "ChannelSpec", "PhaseSpec", "WorkloadSpec"]

CHANNEL_KINDS = ("state", "numeric")


@dataclass(frozen=True)
class ChannelSpec:
    """One sensing channel: a context type sampled at a fixed period."""

    name: str
    kind: str = "state"
    period: float = 2.0
    #: Phase shift of the first sample (staggers channels off each other).
    offset: float = 0.0
    lifespan: float = 60.0
    #: Whether the error model applies; authoritative feeds (a calendar
    #: service, a badge master list) are modelled as incorruptible.
    corruptible: bool = True
    #: ``state`` channels: the value universe corruption draws from.
    states: Tuple[str, ...] = ()
    #: ``numeric`` channels: benign uniform noise half-width ...
    jitter: float = 0.0
    #: ... and the magnitude range of a corrupted displacement.
    corrupt_shift: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.kind not in CHANNEL_KINDS:
            raise ValueError(
                f"channel {self.name!r} has unknown kind {self.kind!r}"
            )
        if self.period <= 0:
            raise ValueError(f"channel {self.name!r} period must be > 0")
        if self.offset < 0:
            raise ValueError(f"channel {self.name!r} offset must be >= 0")
        if self.lifespan <= 0:
            raise ValueError(f"channel {self.name!r} lifespan must be > 0")
        object.__setattr__(
            self, "states", tuple(str(s) for s in self.states)
        )
        shift = tuple(float(v) for v in self.corrupt_shift)
        if len(shift) != 2 or shift[0] > shift[1] or shift[0] < 0:
            raise ValueError(
                f"channel {self.name!r} corrupt_shift must be "
                f"(low, high) with 0 <= low <= high, got {shift!r}"
            )
        object.__setattr__(self, "corrupt_shift", shift)
        if self.kind == "state" and self.corruptible and len(self.states) < 2:
            raise ValueError(
                f"corruptible state channel {self.name!r} needs >= 2 states "
                f"to draw corrupted values from"
            )


@dataclass(frozen=True)
class PhaseSpec:
    """One ground-truth behaviour window of the phase script.

    ``values`` maps channel name -> the channel's true value during the
    phase (a state name or a numeric level); a channel absent from the
    mapping is silent for the phase.  Each subject spends a uniformly
    drawn ``[min_duration, max_duration]`` seconds in the phase.
    """

    name: str
    min_duration: float
    max_duration: float
    values: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not 0 < self.min_duration <= self.max_duration:
            raise ValueError(
                f"phase {self.name!r} needs 0 < min_duration <= "
                f"max_duration, got [{self.min_duration}, {self.max_duration}]"
            )
        object.__setattr__(self, "values", freeze_params(self.values))

    def value_for(self, channel: str) -> Optional[Any]:
        for name, value in self.values:
            if name == channel:
                return value
        return None


@dataclass(frozen=True)
class WorkloadSpec:
    """The full declarative workload: subjects x channels x phases."""

    subjects: Tuple[str, ...]
    channels: Tuple[ChannelSpec, ...]
    phases: Tuple[PhaseSpec, ...]
    id_prefix: str = "pk"
    #: Seconds between consecutive subjects' phase-script starts, so
    #: subject streams interleave instead of moving in lockstep.
    subject_stagger: float = 0.0

    def __post_init__(self) -> None:
        if not self.subjects:
            raise ValueError("workload needs at least one subject")
        if not self.channels:
            raise ValueError("workload needs at least one channel")
        if not self.phases:
            raise ValueError("workload needs at least one phase")
        if self.subject_stagger < 0:
            raise ValueError("subject_stagger must be >= 0")
        names = [c.name for c in self.channels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate channel names: {names}")
        known = set(names)
        for phase in self.phases:
            unknown = [k for k, _ in phase.values if k not in known]
            if unknown:
                raise ValueError(
                    f"phase {phase.name!r} references unknown "
                    f"channels {unknown}"
                )

    def generate(
        self,
        err_rate: float,
        seed: int,
        *,
        duration_scale: float = 1.0,
    ) -> List[Context]:
        """One experiment group's context stream.

        ``duration_scale`` uniformly stretches/shrinks every phase
        duration -- benchmarks and smoke tests pass ``< 1`` to keep
        streams small without changing the script's shape.
        """
        if not 0.0 <= err_rate < 1.0:
            raise ValueError(f"err_rate must be in [0, 1), got {err_rate}")
        if duration_scale <= 0:
            raise ValueError("duration_scale must be > 0")
        master = random.Random(seed)
        factory = ContextFactory(prefix=f"{self.id_prefix}{seed}")
        contexts: List[Context] = []
        for index, subject in enumerate(self.subjects):
            rng = random.Random(master.randrange(2**31))
            start = index * self.subject_stagger
            windows: List[Tuple[PhaseSpec, float, float]] = []
            t = start
            for phase in self.phases:
                span = (
                    rng.uniform(phase.min_duration, phase.max_duration)
                    * duration_scale
                )
                windows.append((phase, t, t + span))
                t += span
            end = t
            for channel in self.channels:
                cursor = 0
                tick = start + channel.offset
                while tick < end - 1e-9:
                    while cursor + 1 < len(windows) and tick >= windows[cursor][2]:
                        cursor += 1
                    phase = windows[cursor][0]
                    truth = phase.value_for(channel.name)
                    if truth is not None:
                        corrupted = bool(
                            channel.corruptible
                            and err_rate > 0
                            and rng.random() < err_rate
                        )
                        contexts.append(
                            factory.make(
                                channel.name,
                                subject,
                                _emit(channel, truth, corrupted, rng),
                                round(tick, 6),
                                lifespan=channel.lifespan,
                                source=f"{channel.name}:{subject}",
                                corrupted=corrupted,
                                attributes={"phase": phase.name},
                            )
                        )
                    tick += channel.period
        contexts.sort(key=lambda c: (c.timestamp, c.ctx_id))
        return contexts


def _emit(
    channel: ChannelSpec, truth: Any, corrupted: bool, rng: random.Random
) -> Any:
    if channel.kind == "state":
        state = str(truth)
        if not corrupted:
            return state
        others = [s for s in channel.states if s != state]
        return rng.choice(others) if others else state
    value = float(truth)
    if channel.jitter > 0:
        value += rng.uniform(-channel.jitter, channel.jitter)
    if corrupted:
        low, high = channel.corrupt_shift
        shift = rng.uniform(low, high)
        if rng.random() < 0.5:
            shift = -shift
        value += shift
    return round(value, 4)
