"""The legacy applications exposed as scenario packs.

These packs wrap the hand-written application modules
(:mod:`repro.apps`) through the spec's escape hatches instead of
re-expressing them declaratively: the apps' predicate closures (floor
plans, reader graphs) and workload generators consume RNG state in a
specific order, and the runtime golden suite pins their decisions byte
for byte.  The pack layer therefore delegates every build step to the
original app object -- same constraints, same registry, same streams,
same decisions -- while gaining the pack surface (full-roster sweeps,
inconsistency measures, the ``repro packs`` CLI).

The default ``workload_kwargs`` are the golden suite's small stream
sizes (``tests/runtime/_streams.APP_CASES``); pass explicit kwargs for
paper-scale streams.
"""

from __future__ import annotations

from ...apps import CallForwardingApp, RFIDAnomaliesApp, SmartPhoneApp
from ..spec import MetricsEnvelope, ScenarioPack

__all__ = ["call_forwarding_pack", "rfid_pack", "smart_phone_pack"]


def call_forwarding_pack() -> ScenarioPack:
    """Paper Section 4.1: Active Badge call forwarding."""
    app = CallForwardingApp()
    return ScenarioPack(
        name="call-forwarding",
        title="Call Forwarding (Active Badge)",
        description=(
            "Badge sightings plus tracked coordinates; calls follow the "
            "callee through the office floor."
        ),
        use_window=10,
        default_seed=5,
        envelope=MetricsEnvelope(
            min_contexts=50, min_raw_mi=1, reference_err_rate=0.3
        ),
        workload_kwargs={"duration": 120.0},
        registry_factory=app.build_registry,
        constraints_factory=app.build_constraints,
        situations_factory=app.build_situations,
        workload_factory=app.generate_workload,
    )


def rfid_pack() -> ScenarioPack:
    """Paper Section 4.2: RFID anomaly detection in an item flow."""
    app = RFIDAnomaliesApp()
    return ScenarioPack(
        name="rfid",
        title="RFID Anomalies",
        description=(
            "Tagged items flow through reader zones; anomalies are "
            "spurious reads off the feasible path."
        ),
        use_window=20,
        default_seed=5,
        envelope=MetricsEnvelope(
            min_contexts=50, min_raw_mi=1, reference_err_rate=0.3
        ),
        workload_kwargs={"items": 6},
        registry_factory=app.build_registry,
        constraints_factory=app.build_constraints,
        situations_factory=app.build_situations,
        workload_factory=app.generate_workload,
    )


def smart_phone_pack() -> ScenarioPack:
    """The paper's motivating smart-phone example (Section 1)."""
    app = SmartPhoneApp()
    return ScenarioPack(
        name="smart-phone",
        title="Smart Phone Profile Switching",
        description=(
            "Calendar, location and motion feeds drive the owner's "
            "ringer profile."
        ),
        use_window=8,
        default_seed=5,
        envelope=MetricsEnvelope(
            min_contexts=50, min_raw_mi=1, reference_err_rate=0.3
        ),
        workload_kwargs={"days": 1},
        registry_factory=app.build_registry,
        constraints_factory=app.build_constraints,
        situations_factory=app.build_situations,
        workload_factory=app.generate_workload,
    )
