"""Builtin scenario packs.

Importing this module registers every shipped pack: the three legacy
applications (Python-registered, keeping their hand-written predicate
closures so the golden decision signatures are preserved byte for
byte) and the declarative TOML packs under ``data/``.
"""

from __future__ import annotations

import pathlib

from ..registry import load_pack_file, register_pack
from .legacy import call_forwarding_pack, rfid_pack, smart_phone_pack

__all__ = ["DATA_DIR", "builtin_pack_files"]

DATA_DIR = pathlib.Path(__file__).parent / "data"


def builtin_pack_files() -> list:
    """The shipped declarative pack documents, sorted."""
    return sorted(DATA_DIR.glob("*.toml"))


for _factory in (call_forwarding_pack, rfid_pack, smart_phone_pack):
    register_pack(_factory(), replace=True)
for _path in builtin_pack_files():
    register_pack(load_pack_file(_path), replace=True)
