"""The pack registry: named packs from Python or document files.

Builtin packs (the three legacy applications plus the shipped TOML
documents under ``packs/data/``) register lazily on first lookup, so
importing :mod:`repro.scenarios` stays cheap and the apps layer is only
pulled in when a pack is actually requested.
"""

from __future__ import annotations

import importlib
import json
import pathlib
import tomllib
from typing import Dict, List, Union

from .serialize import pack_from_document
from .spec import ScenarioPack

__all__ = [
    "register_pack",
    "unregister_pack",
    "get_pack",
    "pack_names",
    "load_pack_file",
]

_PACKS: Dict[str, ScenarioPack] = {}
_BUILTINS_LOADED = False


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True  # set first: packs/__init__ calls register_pack
    importlib.import_module("repro.scenarios.packs")


def register_pack(pack: ScenarioPack, *, replace: bool = False) -> ScenarioPack:
    """Add a pack to the registry (``replace`` to overwrite)."""
    if not replace and pack.name in _PACKS:
        raise ValueError(f"pack {pack.name!r} is already registered")
    _PACKS[pack.name] = pack
    return pack


def unregister_pack(name: str) -> None:
    """Drop a registered pack (test isolation helper)."""
    _PACKS.pop(name, None)


def pack_names() -> List[str]:
    """Sorted names of every registered pack (builtins included)."""
    _load_builtins()
    return sorted(_PACKS)


def get_pack(name: str) -> ScenarioPack:
    """Look a pack up by name."""
    _load_builtins()
    try:
        return _PACKS[name]
    except KeyError:
        known = ", ".join(sorted(_PACKS)) or "(none)"
        raise KeyError(
            f"unknown scenario pack {name!r}; registered: {known}"
        ) from None


def load_pack_file(path: Union[str, pathlib.Path]) -> ScenarioPack:
    """Load a pack document from a ``.toml`` or ``.json`` file."""
    path = pathlib.Path(path)
    if path.suffix == ".toml":
        doc = tomllib.loads(path.read_text(encoding="utf-8"))
    elif path.suffix == ".json":
        doc = json.loads(path.read_text(encoding="utf-8"))
    else:
        raise ValueError(
            f"pack file {path} must end in .toml or .json"
        )
    return pack_from_document(doc)
