"""Data-driven predicate builders for declarative packs.

The constraint DSL (:mod:`repro.constraints.parser`) resolves predicate
names against a :class:`~repro.constraints.builtins.FunctionRegistry`.
The legacy applications extend the standard registry with hand-written
closures (floor plans, reader graphs); declarative packs instead
describe each extra predicate as a :class:`PredicateSpec` -- a *kind*
plus plain-data parameters -- and the spec compiles itself into the
equivalent closure at checker-build time.  Everything stays picklable
plain data until then, which is what lets a pack travel to process-mode
engine shards and into TOML/JSON documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Tuple

from ..core.context import Context

__all__ = ["PREDICATE_KINDS", "PredicateSpec", "freeze_params", "thaw_params"]

#: The supported predicate kinds and their arity.
PREDICATE_KINDS: Mapping[str, int] = {
    # binary: values equal (if self_ok) or joined by an ``edges`` entry.
    "graph_reachable": 2,
    # binary: numeric values differ by at most ``limit``.
    "step_le": 2,
    # binary: positions in the ``order`` list differ by at most ``limit``.
    "rank_le": 2,
    # binary: the value pair appears in ``pairs`` (optionally symmetric).
    "compatible": 2,
    # unary: the value is one of ``values``.
    "value_known": 1,
    # unary: the numeric value lies in [``low``, ``high``].
    "numeric_range": 1,
}


def _freeze_item(value: Any) -> Any:
    if isinstance(value, Mapping):
        raise ValueError(
            "nested mappings are not supported in spec parameters; "
            "use lists or scalars"
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_item(v) for v in value)
    return value


def _thaw_item(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_thaw_item(v) for v in value]
    return value


def freeze_params(params: Any) -> Tuple[Tuple[str, Any], ...]:
    """Canonical hashable form of a parameter mapping.

    The mapping becomes a key-sorted tuple of ``(key, value)`` pairs;
    sequence values become tuples recursively.  Nested mappings are
    rejected, which keeps freezing unambiguous (a list of string pairs
    -- e.g. a graph edge list -- is never mistaken for a mapping when
    thawed back into document form).
    """
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(k), _freeze_item(v)) for k, v in items))


def thaw_params(params: Tuple[Tuple[str, Any], ...]) -> dict:
    """Inverse of :func:`freeze_params`, for document emission."""
    return {k: _thaw_item(v) for k, v in params}


def _numeric(ctx: Context) -> Optional[float]:
    try:
        return float(ctx.value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


@dataclass(frozen=True)
class PredicateSpec:
    """One declaratively defined predicate of a pack's registry.

    ``params`` is a frozen mapping (sorted key/value pairs; see
    :func:`freeze_value`); a plain dict passed to the constructor is
    frozen automatically.
    """

    name: str
    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PREDICATE_KINDS:
            raise ValueError(
                f"predicate {self.name!r} has unknown kind {self.kind!r}; "
                f"known: {', '.join(sorted(PREDICATE_KINDS))}"
            )
        object.__setattr__(self, "params", freeze_params(self.params))

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    # -- compilation --------------------------------------------------------

    def build(self) -> Callable[..., bool]:
        """Compile the spec into the predicate callable."""
        builder = _BUILDERS[self.kind]
        fn = builder(self)
        fn.__name__ = self.name
        fn.__doc__ = self.description or f"declarative {self.kind} predicate"
        return fn


def _build_graph_reachable(spec: PredicateSpec) -> Callable[..., bool]:
    self_ok = bool(spec.param("self_ok", True))
    edges = set()
    for pair in spec.param("edges", ()):
        a, b = (str(pair[0]), str(pair[1]))
        edges.add((a, b))
        edges.add((b, a))

    def fn(a: Context, b: Context) -> bool:
        va, vb = str(a.value), str(b.value)
        if va == vb:
            return self_ok
        return (va, vb) in edges

    return fn


def _build_step_le(spec: PredicateSpec) -> Callable[..., bool]:
    limit = float(spec.param("limit", 0.0))

    def fn(a: Context, b: Context) -> bool:
        va, vb = _numeric(a), _numeric(b)
        if va is None or vb is None:
            return False
        return abs(va - vb) <= limit

    return fn


def _build_rank_le(spec: PredicateSpec) -> Callable[..., bool]:
    rank = {str(state): i for i, state in enumerate(spec.param("order", ()))}
    limit = int(spec.param("limit", 1))

    def fn(a: Context, b: Context) -> bool:
        ra, rb = rank.get(str(a.value)), rank.get(str(b.value))
        if ra is None or rb is None:
            return False
        return abs(ra - rb) <= limit

    return fn


def _build_compatible(spec: PredicateSpec) -> Callable[..., bool]:
    pairs = set()
    for pair in spec.param("pairs", ()):
        a, b = (str(pair[0]), str(pair[1]))
        pairs.add((a, b))
        if bool(spec.param("symmetric", False)):
            pairs.add((b, a))

    def fn(a: Context, b: Context) -> bool:
        return (str(a.value), str(b.value)) in pairs

    return fn


def _build_value_known(spec: PredicateSpec) -> Callable[..., bool]:
    allowed = {str(v) for v in spec.param("values", ())}

    def fn(ctx: Context) -> bool:
        return str(ctx.value) in allowed

    return fn


def _build_numeric_range(spec: PredicateSpec) -> Callable[..., bool]:
    low = float(spec.param("low", float("-inf")))
    high = float(spec.param("high", float("inf")))

    def fn(ctx: Context) -> bool:
        value = _numeric(ctx)
        return value is not None and low <= value <= high

    return fn


_BUILDERS: Mapping[str, Callable[[PredicateSpec], Callable[..., bool]]] = {
    "graph_reachable": _build_graph_reachable,
    "step_le": _build_step_le,
    "rank_le": _build_rank_le,
    "compatible": _build_compatible,
    "value_known": _build_value_known,
    "numeric_range": _build_numeric_range,
}
