"""The :class:`ScenarioPack` spec and its validator.

A pack is the declarative replacement for a bespoke application module:
predicates, constraints (DSL text), situations, a phased workload, a
strategy roster and an expected-metrics envelope, all plain data.  It
implements the :class:`repro.experiments.harness.ApplicationBundle`
protocol (``build_checker`` / ``build_situations`` /
``generate_workload``), so every existing experiment -- the Figure 9/10
comparison, the asynchrony sweep, the report pipeline -- runs unchanged
over a pack.

Python-registered packs may override any layer with an *escape hatch*
factory (the legacy applications keep their hand-written floor-plan
closures this way, preserving byte-identical golden decisions); a pack
with no escape hatches is *portable* and can round-trip through the
TOML/JSON document form (:mod:`repro.scenarios.serialize`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..constraints.ast import Constraint, Predicate
from ..constraints.builtins import FunctionRegistry, standard_registry
from ..constraints.checker import ConstraintChecker
from ..constraints.parser import parse_constraint
from ..core.context import Context
from ..core.strategy import strategy_names
from ..situations.library import (
    co_located,
    entered,
    left,
    make_situation,
    position_within,
    value_in,
    value_is,
)
from ..situations.situation import Situation
from .predicates import PredicateSpec, freeze_params
from .workload import WorkloadSpec

__all__ = [
    "FULL_ROSTER",
    "SITUATION_KINDS",
    "ConstraintSpec",
    "SituationSpec",
    "MetricsEnvelope",
    "ScenarioPack",
    "validate_pack",
]

#: Every implemented strategy, in report order: the paper's four plus
#: the two extended ones the pack harness folds into each sweep.
FULL_ROSTER: Tuple[str, ...] = (
    "opt-r",
    "drop-bad",
    "drop-latest",
    "drop-all",
    "drop-random",
    "user-specified",
)

#: The paper's controlled error rates (Section 4.1).
DEFAULT_ERR_RATES: Tuple[float, ...] = (0.10, 0.20, 0.30, 0.40)

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")


@dataclass(frozen=True)
class ConstraintSpec:
    """One consistency constraint as DSL text (see ``docs/dsl.md``)."""

    name: str
    formula: str
    description: str = ""

    def build(self) -> Constraint:
        return parse_constraint(
            self.name, self.formula, description=self.description
        )


#: Situation kinds -> the library combinator and its parameter names.
SITUATION_KINDS: Tuple[str, ...] = (
    "value_is",
    "value_in",
    "entered",
    "left",
    "co_located",
    "position_within",
)


@dataclass(frozen=True)
class SituationSpec:
    """One situation as a library-combinator kind plus parameters."""

    name: str
    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SITUATION_KINDS:
            raise ValueError(
                f"situation {self.name!r} has unknown kind {self.kind!r}; "
                f"known: {', '.join(SITUATION_KINDS)}"
            )
        object.__setattr__(self, "params", freeze_params(self.params))

    def build(self) -> Situation:
        p = {k: v for k, v in self.params}
        subject = p.get("subject")
        if self.kind == "value_is":
            trigger = value_is(p["ctx_type"], p["value"], subject=subject)
        elif self.kind == "value_in":
            trigger = value_in(
                p["ctx_type"], list(p["values"]), subject=subject
            )
        elif self.kind == "entered":
            trigger = entered(p["ctx_type"], p["value"], subject=subject)
        elif self.kind == "left":
            trigger = left(p["ctx_type"], p["value"], subject=subject)
        elif self.kind == "co_located":
            trigger = co_located(
                p["ctx_type"],
                p["subject_a"],
                p["subject_b"],
                max_age=float(p.get("max_age", 30.0)),
            )
        else:  # position_within
            box = tuple(float(v) for v in p["box"])
            trigger = position_within(p["ctx_type"], box, subject=subject)
        return make_situation(self.name, trigger, self.description)


@dataclass(frozen=True)
class MetricsEnvelope:
    """Expected-shape bounds for the pack's reference workload.

    The envelope is what ``repro packs validate`` and the pack test
    suite check a shipped pack against: the reference stream must be
    non-trivial (``min_contexts``), bounded (``max_contexts``), and
    actually inconsistent (``min_raw_mi`` distinct minimal inconsistent
    subsets at ``reference_err_rate``); ``max_residual_ratio`` bounds
    the delivered-stream problematic ratio the *best* strategy may
    leave behind.
    """

    min_contexts: int = 1
    max_contexts: Optional[int] = None
    min_raw_mi: int = 0
    max_residual_ratio: float = 1.0
    reference_err_rate: float = 0.2


@dataclass(frozen=True)
class ScenarioPack:
    """A declarative scenario: everything one workload needs, as data.

    The four ``*_factory`` fields are Python escape hatches for packs
    whose predicates or generators cannot be expressed declaratively
    (the legacy applications); a pack using none of them is
    ``portable`` and serializable.  ``workload_kwargs`` are the default
    keyword arguments of :meth:`generate_workload` (e.g. the small
    stream sizes the golden suite pinned for the legacy apps).
    """

    name: str
    title: str = ""
    description: str = ""
    predicates: Tuple[PredicateSpec, ...] = ()
    constraint_specs: Tuple[ConstraintSpec, ...] = ()
    situation_specs: Tuple[SituationSpec, ...] = ()
    workload: Optional[WorkloadSpec] = None
    strategies: Tuple[str, ...] = FULL_ROSTER
    err_rates: Tuple[float, ...] = DEFAULT_ERR_RATES
    use_window: int = 10
    default_seed: int = 7
    envelope: MetricsEnvelope = field(default_factory=MetricsEnvelope)
    workload_kwargs: Tuple[Tuple[str, Any], ...] = ()
    # -- escape hatches (Python-registered packs only) ----------------------
    registry_factory: Optional[Callable[[], FunctionRegistry]] = None
    constraints_factory: Optional[Callable[[], List[Constraint]]] = None
    situations_factory: Optional[Callable[[], List[Situation]]] = None
    workload_factory: Optional[Callable[..., List[Context]]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "workload_kwargs", freeze_params(self.workload_kwargs)
        )
        object.__setattr__(self, "predicates", tuple(self.predicates))
        object.__setattr__(
            self, "constraint_specs", tuple(self.constraint_specs)
        )
        object.__setattr__(
            self, "situation_specs", tuple(self.situation_specs)
        )
        object.__setattr__(self, "strategies", tuple(self.strategies))
        object.__setattr__(
            self, "err_rates", tuple(float(e) for e in self.err_rates)
        )

    @property
    def portable(self) -> bool:
        """Whether the pack is pure data (TOML/JSON serializable)."""
        return (
            self.registry_factory is None
            and self.constraints_factory is None
            and self.situations_factory is None
            and self.workload_factory is None
            and self.workload is not None
        )

    # -- the ApplicationBundle surface --------------------------------------

    def build_registry(self) -> FunctionRegistry:
        if self.registry_factory is not None:
            return self.registry_factory()
        registry = standard_registry()
        for spec in self.predicates:
            registry.register(spec.name, spec.build())
        return registry

    def build_constraints(self) -> List[Constraint]:
        if self.constraints_factory is not None:
            return self.constraints_factory()
        return [spec.build() for spec in self.constraint_specs]

    def build_checker(
        self, incremental: bool = True, kernels: bool = True
    ) -> ConstraintChecker:
        return ConstraintChecker(
            self.build_constraints(),
            registry=self.build_registry(),
            incremental=incremental,
            kernels=kernels,
        )

    def build_situations(self) -> List[Situation]:
        if self.situations_factory is not None:
            return self.situations_factory()
        return [spec.build() for spec in self.situation_specs]

    def generate_workload(
        self, err_rate: float, seed: int, **kwargs: Any
    ) -> List[Context]:
        merged = {k: v for k, v in self.workload_kwargs}
        merged.update(kwargs)
        if self.workload_factory is not None:
            return self.workload_factory(err_rate, seed, **merged)
        if self.workload is None:
            raise ValueError(
                f"pack {self.name!r} has neither a declarative workload "
                f"nor a workload_factory"
            )
        return self.workload.generate(err_rate, seed, **merged)


def validate_pack(
    pack: ScenarioPack, *, check_workload: bool = True
) -> List[str]:
    """Schema-lint one pack; returns human-readable problems (empty = ok).

    Structural checks are always run; ``check_workload`` additionally
    generates the reference stream and checks it against the envelope
    (skippable because legacy workloads take a moment to simulate).
    """
    errors: List[str] = []
    if not _NAME_RE.match(pack.name or ""):
        errors.append(
            f"pack name {pack.name!r} must be kebab-case ([a-z0-9-])"
        )
    unknown = sorted(set(pack.strategies) - set(strategy_names()))
    if unknown:
        errors.append(f"unknown strategies: {', '.join(unknown)}")
    if not pack.strategies:
        errors.append("strategy roster is empty")
    for rate in pack.err_rates:
        if not 0.0 < rate < 1.0:
            errors.append(f"err_rate {rate} outside (0, 1)")
    if pack.use_window < 0:
        errors.append(f"use_window must be >= 0, got {pack.use_window}")
    env = pack.envelope
    if env.min_contexts < 0:
        errors.append("envelope.min_contexts must be >= 0")
    if env.max_contexts is not None and env.max_contexts < env.min_contexts:
        errors.append("envelope.max_contexts < envelope.min_contexts")
    if not 0.0 < env.reference_err_rate < 1.0:
        errors.append(
            f"envelope.reference_err_rate {env.reference_err_rate} "
            f"outside (0, 1)"
        )

    registry: Optional[FunctionRegistry] = None
    try:
        registry = pack.build_registry()
    except Exception as exc:  # noqa: BLE001 - collecting lint errors
        errors.append(f"registry failed to build: {exc}")
    constraints: List[Constraint] = []
    try:
        constraints = pack.build_constraints()
    except Exception as exc:  # noqa: BLE001
        errors.append(f"constraints failed to build: {exc}")
    if registry is not None:
        for constraint in constraints:
            missing = sorted(
                {
                    node.func
                    for node in constraint.formula.walk()
                    if isinstance(node, Predicate)
                    and node.func not in registry
                }
            )
            if missing:
                errors.append(
                    f"constraint {constraint.name!r} uses unknown "
                    f"predicates: {', '.join(missing)}"
                )
    if not constraints and not errors:
        errors.append("pack defines no constraints")
    try:
        pack.build_situations()
    except Exception as exc:  # noqa: BLE001
        errors.append(f"situations failed to build: {exc}")

    if pack.workload is not None:
        channel_names = {c.name for c in pack.workload.channels}
        for constraint in constraints:
            orphan = sorted(constraint.relevant_types() - channel_names)
            if orphan:
                errors.append(
                    f"constraint {constraint.name!r} quantifies over "
                    f"types no channel produces: {', '.join(orphan)}"
                )

    if check_workload and not errors:
        errors.extend(_check_reference_stream(pack))
    return errors


def _check_reference_stream(pack: ScenarioPack) -> List[str]:
    errors: List[str] = []
    env = pack.envelope
    try:
        stream: Sequence[Context] = pack.generate_workload(
            env.reference_err_rate, pack.default_seed
        )
    except Exception as exc:  # noqa: BLE001
        return [f"reference workload failed to generate: {exc}"]
    if len(stream) < max(env.min_contexts, 1):
        errors.append(
            f"reference stream has {len(stream)} contexts, envelope "
            f"requires >= {max(env.min_contexts, 1)}"
        )
    if env.max_contexts is not None and len(stream) > env.max_contexts:
        errors.append(
            f"reference stream has {len(stream)} contexts, envelope "
            f"allows <= {env.max_contexts}"
        )
    if any(
        a.timestamp > b.timestamp for a, b in zip(stream, stream[1:])
    ):
        errors.append("reference stream is not timestamp-sorted")
    ids = [c.ctx_id for c in stream]
    if len(set(ids)) != len(ids):
        errors.append("reference stream has duplicate ctx_ids")
    if stream and not any(c.corrupted for c in stream):
        errors.append(
            "reference stream has no corrupted contexts at "
            f"err_rate={env.reference_err_rate} (no ground truth to detect)"
        )
    return errors
