"""Command-line interface: run the paper's experiments from a shell.

Usage (after ``pip install -e .``)::

    python -m repro scenarios
    python -m repro compare call-forwarding --groups 5
    python -m repro compare rfid --groups 5 --window 20
    python -m repro case-study --seed 7
    python -m repro ablation window
    python -m repro ablation tiebreak
    python -m repro trace record rfid --out stream.jsonl --err 0.3
    python -m repro trace replay stream.jsonl --strategy drop-bad
    python -m repro engine run rfid --shards 4 --strategy drop-bad
    python -m repro engine bench --shards 1 2 4 --contexts 2000
    python -m repro serve rfid --port 8600 --rate 500
    python -m repro loadgen rfid --rates 200 500 1000 --contexts 500
    python -m repro obs summary benchmarks/out/TELEMETRY_engine_bench.json
    python -m repro obs export benchmarks/out/TELEMETRY_engine_bench.json --format prom
    python -m repro obs spans benchmarks/out/TELEMETRY_engine_bench.json --top 5
    python -m repro engine run rfid --ledger run.ledger.jsonl
    python -m repro ledger verify run.ledger.jsonl
    python -m repro ledger explain run.ledger.jsonl rfid-42
    python -m repro ledger replay run.ledger.jsonl
    python -m repro ledger diff run_a.ledger.jsonl run_b.ledger.jsonl
    python -m repro packs list
    python -m repro packs validate
    python -m repro packs validate --file my_pack.toml
    python -m repro packs run smart-home --groups 2
    python -m repro packs run health-telemetry --strategy drop-bad --host inline
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .apps.call_forwarding import CallForwardingApp
from .apps.rfid_anomalies import RFIDAnomaliesApp
from .apps.smart_phone import SmartPhoneApp
from .core.strategy import make_strategy, strategy_names
from .experiments.ablations import run_tiebreak_ablation, run_window_ablation
from .experiments.case_study import run_case_study
from .experiments.harness import ComparisonConfig, run_comparison, run_group
from .experiments.report import (
    format_case_study,
    format_comparison,
    format_scenarios,
    format_tiebreak_ablation,
    format_window_ablation,
)
from .experiments.scenarios import SCENARIOS, replay_strategy
from .middleware.trace import read_trace, write_trace

__all__ = ["main", "build_parser"]

_APPS = {
    "call-forwarding": (CallForwardingApp, {"use_window": 10, "kwargs": {}}),
    "rfid": (RFIDAnomaliesApp, {"use_window": 20, "kwargs": {}}),
    "smart-phone": (SmartPhoneApp, {"use_window": 8, "kwargs": {}}),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ICDCS 2008 context-inconsistency-resolution reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "scenarios", help="replay the Figure 1-5 walkthroughs"
    )

    compare = commands.add_parser(
        "compare", help="run a Figure 9/10 style strategy comparison"
    )
    compare.add_argument("app", choices=sorted(_APPS))
    compare.add_argument("--groups", type=int, default=5)
    compare.add_argument("--window", type=int, default=None)
    compare.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.1, 0.2, 0.3, 0.4],
    )

    case_study = commands.add_parser(
        "case-study", help="run the Section 5.2 Landmarc case study"
    )
    case_study.add_argument("--seed", type=int, default=7)

    ablation = commands.add_parser(
        "ablation", help="run a design-choice ablation"
    )
    ablation.add_argument("which", choices=["window", "tiebreak"])
    ablation.add_argument("--groups", type=int, default=4)

    reproduce = commands.add_parser(
        "reproduce", help="run the whole paper and write a report"
    )
    reproduce.add_argument("--groups", type=int, default=5)
    reproduce.add_argument("--out", default="REPRODUCTION_REPORT.md")

    trace = commands.add_parser("trace", help="record or replay a stream")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_sub.add_parser("record", help="write a workload to JSONL")
    record.add_argument("app", choices=sorted(_APPS))
    record.add_argument("--out", required=True)
    record.add_argument("--err", type=float, default=0.3)
    record.add_argument("--seed", type=int, default=1)
    replay = trace_sub.add_parser("replay", help="replay a JSONL trace")
    replay.add_argument("path")
    replay.add_argument(
        "--strategy", default="drop-bad", choices=strategy_names()
    )
    replay.add_argument("--window", type=int, default=10)

    engine = commands.add_parser(
        "engine", help="run the sharded streaming resolution engine"
    )
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)
    engine_run = engine_sub.add_parser(
        "run", help="resolve an application workload on the engine"
    )
    engine_run.add_argument("app", choices=sorted(_APPS))
    engine_run.add_argument("--shards", type=int, default=4)
    engine_run.add_argument(
        "--strategy", default="drop-bad", choices=strategy_names()
    )
    engine_run.add_argument(
        "--mode", default="inline", choices=["inline", "local", "process"]
    )
    engine_run.add_argument("--err", type=float, default=0.3)
    engine_run.add_argument("--seed", type=int, default=1)
    engine_run.add_argument("--window", type=int, default=None)
    engine_run.add_argument("--delay", type=float, default=None)
    engine_run.add_argument("--batch-size", type=int, default=64)
    engine_run.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="worker respawns allowed per shard in process mode "
        "(default: %(default)s -> FaultConfig default)",
    )
    engine_run.add_argument(
        "--batch-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds without batch progress before a process-mode "
        "worker is declared hung and retried",
    )
    engine_run.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="also write a TELEMETRY_*.json sidecar for this run",
    )
    engine_run.add_argument(
        "--no-kernels",
        action="store_true",
        help="disable compiled constraint kernels and equality-join "
        "candidate indexes (interpreted reference path)",
    )
    engine_run.add_argument(
        "--no-runtime-batch",
        action="store_true",
        help="disable the amortized runtime batch path (per-context "
        "receive reference path)",
    )
    engine_run.add_argument(
        "--no-batch-kernels",
        action="store_true",
        help="disable columnar batched detection (detect_batch verdict "
        "planning); decisions are identical either way",
    )
    engine_run.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="write the run's hash-chained decision ledger to this "
        "JSONL path (audit with `repro ledger ...`)",
    )
    engine_run.add_argument(
        "--ledger-fsync",
        action="store_true",
        help="fsync every ledger flush (durability over throughput)",
    )
    engine_run.add_argument(
        "--async-check",
        action="store_true",
        help="order arrivals through the snapshot-window ingress before "
        "checking (tolerates late/reordered/duplicated streams)",
    )
    engine_run.add_argument(
        "--async-lag",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="snapshot window width in simulation seconds "
        "(default: %(default)s; only with --async-check)",
    )
    engine_bench = engine_sub.add_parser(
        "bench", help="measure engine throughput per shard count"
    )
    engine_bench.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4]
    )
    engine_bench.add_argument("--contexts", type=int, default=2000)
    engine_bench.add_argument(
        "--strategy", default="drop-latest", choices=strategy_names()
    )
    engine_bench.add_argument(
        "--mode", default="inline", choices=["inline", "local", "process"]
    )
    engine_bench.add_argument("--window", type=int, default=20)
    engine_bench.add_argument("--repeats", type=int, default=2)
    engine_bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also merge the record into a BENCH_engine.json file",
    )
    engine_bench.add_argument(
        "--telemetry-out",
        default="benchmarks/out/TELEMETRY_engine_bench.json",
        metavar="PATH",
        help="write the bench run's telemetry sidecar here",
    )
    engine_bench.add_argument(
        "--no-telemetry",
        action="store_true",
        help="skip telemetry instrumentation and the sidecar",
    )

    serve = commands.add_parser(
        "serve", help="run the async ingestion front-door"
    )
    serve.add_argument("app", choices=sorted(_APPS))
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8600)
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument(
        "--strategy", default="drop-bad", choices=strategy_names()
    )
    serve.add_argument("--window", type=int, default=None)
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="admission rate limit in contexts/second (default: none)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=None,
        help="token-bucket burst capacity (default: 1s of --rate)",
    )
    serve.add_argument("--max-queue-depth", type=int, default=4096)
    serve.add_argument("--batch-max-size", type=int, default=64)
    serve.add_argument("--batch-max-delay", type=float, default=0.005)
    serve.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="record the session's decision ledger live to this JSONL "
        "path (a crash leaves a verifiable prefix)",
    )
    serve.add_argument(
        "--async-check",
        action="store_true",
        help="order arrivals through the snapshot-window ingress before "
        "checking (tolerates late/reordered/duplicated streams)",
    )
    serve.add_argument(
        "--async-lag",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="snapshot window width in simulation seconds "
        "(default: %(default)s; only with --async-check)",
    )
    serve.add_argument(
        "--gap-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="skip a per-source sequence gap after starving this many "
        "wall seconds (default: hold until drain)",
    )

    asynchrony = commands.add_parser(
        "asynchrony",
        help="drop-bad vs OPT-R degradation under stream asynchrony",
    )
    asynchrony.add_argument("app", choices=sorted(_APPS))
    asynchrony.add_argument("--groups", type=int, default=5)
    asynchrony.add_argument("--err", type=float, default=0.2)
    asynchrony.add_argument(
        "--max-lag",
        type=float,
        default=6.0,
        metavar="SECONDS",
        help="snapshot window width for the async-check rows "
        "(default: %(default)s)",
    )

    loadgen = commands.add_parser(
        "loadgen", help="open-loop load sweep against the front-door"
    )
    loadgen.add_argument("app", choices=sorted(_APPS))
    loadgen.add_argument(
        "--rates", type=float, nargs="+", default=[200.0, 500.0, 1000.0]
    )
    loadgen.add_argument("--contexts", type=int, default=500)
    loadgen.add_argument("--err", type=float, default=0.3)
    loadgen.add_argument("--seed", type=int, default=1)
    loadgen.add_argument("--shards", type=int, default=2)
    loadgen.add_argument(
        "--strategy", default="drop-bad", choices=strategy_names()
    )
    loadgen.add_argument(
        "--admission-rate",
        type=float,
        default=None,
        help="server-side admission rate limit (default: none)",
    )
    loadgen.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also merge the sweep record into a BENCH_serve.json file",
    )

    ledger = commands.add_parser(
        "ledger", help="verify, explain, replay or diff a decision ledger"
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)
    ledger_verify = ledger_sub.add_parser(
        "verify", help="check the hash chain and the header's ruleset hash"
    )
    ledger_verify.add_argument("path")
    ledger_explain = ledger_sub.add_parser(
        "explain", help="causal story of one context, from the ledger alone"
    )
    ledger_explain.add_argument("path")
    ledger_explain.add_argument("ctx_id")
    ledger_replay = ledger_sub.add_parser(
        "replay",
        help="re-execute the recorded run and compare decision signatures",
    )
    ledger_replay.add_argument("path")
    ledger_replay.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for the replay engine (default: the recorded "
        "meta.shards); decisions are shard-count invariant",
    )
    ledger_replay.add_argument(
        "--app",
        choices=sorted(_APPS),
        default=None,
        help="predicate-registry fallback when the ledger header has no "
        "resolvable registry spec",
    )
    ledger_diff = ledger_sub.add_parser(
        "diff", help="compare two runs' verdict streams"
    )
    ledger_diff.add_argument("path_a")
    ledger_diff.add_argument("path_b")

    packs = commands.add_parser(
        "packs", help="list, validate or run declarative scenario packs"
    )
    packs_sub = packs.add_subparsers(dest="packs_command", required=True)
    packs_sub.add_parser(
        "list", help="registered packs, their kind and roster"
    )
    packs_validate = packs_sub.add_parser(
        "validate",
        help="validate pack specs (nonzero exit on any error)",
    )
    packs_validate.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="pack names to validate (default: every registered pack)",
    )
    packs_validate.add_argument(
        "--file",
        action="append",
        default=[],
        metavar="PATH",
        help="also validate a TOML/JSON pack file (repeatable)",
    )
    packs_run = packs_sub.add_parser(
        "run",
        help="run one pack: a single strategy, or the full-roster sweep",
    )
    packs_run.add_argument("name", nargs="?", default=None)
    packs_run.add_argument(
        "--file",
        default=None,
        metavar="PATH",
        help="load the pack from a TOML/JSON file instead of the registry",
    )
    packs_run.add_argument(
        "--strategy",
        default=None,
        choices=strategy_names(),
        help="run just this strategy (default: sweep the pack's roster)",
    )
    packs_run.add_argument("--err", type=float, default=None)
    packs_run.add_argument("--seed", type=int, default=None)
    packs_run.add_argument(
        "--host",
        default="middleware",
        choices=["middleware", "inline", "local", "process"],
    )
    packs_run.add_argument("--shards", type=int, default=2)
    packs_run.add_argument(
        "--groups",
        type=int,
        default=2,
        help="streams per error rate in sweep mode (default: %(default)s)",
    )
    packs_run.add_argument(
        "--window",
        type=int,
        default=None,
        help="override the pack's use_window (single-strategy runs only)",
    )
    packs_run.add_argument(
        "--no-kernels",
        action="store_true",
        help="disable compiled constraint kernels",
    )
    packs_run.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="record the run's decision ledger to this JSONL path "
        "(single-strategy runs only)",
    )

    obs = commands.add_parser(
        "obs", help="inspect or export a telemetry sidecar"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_summary = obs_sub.add_parser(
        "summary", help="counters, stage latencies and span counts"
    )
    obs_summary.add_argument("path")
    obs_export = obs_sub.add_parser(
        "export", help="re-export the sidecar's metrics"
    )
    obs_export.add_argument("path")
    obs_export.add_argument(
        "--format", default="prom", choices=["prom", "json"]
    )
    obs_spans = obs_sub.add_parser("spans", help="slowest recorded spans")
    obs_spans.add_argument("path")
    obs_spans.add_argument("--top", type=int, default=10)

    return parser


def _cmd_scenarios(out) -> int:
    outcomes = [
        replay_strategy(strategy, scenario, refined=refined)
        for strategy in ("opt-r", "drop-bad", "drop-latest", "drop-all")
        for scenario in SCENARIOS
        for refined in (False, True)
    ]
    print(format_scenarios(outcomes), file=out)
    return 0


def _cmd_compare(args, out) -> int:
    app_cls, defaults = _APPS[args.app]
    config = ComparisonConfig(
        err_rates=tuple(args.rates),
        groups_per_point=args.groups,
        use_window=args.window
        if args.window is not None
        else defaults["use_window"],
    )
    result = run_comparison(app_cls(), config)
    print(
        format_comparison(result, f"Strategy comparison -- {args.app}"),
        file=out,
    )
    return 0


def _cmd_asynchrony(args, out) -> int:
    from .experiments.asynchrony import format_asynchrony_table, run_asynchrony

    app_cls, defaults = _APPS[args.app]
    points = run_asynchrony(
        app_cls(),
        err_rate=args.err,
        groups=args.groups,
        use_window=defaults["use_window"],
        max_lag=args.max_lag,
    )
    print(format_asynchrony_table(points), file=out)
    return 0


def _cmd_case_study(args, out) -> int:
    result = run_case_study(seed=args.seed)
    print(format_case_study(result), file=out)
    return 0


def _cmd_ablation(args, out) -> int:
    if args.which == "window":
        points = run_window_ablation(
            RFIDAnomaliesApp(), groups=args.groups, workload_kwargs={"items": 8}
        )
        print(format_window_ablation(points), file=out)
    else:
        points = run_tiebreak_ablation(
            CallForwardingApp(),
            groups=args.groups,
            workload_kwargs={"duration": 240.0},
        )
        print(format_tiebreak_ablation(points), file=out)
    return 0


def _cmd_trace(args, out) -> int:
    if args.trace_command == "record":
        app_cls, _ = _APPS[args.app]
        contexts = app_cls().generate_workload(args.err, seed=args.seed)
        count = write_trace(contexts, args.out)
        print(f"wrote {count} contexts to {args.out}", file=out)
        return 0
    contexts = list(read_trace(args.path))
    types = {c.ctx_type for c in contexts}
    if "rfid_read" in types:
        app = RFIDAnomaliesApp()
    elif "venue" in types:
        app = SmartPhoneApp()
    else:
        app = CallForwardingApp()
    metrics = run_group(
        app,
        make_strategy(args.strategy),
        contexts,
        err_rate=0.0,
        seed=0,
        use_window=args.window,
    )
    print(
        f"replayed {metrics.contexts_total} contexts under "
        f"{args.strategy}:\n"
        f"  delivered {metrics.contexts_used} "
        f"({metrics.contexts_used_expected} expected), "
        f"discarded {metrics.contexts_discarded} "
        f"(precision {metrics.removal_precision:.1%}, "
        f"survival {metrics.survival_rate:.1%})",
        file=out,
    )
    return 0


def _cmd_engine(args, out) -> int:
    from .engine import (
        EngineConfig,
        FaultConfig,
        ShardedEngine,
        write_bench_json,
    )
    from .engine.workload import run_scalability_bench
    from .obs import Telemetry, write_sidecar
    from .runtime.snapshot import AsyncCheckConfig

    if args.engine_command == "bench":
        telemetry = None if args.no_telemetry else Telemetry(enabled=True)
        try:
            record = run_scalability_bench(
                tuple(args.shards),
                n_contexts=args.contexts,
                use_window=args.window,
                strategy=args.strategy,
                mode=args.mode,
                repeats=args.repeats,
                telemetry=telemetry,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        by_shards = record["contexts_per_second_by_shards"]
        print("Engine scalability -- contexts/second by shard count", file=out)
        for shards in sorted(by_shards, key=int):
            row = by_shards[shards]
            print(
                f"  {shards:>2} shard(s): {row['contexts_per_second']:>9.1f} ctx/s"
                f"  ({row['elapsed_s']:.3f}s, "
                f"{row['delivered']} delivered / {row['discarded']} discarded)",
                file=out,
            )
        for label, ratio in record["speedup"].items():
            print(f"  speedup {label}: {ratio:.2f}x", file=out)
        if args.json:
            write_bench_json(args.json, "engine_scalability", record)
            print(f"record merged into {args.json}", file=out)
        if telemetry is not None and args.telemetry_out:
            write_sidecar(
                args.telemetry_out,
                telemetry,
                meta={
                    "command": "engine bench",
                    "shards": list(args.shards),
                    "contexts": args.contexts,
                    "strategy": args.strategy,
                    "mode": args.mode,
                },
            )
            print(f"telemetry sidecar written to {args.telemetry_out}", file=out)
        return 0

    app_cls, defaults = _APPS[args.app]
    app = app_cls()
    contexts = app.generate_workload(args.err, seed=args.seed)
    checker = app.build_checker()
    use_window = (
        args.window if args.window is not None else defaults["use_window"]
    )
    try:
        fault_overrides = {}
        if args.max_retries is not None:
            fault_overrides["max_retries"] = args.max_retries
        if args.batch_timeout is not None:
            fault_overrides["batch_timeout_s"] = args.batch_timeout
        config = EngineConfig(
            shards=args.shards,
            mode=args.mode,
            use_window=use_window,
            use_delay=args.delay,
            batch_size=args.batch_size,
            fault=FaultConfig(**fault_overrides),
            kernels=not args.no_kernels,
            batch_kernels=not args.no_batch_kernels,
            runtime_batch=not args.no_runtime_batch,
            ledger_path=args.ledger,
            ledger_fsync=args.ledger_fsync,
            async_check=(
                AsyncCheckConfig(max_lag=args.async_lag)
                if args.async_check
                else None
            ),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    telemetry = Telemetry(enabled=True) if args.telemetry_out else None
    engine = ShardedEngine(
        checker.constraints(),
        strategy=args.strategy,
        registry_factory=app.build_registry,
        config=config,
        telemetry=telemetry,
    )
    result = engine.run(contexts)
    metrics = result.metrics
    print(
        f"engine resolved {metrics.contexts_total} contexts on "
        f"{metrics.shards} shard(s) [{metrics.mode}] in "
        f"{metrics.elapsed_s:.3f}s ({metrics.contexts_per_second:.0f} ctx/s):\n"
        f"  delivered {metrics.delivered_total}, "
        f"discarded {metrics.discarded_total}, "
        f"inconsistencies {metrics.inconsistencies_total}",
        file=out,
    )
    if metrics.worker_restarts or metrics.degraded_shards:
        print(
            f"  fault tolerance: {metrics.worker_restarts} worker "
            f"restart(s), {metrics.batches_replayed} batch(es) replayed, "
            f"{metrics.degraded_shards} shard(s) degraded",
            file=out,
        )
    for stats in metrics.per_shard:
        line = (
            f"  shard {stats.shard_id}: {stats.constraints} constraints, "
            f"{stats.contexts} contexts, {stats.delivered} delivered, "
            f"{stats.discarded} discarded"
        )
        if stats.restarts or stats.degraded:
            line += f", {stats.restarts} restart(s)"
            if stats.degraded:
                line += ", degraded"
        print(line, file=out)
    if args.ledger:
        print(
            f"decision ledger written to {args.ledger} "
            f"(ruleset {engine.ruleset_hash[:12]}...)",
            file=out,
        )
    if telemetry is not None:
        write_sidecar(
            args.telemetry_out,
            telemetry,
            meta={
                "command": "engine run",
                "app": args.app,
                "strategy": args.strategy,
                "shards": args.shards,
                "mode": args.mode,
                "ruleset_hash": engine.ruleset_hash,
            },
        )
        print(f"telemetry sidecar written to {args.telemetry_out}", file=out)
    return 0


def _cmd_serve(args, out) -> int:
    import asyncio

    from .obs import Telemetry
    from .runtime.snapshot import AsyncCheckConfig
    from .serve import IngestServer, IngestService, ServeConfig
    from .serve.loadgen import build_app_engine

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            rate=args.rate,
            burst=args.burst,
            max_queue_depth=args.max_queue_depth,
            batch_max_size=args.batch_max_size,
            batch_max_delay=args.batch_max_delay,
            gap_timeout=args.gap_timeout,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    telemetry = Telemetry(enabled=True)
    engine = build_app_engine(
        args.app,
        shards=args.shards,
        strategy=args.strategy,
        use_window=args.window,
        telemetry=telemetry,
        ledger_path=args.ledger,
        async_check=(
            AsyncCheckConfig(max_lag=args.async_lag)
            if args.async_check
            else None
        ),
    )
    service = IngestService(engine, config=config, telemetry=telemetry)
    server = IngestServer(service)
    print(
        f"serving {args.app} on http://{config.host}:{config.port} "
        f"({args.shards} shard(s), {args.strategy}); Ctrl-C drains",
        file=out,
    )
    report = asyncio.run(server.run())
    print(
        f"drained: {report['admitted']} admitted, "
        f"{report['delivered']} delivered, {report['discarded']} discarded, "
        f"{report['expired']} expired, {report['lost']} lost",
        file=out,
    )
    return 0 if report["lost"] == 0 else 1


def _cmd_loadgen(args, out) -> int:
    from .serve import ServeConfig
    from .serve.loadgen import format_sweep, run_sweep

    try:
        record = run_sweep(
            args.app,
            args.rates,
            n_contexts=args.contexts,
            err_rate=args.err,
            seed=args.seed,
            shards=args.shards,
            strategy=args.strategy,
            serve_config=ServeConfig(rate=args.admission_rate),
            json_path=args.json,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_sweep(record), file=out)
    if args.json:
        print(f"record merged into {args.json}", file=out)
    return 0


def _cmd_ledger(args, out) -> int:
    from .ledger import (
        diff_ledgers,
        explain_context,
        format_diff,
        read_ledger,
        replay_ledger,
        verify_ledger,
    )

    try:
        if args.ledger_command == "verify":
            result = verify_ledger(args.path)
            print(result.summary(), file=out)
            return 0 if result.ok else 1
        if args.ledger_command == "explain":
            print(explain_context(read_ledger(args.path), args.ctx_id), file=out)
            return 0
        if args.ledger_command == "replay":
            registry_factory = None
            if args.app is not None:
                app_cls, _ = _APPS[args.app]
                registry_factory = app_cls().build_registry
            result = replay_ledger(
                args.path,
                shards=args.shards,
                registry_factory=registry_factory,
            )
            print(result.summary(), file=out)
            return 0 if result.ok else 1
        diff = diff_ledgers(
            read_ledger(args.path_a), read_ledger(args.path_b)
        )
        print(
            format_diff(diff, label_a=args.path_a, label_b=args.path_b),
            file=out,
        )
        return 0 if diff["identical"] else 1
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_packs(args, out) -> int:
    from .scenarios import (
        PackRunner,
        get_pack,
        load_pack_file,
        pack_names,
        rank_strategies,
        validate_pack,
    )

    if args.packs_command == "list":
        print("Registered scenario packs:", file=out)
        for name in pack_names():
            pack = get_pack(name)
            kind = "declarative" if pack.portable else "app-backed"
            print(
                f"  {name:<18} {kind:<12} "
                f"{len(pack.strategies)} strategies  {pack.title}",
                file=out,
            )
        return 0

    if args.packs_command == "validate":
        targets = []
        for name in args.names or pack_names():
            try:
                targets.append(get_pack(name))
            except KeyError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        failures = 0
        for path in args.file:
            try:
                targets.append(load_pack_file(path))
            except (OSError, ValueError, KeyError) as error:
                print(f"FAIL {path}: {error}", file=out)
                failures += 1
        for pack in targets:
            errors = validate_pack(pack)
            if errors:
                failures += 1
                print(f"FAIL {pack.name}", file=out)
                for line in errors:
                    print(f"  - {line}", file=out)
            else:
                print(f"ok   {pack.name}", file=out)
        return 1 if failures else 0

    # packs run
    try:
        if args.file is not None:
            pack = load_pack_file(args.file)
        elif args.name is not None:
            pack = get_pack(args.name)
        else:
            print("error: give a pack name or --file PATH", file=sys.stderr)
            return 2
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    runner = PackRunner(pack, shards=args.shards)
    kernels = not args.no_kernels
    if args.strategy is not None:
        result = runner.run(
            args.strategy,
            err_rate=args.err,
            seed=args.seed,
            host=args.host,
            kernels=kernels,
            use_window=args.window,
            ledger_path=args.ledger,
        )
        metrics = result.metrics
        print(
            f"pack {result.pack} under {result.strategy} "
            f"[{result.host}] at err={result.err_rate:g} "
            f"seed={result.seed}:\n"
            f"  {metrics.contexts_total} contexts -> "
            f"{metrics.contexts_used} delivered, "
            f"{metrics.contexts_discarded} discarded "
            f"(survival {metrics.survival_rate:.1%}, "
            f"precision {metrics.removal_precision:.1%}), "
            f"{metrics.situations_activated} situation activation(s)",
            file=out,
        )
        for label, measures in (
            ("raw      ", result.measures_raw),
            ("delivered", result.measures_delivered),
        ):
            print(
                f"  measures[{label}]: universe={measures.universe} "
                f"drastic={measures.drastic} MI={measures.mi_count} "
                f"problematic={measures.problematic} "
                f"repair={measures.repair}",
                file=out,
            )
        print(f"  signature {result.signature()}", file=out)
        if args.ledger:
            print(f"  decision ledger written to {args.ledger}", file=out)
        return 0
    rates = (args.err,) if args.err is not None else None
    results = runner.sweep(
        err_rates=rates,
        groups=args.groups,
        host=args.host,
        kernels=kernels,
        base_seed=args.seed,
    )
    shown_rates = rates or pack.err_rates
    print(
        f"Full-roster sweep -- {pack.name} [{args.host}]: "
        f"{len(results)} runs ({args.groups} group(s) x rates "
        f"{'/'.join(f'{r:g}' for r in shown_rates)})",
        file=out,
    )
    print(
        f"  {'strategy':<16} {'runs':>4} {'resid.prob':>10} "
        f"{'resid.MI':>9} {'resid.repair':>12} {'survival':>9} "
        f"{'precision':>10}",
        file=out,
    )
    for row in rank_strategies(results):
        print(
            f"  {row['strategy']:<16} {row['runs']:>4} "
            f"{row['residual_problematic_ratio']:>10.4f} "
            f"{row['residual_mi']:>9.2f} "
            f"{row['residual_repair']:>12.2f} "
            f"{row['survival_rate']:>9.1%} "
            f"{row['removal_precision']:>10.1%}",
            file=out,
        )
    return 0


def _cmd_obs(args, out) -> int:
    from .obs import (
        json_text,
        prometheus_text,
        read_sidecar,
        sidecar_slowest_spans,
        sidecar_summary,
    )

    try:
        document = read_sidecar(args.path)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.obs_command == "summary":
        print(sidecar_summary(document), file=out)
    elif args.obs_command == "export":
        text = (
            prometheus_text(document["metrics"])
            if args.format == "prom"
            else json_text(document["metrics"])
        )
        print(text, file=out)
    else:
        print(sidecar_slowest_spans(document, top=args.top), file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "scenarios":
        return _cmd_scenarios(out)
    if args.command == "compare":
        return _cmd_compare(args, out)
    if args.command == "asynchrony":
        return _cmd_asynchrony(args, out)
    if args.command == "case-study":
        return _cmd_case_study(args, out)
    if args.command == "ablation":
        return _cmd_ablation(args, out)
    if args.command == "reproduce":
        from .experiments.reproduce import reproduce_paper

        reproduce_paper(
            groups=args.groups,
            out_path=args.out,
            progress=lambda message: print(message, file=out),
        )
        print(f"report written to {args.out}", file=out)
        return 0
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "engine":
        return _cmd_engine(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "loadgen":
        return _cmd_loadgen(args, out)
    if args.command == "ledger":
        return _cmd_ledger(args, out)
    if args.command == "packs":
        return _cmd_packs(args, out)
    if args.command == "obs":
        return _cmd_obs(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")
