"""Command-line interface: run the paper's experiments from a shell.

Usage (after ``pip install -e .``)::

    python -m repro scenarios
    python -m repro compare call-forwarding --groups 5
    python -m repro compare rfid --groups 5 --window 20
    python -m repro case-study --seed 7
    python -m repro ablation window
    python -m repro ablation tiebreak
    python -m repro trace record rfid --out stream.jsonl --err 0.3
    python -m repro trace replay stream.jsonl --strategy drop-bad
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .apps.call_forwarding import CallForwardingApp
from .apps.rfid_anomalies import RFIDAnomaliesApp
from .apps.smart_phone import SmartPhoneApp
from .core.strategy import make_strategy, strategy_names
from .experiments.ablations import run_tiebreak_ablation, run_window_ablation
from .experiments.case_study import run_case_study
from .experiments.harness import ComparisonConfig, run_comparison, run_group
from .experiments.report import (
    format_case_study,
    format_comparison,
    format_scenarios,
    format_tiebreak_ablation,
    format_window_ablation,
)
from .experiments.scenarios import SCENARIOS, replay_strategy
from .middleware.trace import read_trace, write_trace

__all__ = ["main", "build_parser"]

_APPS = {
    "call-forwarding": (CallForwardingApp, {"use_window": 10, "kwargs": {}}),
    "rfid": (RFIDAnomaliesApp, {"use_window": 20, "kwargs": {}}),
    "smart-phone": (SmartPhoneApp, {"use_window": 8, "kwargs": {}}),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ICDCS 2008 context-inconsistency-resolution reproduction",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "scenarios", help="replay the Figure 1-5 walkthroughs"
    )

    compare = commands.add_parser(
        "compare", help="run a Figure 9/10 style strategy comparison"
    )
    compare.add_argument("app", choices=sorted(_APPS))
    compare.add_argument("--groups", type=int, default=5)
    compare.add_argument("--window", type=int, default=None)
    compare.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.1, 0.2, 0.3, 0.4],
    )

    case_study = commands.add_parser(
        "case-study", help="run the Section 5.2 Landmarc case study"
    )
    case_study.add_argument("--seed", type=int, default=7)

    ablation = commands.add_parser(
        "ablation", help="run a design-choice ablation"
    )
    ablation.add_argument("which", choices=["window", "tiebreak"])
    ablation.add_argument("--groups", type=int, default=4)

    reproduce = commands.add_parser(
        "reproduce", help="run the whole paper and write a report"
    )
    reproduce.add_argument("--groups", type=int, default=5)
    reproduce.add_argument("--out", default="REPRODUCTION_REPORT.md")

    trace = commands.add_parser("trace", help="record or replay a stream")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_sub.add_parser("record", help="write a workload to JSONL")
    record.add_argument("app", choices=sorted(_APPS))
    record.add_argument("--out", required=True)
    record.add_argument("--err", type=float, default=0.3)
    record.add_argument("--seed", type=int, default=1)
    replay = trace_sub.add_parser("replay", help="replay a JSONL trace")
    replay.add_argument("path")
    replay.add_argument(
        "--strategy", default="drop-bad", choices=strategy_names()
    )
    replay.add_argument("--window", type=int, default=10)

    return parser


def _cmd_scenarios(out) -> int:
    outcomes = [
        replay_strategy(strategy, scenario, refined=refined)
        for strategy in ("opt-r", "drop-bad", "drop-latest", "drop-all")
        for scenario in SCENARIOS
        for refined in (False, True)
    ]
    print(format_scenarios(outcomes), file=out)
    return 0


def _cmd_compare(args, out) -> int:
    app_cls, defaults = _APPS[args.app]
    config = ComparisonConfig(
        err_rates=tuple(args.rates),
        groups_per_point=args.groups,
        use_window=args.window
        if args.window is not None
        else defaults["use_window"],
    )
    result = run_comparison(app_cls(), config)
    print(
        format_comparison(result, f"Strategy comparison -- {args.app}"),
        file=out,
    )
    return 0


def _cmd_case_study(args, out) -> int:
    result = run_case_study(seed=args.seed)
    print(format_case_study(result), file=out)
    return 0


def _cmd_ablation(args, out) -> int:
    if args.which == "window":
        points = run_window_ablation(
            RFIDAnomaliesApp(), groups=args.groups, workload_kwargs={"items": 8}
        )
        print(format_window_ablation(points), file=out)
    else:
        points = run_tiebreak_ablation(
            CallForwardingApp(),
            groups=args.groups,
            workload_kwargs={"duration": 240.0},
        )
        print(format_tiebreak_ablation(points), file=out)
    return 0


def _cmd_trace(args, out) -> int:
    if args.trace_command == "record":
        app_cls, _ = _APPS[args.app]
        contexts = app_cls().generate_workload(args.err, seed=args.seed)
        count = write_trace(contexts, args.out)
        print(f"wrote {count} contexts to {args.out}", file=out)
        return 0
    contexts = read_trace(args.path)
    types = {c.ctx_type for c in contexts}
    if "rfid_read" in types:
        app = RFIDAnomaliesApp()
    elif "venue" in types:
        app = SmartPhoneApp()
    else:
        app = CallForwardingApp()
    metrics = run_group(
        app,
        make_strategy(args.strategy),
        contexts,
        err_rate=0.0,
        seed=0,
        use_window=args.window,
    )
    print(
        f"replayed {metrics.contexts_total} contexts under "
        f"{args.strategy}:\n"
        f"  delivered {metrics.contexts_used} "
        f"({metrics.contexts_used_expected} expected), "
        f"discarded {metrics.contexts_discarded} "
        f"(precision {metrics.removal_precision:.1%}, "
        f"survival {metrics.survival_rate:.1%})",
        file=out,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "scenarios":
        return _cmd_scenarios(out)
    if args.command == "compare":
        return _cmd_compare(args, out)
    if args.command == "case-study":
        return _cmd_case_study(args, out)
    if args.command == "ablation":
        return _cmd_ablation(args, out)
    if args.command == "reproduce":
        from .experiments.reproduce import reproduce_paper

        reproduce_paper(
            groups=args.groups,
            out_path=args.out,
            progress=lambda message: print(message, file=out),
        )
        print(f"report written to {args.out}", file=out)
        return 0
    if args.command == "trace":
        return _cmd_trace(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")
