"""RF signal propagation for the LANDMARC simulation.

The LANDMARC case study (paper Section 5.2, [12]) needs RSSI readings
of active RFID tags at several readers.  We use the standard
log-distance path-loss model with log-normal shadowing:

    RSSI(d) = P0 - 10 * n * log10(d / d0) + X_sigma

where ``P0`` is the received power at reference distance ``d0``,
``n`` the path-loss exponent (2..4 indoors) and ``X_sigma`` zero-mean
Gaussian shadowing.  This reproduces the *relative* RSSI geometry that
LANDMARC's k-nearest-reference-tag estimation relies on, which is all
the case-study experiment needs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["PathLossModel", "Reader", "rssi_vector"]

Point = Tuple[float, float]


@dataclass(frozen=True)
class Reader:
    """An RFID reader with a fixed position."""

    name: str
    position: Point


class PathLossModel:
    """Log-distance path loss with optional log-normal shadowing."""

    def __init__(
        self,
        *,
        p0: float = -40.0,
        exponent: float = 2.4,
        d0: float = 1.0,
        shadow_sigma: float = 2.0,
    ) -> None:
        if d0 <= 0:
            raise ValueError("reference distance d0 must be positive")
        if exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        self.p0 = p0
        self.exponent = exponent
        self.d0 = d0
        self.shadow_sigma = shadow_sigma

    def rssi(
        self, tag: Point, reader: Point, rng: Optional[random.Random] = None
    ) -> float:
        """RSSI (dBm) of ``tag`` as seen by a reader at ``reader``."""
        distance = max(self.d0, math.hypot(tag[0] - reader[0], tag[1] - reader[1]))
        value = self.p0 - 10.0 * self.exponent * math.log10(distance / self.d0)
        if rng is not None and self.shadow_sigma > 0:
            value += rng.gauss(0.0, self.shadow_sigma)
        return value


def rssi_vector(
    tag: Point,
    readers: Sequence[Reader],
    model: PathLossModel,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """The tag's RSSI at every reader, in reader order."""
    return [model.rssi(tag, reader.position, rng) for reader in readers]
