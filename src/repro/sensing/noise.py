"""Error-injection models with a controlled error rate.

The paper produces contexts "by a client thread with a controlled
error rate (err_rate) from 10% to 40%", derived from real-life RFID
error-rate observations [8][14].  These models implement that client
thread's noise: each ground-truth sample either passes through with
benign measurement jitter (an *expected* context) or is corrupted into
an erroneous reading (a *corrupted* context).  The ground-truth flag is
stamped on the produced context for the oracle and the metrics layer.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .environment import FloorPlan, Point

__all__ = ["NoisyReading", "LocationNoiseModel", "RoomNoiseModel", "ZoneNoiseModel"]


@dataclass(frozen=True)
class NoisyReading:
    """A sensor reading after error injection."""

    value: object
    corrupted: bool


class LocationNoiseModel:
    """Coordinate-level noise for location tracking.

    * Expected readings get zero-mean Gaussian jitter with standard
      deviation ``jitter_sigma`` -- the ordinary inaccuracy of indoor
      location tracking that does NOT breach the velocity constraint.
    * Corrupted readings (probability ``err_rate``) are displaced by a
      large distance (uniform in ``displacement_range``) in a random
      direction -- the kind of deviation Figure 1's d3 exhibits, which
      makes the walker appear to "jump".
    """

    def __init__(
        self,
        err_rate: float,
        rng: random.Random,
        *,
        jitter_sigma: float = 0.25,
        displacement_range: Tuple[float, float] = (6.0, 15.0),
    ) -> None:
        if not 0.0 <= err_rate <= 1.0:
            raise ValueError(f"err_rate must be in [0, 1], got {err_rate}")
        lo, hi = displacement_range
        if lo <= 0 or hi < lo:
            raise ValueError(f"bad displacement_range {displacement_range}")
        self.err_rate = err_rate
        self.rng = rng
        self.jitter_sigma = jitter_sigma
        self.displacement_range = displacement_range

    def observe(self, true_position: Point) -> NoisyReading:
        """Produce a reading of ``true_position``."""
        x, y = true_position
        if self.rng.random() < self.err_rate:
            distance = self.rng.uniform(*self.displacement_range)
            angle = self.rng.uniform(0.0, 2.0 * math.pi)
            return NoisyReading(
                value=(x + distance * math.cos(angle), y + distance * math.sin(angle)),
                corrupted=True,
            )
        return NoisyReading(
            value=(
                x + self.rng.gauss(0.0, self.jitter_sigma),
                y + self.rng.gauss(0.0, self.jitter_sigma),
            ),
            corrupted=False,
        )


class RoomNoiseModel:
    """Room-level noise for badge sightings (Call Forwarding).

    A corrupted sighting reports a uniformly random *other* room --
    e.g. a reflection picked up by the wrong infrared sensor, the
    classic Active Badge failure mode.
    """

    def __init__(
        self, err_rate: float, rooms: Sequence[str], rng: random.Random
    ) -> None:
        if not 0.0 <= err_rate <= 1.0:
            raise ValueError(f"err_rate must be in [0, 1], got {err_rate}")
        if len(rooms) < 2:
            raise ValueError("room-level noise needs at least two rooms")
        self.err_rate = err_rate
        self.rooms = list(rooms)
        self.rng = rng

    def observe(self, true_room: str) -> NoisyReading:
        if self.rng.random() < self.err_rate:
            others = [r for r in self.rooms if r != true_room]
            return NoisyReading(value=self.rng.choice(others), corrupted=True)
        return NoisyReading(value=true_room, corrupted=False)


class ZoneNoiseModel:
    """Zone-level noise for RFID reads (RFID data anomalies).

    Corrupted reads are *cross reads* / *ghost reads*: the tag is
    reported at a random different zone, as happens when a reader's
    field bleeds into a neighbouring zone or multipath produces a
    phantom detection [8][14].
    """

    def __init__(
        self, err_rate: float, zones: Sequence[str], rng: random.Random
    ) -> None:
        if not 0.0 <= err_rate <= 1.0:
            raise ValueError(f"err_rate must be in [0, 1], got {err_rate}")
        if len(zones) < 2:
            raise ValueError("zone-level noise needs at least two zones")
        self.err_rate = err_rate
        self.zones = list(zones)
        self.rng = rng

    def observe(self, true_zone: str) -> NoisyReading:
        if self.rng.random() < self.err_rate:
            others = [z for z in self.zones if z != true_zone]
            return NoisyReading(value=self.rng.choice(others), corrupted=True)
        return NoisyReading(value=true_zone, corrupted=False)
