"""The LANDMARC indoor location algorithm (Ni et al. [12]).

LANDMARC estimates an active RFID tag's position from its RSSI vector
by comparison with *reference tags* at known positions:

1. measure the tracking tag's RSSI at each reader: θ = (θ_1..θ_m);
2. for each reference tag j with RSSI vector S_j, compute the
   Euclidean signal-space distance E_j = sqrt(Σ_r (θ_r - S_j,r)^2);
3. take the k reference tags with smallest E_j and weight them by
   w_j = (1/E_j²) / Σ_i (1/E_i²);
4. the estimate is the weighted centroid Σ_j w_j * p_j.

The paper's Section 5.2 case study feeds LANDMARC location estimates
through the resolution strategies; this simulation provides the same
estimator over the synthetic RF field of :mod:`repro.sensing.rf`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .rf import PathLossModel, Reader, rssi_vector

__all__ = ["ReferenceTag", "LandmarcEstimator", "grid_reference_tags", "corner_readers"]

Point = Tuple[float, float]


@dataclass(frozen=True)
class ReferenceTag:
    """A fixed tag with known position used for calibration."""

    name: str
    position: Point


def grid_reference_tags(
    x0: float, y0: float, x1: float, y1: float, spacing: float
) -> List[ReferenceTag]:
    """Reference tags on a regular grid over a rectangle."""
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    tags: List[ReferenceTag] = []
    index = 0
    y = y0
    while y <= y1 + 1e-9:
        x = x0
        while x <= x1 + 1e-9:
            tags.append(ReferenceTag(f"ref-{index}", (x, y)))
            index += 1
            x += spacing
        y += spacing
    return tags


def corner_readers(x0: float, y0: float, x1: float, y1: float) -> List[Reader]:
    """Four readers at the corners of a rectangle (the usual layout)."""
    return [
        Reader("reader-sw", (x0, y0)),
        Reader("reader-se", (x1, y0)),
        Reader("reader-nw", (x0, y1)),
        Reader("reader-ne", (x1, y1)),
    ]


class LandmarcEstimator:
    """k-nearest-neighbour LANDMARC position estimation.

    Parameters
    ----------
    readers, reference_tags:
        Fixed infrastructure.
    path_loss:
        The RF propagation model used both to calibrate the reference
        map and to measure tracking tags.
    k:
        Number of nearest reference tags (LANDMARC found k=4 best).
    calibration_rng:
        If given, reference RSSI vectors are measured *with* shadowing
        noise (realistic calibration); otherwise the noiseless model is
        used.
    """

    def __init__(
        self,
        readers: Sequence[Reader],
        reference_tags: Sequence[ReferenceTag],
        path_loss: Optional[PathLossModel] = None,
        *,
        k: int = 4,
        calibration_rng: Optional[random.Random] = None,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if len(reference_tags) < k:
            raise ValueError(
                f"need at least k={k} reference tags, got {len(reference_tags)}"
            )
        if not readers:
            raise ValueError("need at least one reader")
        self.readers = list(readers)
        self.reference_tags = list(reference_tags)
        self.path_loss = path_loss or PathLossModel()
        self.k = k
        self._reference_vectors = [
            rssi_vector(tag.position, self.readers, self.path_loss, calibration_rng)
            for tag in self.reference_tags
        ]

    def estimate_from_rssi(self, theta: Sequence[float]) -> Point:
        """Estimate a position from a measured RSSI vector."""
        if len(theta) != len(self.readers):
            raise ValueError(
                f"RSSI vector length {len(theta)} != reader count "
                f"{len(self.readers)}"
            )
        distances: List[Tuple[float, int]] = []
        for index, vector in enumerate(self._reference_vectors):
            e = math.sqrt(sum((t - s) ** 2 for t, s in zip(theta, vector)))
            distances.append((e, index))
        distances.sort()
        nearest = distances[: self.k]
        # Weight by inverse squared signal distance (LANDMARC eq. 3).
        epsilon = 1e-9
        weights = [1.0 / (e * e + epsilon) for e, _ in nearest]
        total = sum(weights)
        x = sum(
            w * self.reference_tags[idx].position[0]
            for w, (_, idx) in zip(weights, nearest)
        )
        y = sum(
            w * self.reference_tags[idx].position[1]
            for w, (_, idx) in zip(weights, nearest)
        )
        return (x / total, y / total)

    def estimate(
        self, true_position: Point, rng: Optional[random.Random] = None
    ) -> Point:
        """Measure a tag at ``true_position`` and estimate its location."""
        theta = rssi_vector(true_position, self.readers, self.path_loss, rng)
        return self.estimate_from_rssi(theta)

    def error(self, true_position: Point, rng: Optional[random.Random] = None) -> float:
        """Localization error (metres) for one measurement."""
        estimate = self.estimate(true_position, rng)
        return math.hypot(
            estimate[0] - true_position[0], estimate[1] - true_position[1]
        )
