"""Simulated sensing substrate: environments, mobility, sensors, noise."""

from .badge import BadgeSensorNetwork, BadgeSighting
from .environment import FloorPlan, Room, office_floor, warehouse_floor
from .landmarc import (
    LandmarcEstimator,
    ReferenceTag,
    corner_readers,
    grid_reference_tags,
)
from .mobility import RandomWaypointWalker, ScriptedPath, TruePosition, ZoneFlowWalker
from .noise import LocationNoiseModel, NoisyReading, RoomNoiseModel, ZoneNoiseModel
from .perturb import (
    dedup_stream,
    delay_stream,
    duplicate_stream,
    reorder_stream,
    skew_stream,
)
from .rf import PathLossModel, Reader, rssi_vector
from .rfid import RFIDRead, ZoneReaderArray
from .source import (
    BadgeContextSource,
    ContextSource,
    RFIDContextSource,
    TrackedLocationSource,
    merge_streams,
)

__all__ = [
    "BadgeSensorNetwork",
    "BadgeSighting",
    "FloorPlan",
    "Room",
    "office_floor",
    "warehouse_floor",
    "LandmarcEstimator",
    "ReferenceTag",
    "corner_readers",
    "grid_reference_tags",
    "RandomWaypointWalker",
    "ScriptedPath",
    "TruePosition",
    "ZoneFlowWalker",
    "LocationNoiseModel",
    "NoisyReading",
    "RoomNoiseModel",
    "ZoneNoiseModel",
    "PathLossModel",
    "Reader",
    "rssi_vector",
    "RFIDRead",
    "ZoneReaderArray",
    "BadgeContextSource",
    "ContextSource",
    "RFIDContextSource",
    "TrackedLocationSource",
    "merge_streams",
    "dedup_stream",
    "delay_stream",
    "duplicate_stream",
    "reorder_stream",
    "skew_stream",
]
