"""RFID reader simulation.

Zone readers detect tagged items present in their zone each polling
cycle.  Real RFID streams suffer missed reads, ghost/cross reads and
duplicates [8][14]; the reader couples with
:class:`~repro.sensing.noise.ZoneNoiseModel` for cross reads and adds
independent miss and duplicate processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from .mobility import TruePosition
from .noise import ZoneNoiseModel

__all__ = ["RFIDRead", "ZoneReaderArray"]


@dataclass(frozen=True)
class RFIDRead:
    """One read event: a tag reported at a zone at a time."""

    tag: str
    zone: str
    timestamp: float
    corrupted: bool


class ZoneReaderArray:
    """Readers covering the zones of a facility.

    Converts a stream of ground-truth item positions into read events:

    * each true sample is read with probability ``1 - miss_rate``;
    * a read passes through the zone noise model, which cross-reads it
      into a wrong zone with the controlled error rate;
    * after a successful read, an extra duplicate read (same zone,
      slightly later) occurs with probability ``duplicate_rate``;
      duplicates of expected reads are expected.
    """

    def __init__(
        self,
        noise: ZoneNoiseModel,
        rng: random.Random,
        *,
        miss_rate: float = 0.05,
        duplicate_rate: float = 0.05,
        duplicate_delay: float = 0.2,
    ) -> None:
        for name, rate in (("miss_rate", miss_rate), ("duplicate_rate", duplicate_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.noise = noise
        self.rng = rng
        self.miss_rate = miss_rate
        self.duplicate_rate = duplicate_rate
        self.duplicate_delay = duplicate_delay

    def read_stream(self, truth: Sequence[TruePosition]) -> List[RFIDRead]:
        """Read events for a ground-truth item trace, in time order."""
        reads: List[RFIDRead] = []
        for sample in truth:
            if sample.room is None:
                continue
            if self.rng.random() < self.miss_rate:
                continue
            reading = self.noise.observe(sample.room)
            read = RFIDRead(
                tag=sample.subject,
                zone=str(reading.value),
                timestamp=sample.timestamp,
                corrupted=reading.corrupted,
            )
            reads.append(read)
            if self.rng.random() < self.duplicate_rate:
                reads.append(
                    RFIDRead(
                        tag=read.tag,
                        zone=read.zone,
                        timestamp=read.timestamp + self.duplicate_delay,
                        corrupted=read.corrupted,
                    )
                )
        reads.sort(key=lambda r: (r.timestamp, r.tag))
        return reads
