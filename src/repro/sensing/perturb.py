"""Stream perturbation adapters: asynchrony a transport would inflict.

The workload generators emit *synchronized* streams -- one context per
instant, timestamp order equals arrival order, exactly-once delivery.
Real pervasive deployments break every one of those assumptions
(PAPER.md Section 2: sensors report over lossy, buffered, retrying
transports).  These adapters inject the four canonical failure shapes
into any context stream, deterministically under a caller-supplied
:class:`random.Random`:

* :func:`delay_stream` -- each context's *arrival* lags its production
  timestamp by a random delay, and arrivals are re-sorted by arrival
  instant: late contexts now arrive behind fresher ones.
* :func:`reorder_stream` -- bounded local shuffling (a window of
  adjacent positions), the classic multi-connection interleave.
* :func:`duplicate_stream` -- at-least-once delivery: a copy of a
  context re-arrives strictly *after* its original.
* :func:`skew_stream` -- per-source clock skew: every timestamp of a
  source shifts by that source's fixed offset (:func:`dataclasses.
  replace`; ids and payloads untouched).

All adapters are pure: they return new lists, never mutate the input,
and -- except :func:`skew_stream`, which rewrites timestamps, and
:func:`duplicate_stream`, which adds copies -- preserve the exact
multiset of context objects (pinned by property tests in
``tests/sensing/test_perturb.py``).  :func:`dedup_stream` is the
inverse of :func:`duplicate_stream`: first-wins by ``ctx_id``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Sequence

from ..core.context import Context

__all__ = [
    "delay_stream",
    "reorder_stream",
    "duplicate_stream",
    "skew_stream",
    "dedup_stream",
]


def delay_stream(
    contexts: Sequence[Context],
    rng: random.Random,
    *,
    max_delay: float,
    p: float = 1.0,
) -> List[Context]:
    """Arrival order under random per-context transport delay.

    With probability ``p`` a context's arrival lags its timestamp by
    ``U(0, max_delay)`` simulation seconds (otherwise it arrives
    instantly).  The returned list is the stream in *arrival* order:
    sorted by ``timestamp + delay``, ties broken by original position,
    so a zero ``max_delay`` is the identity on the (timestamp-sorted)
    generated workloads.  Contexts themselves are
    unmodified -- the checker still sees the produced timestamps, only
    later and shuffled.
    """
    if max_delay < 0:
        raise ValueError(f"max_delay must be >= 0, got {max_delay}")
    keyed = []
    for position, ctx in enumerate(contexts):
        delay = (
            rng.uniform(0.0, max_delay) if rng.random() < p else 0.0
        )
        keyed.append((ctx.timestamp + delay, position, ctx))
    keyed.sort(key=lambda item: (item[0], item[1]))
    return [item[2] for item in keyed]


def reorder_stream(
    contexts: Sequence[Context],
    rng: random.Random,
    *,
    window: int,
) -> List[Context]:
    """Bounded local shuffle: each context moves at most ``window``
    positions from where it was produced.

    Models several pipelined connections interleaving: global order is
    scrambled but nothing travels arbitrarily far.  ``window=0`` is
    the identity.  Implemented as a random sort-key jitter of up to
    ``window`` positions, which bounds total displacement by
    ``2 * window``.
    """
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    keyed = [
        (position + rng.uniform(0.0, float(window)), position, ctx)
        for position, ctx in enumerate(contexts)
    ]
    keyed.sort(key=lambda item: (item[0], item[1]))
    return [item[2] for item in keyed]


def duplicate_stream(
    contexts: Sequence[Context],
    rng: random.Random,
    *,
    p: float,
    max_gap: int = 8,
) -> List[Context]:
    """At-least-once delivery: some contexts arrive twice.

    With probability ``p`` a context is re-delivered ``1..max_gap``
    positions after its original -- strictly after, never before, the
    way a retrying transport duplicates.  The copy is the *same*
    object (same ``ctx_id``), which is precisely what a dedup layer or
    the async-check ingress must catch.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if max_gap < 1:
        raise ValueError(f"max_gap must be >= 1, got {max_gap}")
    out: List[Context] = []
    # (remaining gap, context) pairs waiting to be re-injected.
    pending: List[List] = []
    for ctx in contexts:
        out.append(ctx)
        for slot in pending:
            slot[0] -= 1
        while pending and pending[0][0] <= 0:
            out.append(pending.pop(0)[1])
        if rng.random() < p:
            pending.append([rng.randint(1, max_gap), ctx])
        pending.sort(key=lambda slot: slot[0])
    out.extend(ctx for _, ctx in pending)  # tail copies past the end
    return out


def skew_stream(
    contexts: Sequence[Context],
    rng: random.Random,
    *,
    max_skew: float,
) -> List[Context]:
    """Per-source clock skew: each source's clock runs offset.

    Every distinct ``source`` draws one fixed offset in
    ``[-max_skew, +max_skew]`` (a skewed clock is consistently wrong,
    not noisy), applied to all its timestamps via
    :func:`dataclasses.replace`.  Arrival order is left as produced --
    compose with :func:`delay_stream` or :func:`reorder_stream` for
    skewed *and* shuffled streams.  Offsets are clamped so no
    timestamp goes negative.
    """
    if max_skew < 0:
        raise ValueError(f"max_skew must be >= 0, got {max_skew}")
    offsets: Dict[str, float] = {}
    out: List[Context] = []
    for ctx in contexts:
        offset = offsets.get(ctx.source)
        if offset is None:
            offset = offsets[ctx.source] = rng.uniform(-max_skew, max_skew)
        skewed = max(0.0, ctx.timestamp + offset)
        out.append(dataclasses.replace(ctx, timestamp=skewed))
    return out


def dedup_stream(contexts: Sequence[Context]) -> List[Context]:
    """First-wins deduplication by ``ctx_id``.

    The inverse of :func:`duplicate_stream`: because duplicates are
    always injected strictly after their originals, deduplicating a
    duplicated stream restores it exactly (pinned by property test).
    """
    seen = set()
    out: List[Context] = []
    for ctx in contexts:
        if ctx.ctx_id in seen:
            continue
        seen.add(ctx.ctx_id)
        out.append(ctx)
    return out
