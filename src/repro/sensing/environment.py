"""Physical environment model: rooms, zones, floor plans.

The paper's workloads move people and tagged items through indoor
environments (offices for Call Forwarding, a tagged-goods facility for
the RFID data anomalies application).  A floor plan is a set of
axis-aligned rectangular rooms plus an adjacency (walkability) graph
used by the mobility model to route walkers.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

__all__ = ["Room", "FloorPlan", "office_floor", "warehouse_floor"]

Point = Tuple[float, float]


@dataclass(frozen=True)
class Room:
    """An axis-aligned rectangular room or zone.

    ``kind`` tags the room's function ("office", "corridor",
    "meeting", "dock", ...) so applications can express feasibility
    constraints ("Peter is only permitted in offices and corridors").
    """

    name: str
    x0: float
    y0: float
    x1: float
    y1: float
    kind: str = "room"

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"room {self.name!r} has non-positive extent")

    @property
    def center(self) -> Point:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    def contains(self, point: Point) -> bool:
        x, y = point
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def random_point(self, rng: random.Random, margin: float = 0.2) -> Point:
        """A uniform random interior point, keeping ``margin`` from walls."""
        margin = min(margin, self.width / 4.0, self.height / 4.0)
        return (
            rng.uniform(self.x0 + margin, self.x1 - margin),
            rng.uniform(self.y0 + margin, self.y1 - margin),
        )


class FloorPlan:
    """A set of rooms plus a walkability graph between them.

    Parameters
    ----------
    rooms:
        The rooms; names must be unique.
    doors:
        Pairs of room names that are directly connected.  Walkers move
        room to room only along these edges.
    """

    def __init__(
        self, rooms: Iterable[Room], doors: Iterable[Tuple[str, str]] = ()
    ) -> None:
        self._rooms: Dict[str, Room] = {}
        for room in rooms:
            if room.name in self._rooms:
                raise ValueError(f"duplicate room name {room.name!r}")
            self._rooms[room.name] = room
        self.graph = nx.Graph()
        self.graph.add_nodes_from(self._rooms)
        for a, b in doors:
            if a not in self._rooms or b not in self._rooms:
                raise ValueError(f"door ({a!r}, {b!r}) references unknown room")
            self.graph.add_edge(a, b)

    # -- lookup ----------------------------------------------------------

    def room(self, name: str) -> Room:
        return self._rooms[name]

    def rooms(self) -> List[Room]:
        return [self._rooms[name] for name in sorted(self._rooms)]

    def room_names(self) -> List[str]:
        return sorted(self._rooms)

    def rooms_of_kind(self, kind: str) -> List[Room]:
        return [r for r in self.rooms() if r.kind == kind]

    def room_at(self, point: Point) -> Optional[Room]:
        """The room containing ``point``, if any (first match wins)."""
        for room in self.rooms():
            if room.contains(point):
                return room
        return None

    def bounds(self) -> Tuple[float, float, float, float]:
        """Bounding box (x0, y0, x1, y1) over all rooms."""
        rooms = self.rooms()
        return (
            min(r.x0 for r in rooms),
            min(r.y0 for r in rooms),
            max(r.x1 for r in rooms),
            max(r.y1 for r in rooms),
        )

    # -- routing -----------------------------------------------------------

    def route(self, start: str, goal: str) -> List[str]:
        """Room-name path from ``start`` to ``goal`` along doors."""
        return nx.shortest_path(self.graph, start, goal)

    def neighbors(self, name: str) -> List[str]:
        return sorted(self.graph.neighbors(name))

    def door_point(self, a: str, b: str, inset: float = 0.5) -> Point:
        """The midpoint of the shared boundary of two connected rooms,
        pushed ``inset`` into room ``b``.

        Walkers route through door points so that consecutive position
        samples only ever cross between rooms that actually share a
        door -- otherwise a diagonal path could cut through a room the
        walker cannot reach, producing false badge transitions.
        """
        if not self.graph.has_edge(a, b):
            raise ValueError(f"rooms {a!r} and {b!r} are not connected")
        room_a, room_b = self.room(a), self.room(b)
        x0 = max(room_a.x0, room_b.x0)
        x1 = min(room_a.x1, room_b.x1)
        y0 = max(room_a.y0, room_b.y0)
        y1 = min(room_a.y1, room_b.y1)
        x = (x0 + x1) / 2.0
        y = (y0 + y1) / 2.0
        # Push perpendicular to the shared face, into room b.
        if x1 - x0 >= y1 - y0:  # horizontal face: offset in y
            y += inset if room_b.center[1] > y else -inset
        else:  # vertical face: offset in x
            x += inset if room_b.center[0] > x else -inset
        return (x, y)

    def are_connected(self, a: str, b: str) -> bool:
        return nx.has_path(self.graph, a, b)

    def feasible_rooms(self, kinds: Sequence[str]) -> FrozenSet[str]:
        """Names of rooms whose kind is in ``kinds``."""
        return frozenset(r.name for r in self.rooms() if r.kind in kinds)


def office_floor() -> FloorPlan:
    """The office floor used by the Call Forwarding workload.

    A central corridor connecting four offices, a meeting room, a lab
    and a lounge -- the kind of environment the Active Badge system
    [15] was deployed in.  Dimensions are in metres.
    """
    rooms = [
        Room("corridor", 0.0, 8.0, 40.0, 12.0, kind="corridor"),
        Room("office-1", 0.0, 0.0, 10.0, 8.0, kind="office"),
        Room("office-2", 10.0, 0.0, 20.0, 8.0, kind="office"),
        Room("office-3", 20.0, 0.0, 30.0, 8.0, kind="office"),
        Room("office-4", 30.0, 0.0, 40.0, 8.0, kind="office"),
        Room("meeting", 0.0, 12.0, 14.0, 20.0, kind="meeting"),
        Room("lab", 14.0, 12.0, 28.0, 20.0, kind="lab"),
        Room("lounge", 28.0, 12.0, 40.0, 20.0, kind="lounge"),
    ]
    doors = [
        ("office-1", "corridor"),
        ("office-2", "corridor"),
        ("office-3", "corridor"),
        ("office-4", "corridor"),
        ("meeting", "corridor"),
        ("lab", "corridor"),
        ("lounge", "corridor"),
    ]
    return FloorPlan(rooms, doors)


def warehouse_floor() -> FloorPlan:
    """The tagged-goods facility for the RFID data anomalies workload.

    Items flow dock -> staging -> shelf zones -> checkout, which gives
    the flow-order consistency constraints something to bite on.
    """
    rooms = [
        Room("dock", 0.0, 0.0, 10.0, 10.0, kind="dock"),
        Room("staging", 10.0, 0.0, 20.0, 10.0, kind="staging"),
        Room("shelf-A", 20.0, 0.0, 30.0, 5.0, kind="shelf"),
        Room("shelf-B", 20.0, 5.0, 30.0, 10.0, kind="shelf"),
        Room("shelf-C", 30.0, 0.0, 40.0, 5.0, kind="shelf"),
        Room("shelf-D", 30.0, 5.0, 40.0, 10.0, kind="shelf"),
        Room("checkout", 40.0, 0.0, 48.0, 10.0, kind="checkout"),
    ]
    doors = [
        ("dock", "staging"),
        ("staging", "shelf-A"),
        ("staging", "shelf-B"),
        ("shelf-A", "shelf-C"),
        ("shelf-B", "shelf-D"),
        ("shelf-A", "shelf-B"),
        ("shelf-C", "shelf-D"),
        ("shelf-C", "checkout"),
        ("shelf-D", "checkout"),
    ]
    return FloorPlan(rooms, doors)
