"""Mobility models: how subjects move through a floor plan.

The location workloads sample a walker's true position at a fixed
period while the walker travels between rooms at a steady average
velocity ``v`` -- the paper's running example assumes "Peter walks
steadily at an average velocity of v over one period", with the
consistency constraint bounding estimated velocity at ``150% of v``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from .environment import FloorPlan, Point, Room

__all__ = ["TruePosition", "ScriptedPath", "RandomWaypointWalker", "ZoneFlowWalker"]


@dataclass(frozen=True)
class TruePosition:
    """Ground truth sample of a subject's location."""

    subject: str
    timestamp: float
    position: Point
    room: Optional[str] = None


def _interpolate(a: Point, b: Point, fraction: float) -> Point:
    return (a[0] + (b[0] - a[0]) * fraction, a[1] + (b[1] - a[1]) * fraction)


def _distance(a: Point, b: Point) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


class ScriptedPath:
    """A fixed polyline walked at constant speed; used by the
    Figure 1-5 scenario walkthroughs and by deterministic tests."""

    def __init__(
        self,
        subject: str,
        waypoints: Sequence[Point],
        speed: float,
        floor: Optional[FloorPlan] = None,
        start_time: float = 0.0,
    ) -> None:
        if len(waypoints) < 2:
            raise ValueError("a scripted path needs at least two waypoints")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.subject = subject
        self.waypoints = [tuple(map(float, p)) for p in waypoints]
        self.speed = speed
        self.floor = floor
        self.start_time = start_time

    def sample(self, period: float, count: Optional[int] = None) -> List[TruePosition]:
        """True positions every ``period`` seconds along the polyline."""
        if period <= 0:
            raise ValueError("period must be positive")
        samples: List[TruePosition] = []
        t = self.start_time
        leg = 0
        pos = self.waypoints[0]
        remaining_budget = math.inf if count is None else count
        while remaining_budget > 0:
            room = self.floor.room_at(pos) if self.floor else None
            samples.append(
                TruePosition(
                    self.subject, t, pos, room.name if room else None
                )
            )
            remaining_budget -= 1
            # Advance along the polyline by speed * period.
            travel = self.speed * period
            while travel > 0 and leg < len(self.waypoints) - 1:
                seg_end = self.waypoints[leg + 1]
                seg_left = _distance(pos, seg_end)
                if travel < seg_left:
                    pos = _interpolate(pos, seg_end, travel / seg_left)
                    travel = 0.0
                else:
                    travel -= seg_left
                    pos = seg_end
                    leg += 1
            t += period
            if leg >= len(self.waypoints) - 1 and pos == self.waypoints[-1]:
                if count is None:
                    room = self.floor.room_at(pos) if self.floor else None
                    samples.append(
                        TruePosition(
                            self.subject, t, pos, room.name if room else None
                        )
                    )
                    break
        return samples


class RandomWaypointWalker:
    """Random-waypoint mobility over a floor plan.

    The walker repeatedly picks a destination room (uniformly among
    ``allowed_rooms``), routes to it along doors, walks there at
    ``speed``, then dwells for a random pause.  Positions are sampled
    every ``period`` seconds.
    """

    def __init__(
        self,
        subject: str,
        floor: FloorPlan,
        rng: random.Random,
        *,
        speed: float = 1.2,
        period: float = 2.0,
        allowed_rooms: Optional[Sequence[str]] = None,
        dwell_range: Tuple[float, float] = (4.0, 16.0),
        start_room: Optional[str] = None,
    ) -> None:
        if speed <= 0 or period <= 0:
            raise ValueError("speed and period must be positive")
        self.subject = subject
        self.floor = floor
        self.rng = rng
        self.speed = speed
        self.period = period
        self.rooms = list(allowed_rooms or floor.room_names())
        self.dwell_range = dwell_range
        self.start_room = start_room or self.rooms[0]

    def walk(self, duration: float, start_time: float = 0.0) -> List[TruePosition]:
        """Ground-truth samples covering ``duration`` seconds."""
        samples: List[TruePosition] = []
        t = start_time
        end = start_time + duration
        current_room = self.start_room
        pos = self.floor.room(current_room).center

        def emit(position: Point, time: float) -> None:
            room = self.floor.room_at(position)
            samples.append(
                TruePosition(
                    self.subject, time, position, room.name if room else None
                )
            )

        while t < end:
            # Dwell in the current room around the current position.
            dwell = self.rng.uniform(*self.dwell_range)
            dwell_end = min(t + dwell, end)
            while t < dwell_end:
                emit(pos, t)
                t += self.period
            if t >= end:
                break
            # Choose a new destination and walk the door graph to it.
            # Each door is crossed through a pair of waypoints, one
            # just inside each room, so every path segment has both
            # endpoints inside a single (convex) room: samples can
            # never appear to hop between unconnected rooms.
            choices = [r for r in self.rooms if r != current_room]
            destination = self.rng.choice(choices) if choices else current_room
            route = self.floor.route(current_room, destination)
            path_points: List[Point] = [pos]
            for here, there in zip(route, route[1:]):
                path_points.append(self.floor.door_point(there, here))
                path_points.append(self.floor.door_point(here, there))
            path_points.append(
                self.floor.room(route[-1]).random_point(self.rng)
            )
            leg = 0
            while leg < len(path_points) - 1 and t < end:
                seg_start, seg_end = path_points[leg], path_points[leg + 1]
                seg_len = _distance(seg_start, seg_end)
                travel = self.speed * self.period
                if seg_len < 1e-9:
                    leg += 1
                    continue
                steps = max(1, int(math.ceil(seg_len / travel)))
                for step in range(1, steps + 1):
                    if t >= end:
                        break
                    pos = _interpolate(seg_start, seg_end, min(1.0, step / steps))
                    emit(pos, t)
                    t += self.period
                leg += 1
            current_room = route[-1]
        return samples


class ZoneFlowWalker:
    """Moves a tagged item through an ordered zone flow (RFID workload).

    The item enters at the first zone, dwells a random number of
    sampling periods in each zone, and progresses to a random next zone
    along the floor's door graph toward the final zone.
    """

    def __init__(
        self,
        subject: str,
        floor: FloorPlan,
        flow: Sequence[str],
        rng: random.Random,
        *,
        period: float = 2.0,
        dwell_samples: Tuple[int, int] = (2, 5),
    ) -> None:
        if len(flow) < 2:
            raise ValueError("a zone flow needs at least two zones")
        self.subject = subject
        self.floor = floor
        self.flow = list(flow)
        self.rng = rng
        self.period = period
        self.dwell_samples = dwell_samples

    def walk(self, start_time: float = 0.0) -> List[TruePosition]:
        """Samples of the item's journey through the flow."""
        samples: List[TruePosition] = []
        t = start_time
        for zone_name in self.flow:
            zone = self.floor.room(zone_name)
            dwell = self.rng.randint(*self.dwell_samples)
            for _ in range(dwell):
                samples.append(
                    TruePosition(
                        self.subject, t, zone.random_point(self.rng), zone_name
                    )
                )
                t += self.period
        return samples
