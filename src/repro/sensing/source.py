"""Context sources: turning sensor events into middleware contexts.

A context source is the paper's "client thread": it produces contexts
with a controlled error rate and hands them to the middleware.  Each
source wraps one sensing pipeline (walker -> sensor -> noise) and
emits :class:`~repro.core.context.Context` objects; multiple sources
are merged by timestamp into one stream.
"""

from __future__ import annotations

import heapq
import random
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.context import Context, ContextFactory, INFINITE_LIFESPAN
from .badge import BadgeSighting
from .mobility import TruePosition
from .noise import LocationNoiseModel
from .rfid import RFIDRead

__all__ = [
    "ContextSource",
    "TrackedLocationSource",
    "BadgeContextSource",
    "RFIDContextSource",
    "merge_streams",
]


class ContextSource(ABC):
    """Produces a finite, time-ordered stream of contexts."""

    name: str = "source"

    @abstractmethod
    def contexts(self) -> Iterator[Context]:
        """Yield contexts in non-decreasing timestamp order."""


class TrackedLocationSource(ContextSource):
    """Coordinate location contexts from a walker trace + noise model.

    This is the Figure 1 pipeline: tracked locations "calculated
    chronologically by a location tracking application", deviating from
    the walker's actual path due to tracking inaccuracy, with occasional
    serious deviations (corrupted contexts).
    """

    def __init__(
        self,
        truth: Sequence[TruePosition],
        noise: LocationNoiseModel,
        factory: ContextFactory,
        *,
        name: str = "location-tracker",
        ctx_type: str = "location",
        lifespan: float = INFINITE_LIFESPAN,
    ) -> None:
        self.name = name
        self._truth = list(truth)
        self._noise = noise
        self._factory = factory
        self._ctx_type = ctx_type
        self._lifespan = lifespan

    def contexts(self) -> Iterator[Context]:
        for sample in self._truth:
            reading = self._noise.observe(sample.position)
            yield self._factory.make(
                self._ctx_type,
                sample.subject,
                reading.value,
                sample.timestamp,
                lifespan=self._lifespan,
                source=self.name,
                corrupted=reading.corrupted,
                attributes={"true_room": sample.room},
            )


class BadgeContextSource(ContextSource):
    """Room-level location contexts from badge sightings."""

    def __init__(
        self,
        sightings: Sequence[BadgeSighting],
        factory: ContextFactory,
        *,
        name: str = "badge-network",
        ctx_type: str = "badge",
        lifespan: float = INFINITE_LIFESPAN,
    ) -> None:
        self.name = name
        self._sightings = list(sightings)
        self._factory = factory
        self._ctx_type = ctx_type
        self._lifespan = lifespan

    def contexts(self) -> Iterator[Context]:
        for sighting in self._sightings:
            yield self._factory.make(
                self._ctx_type,
                sighting.subject,
                sighting.room,
                sighting.timestamp,
                lifespan=self._lifespan,
                source=self.name,
                corrupted=sighting.corrupted,
            )


class RFIDContextSource(ContextSource):
    """Zone-read contexts from an RFID read stream."""

    def __init__(
        self,
        reads: Sequence[RFIDRead],
        factory: ContextFactory,
        *,
        name: str = "rfid-readers",
        ctx_type: str = "rfid_read",
        lifespan: float = INFINITE_LIFESPAN,
    ) -> None:
        self.name = name
        self._reads = list(reads)
        self._factory = factory
        self._ctx_type = ctx_type
        self._lifespan = lifespan

    def contexts(self) -> Iterator[Context]:
        for read in self._reads:
            yield self._factory.make(
                self._ctx_type,
                read.tag,
                read.zone,
                read.timestamp,
                lifespan=self._lifespan,
                source=self.name,
                corrupted=read.corrupted,
            )


def merge_streams(*sources: ContextSource) -> List[Context]:
    """Merge several sources into one timestamp-ordered stream.

    Stable across runs: ties are broken by (timestamp, context id).
    """
    merged: List[Context] = []
    for source in sources:
        merged.extend(source.contexts())
    merged.sort(key=lambda c: (c.timestamp, c.ctx_id))
    return merged
