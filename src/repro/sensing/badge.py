"""Active Badge sighting simulation (Want et al. [15]).

The Call Forwarding application of the paper is adapted from the
Active Badge Location System: infrared sensors in each room sight the
badges worn by staff, and calls are forwarded to the phone nearest the
wearer's current location.  A sighting is a room-level location
context; corrupted sightings report the wrong room.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .mobility import TruePosition
from .noise import RoomNoiseModel

__all__ = ["BadgeSighting", "BadgeSensorNetwork"]


@dataclass(frozen=True)
class BadgeSighting:
    """A badge seen by a room sensor at a time."""

    subject: str
    room: str
    timestamp: float
    corrupted: bool


class BadgeSensorNetwork:
    """Room infrared sensors converting ground truth into sightings.

    * Samples whose true position is outside any room produce nothing.
    * A sighting is missed with probability ``miss_rate`` (badge
      occluded, a known Active Badge limitation).
    * Surviving sightings pass through the room noise model, which
      misreports the room at the controlled error rate.
    """

    def __init__(
        self,
        noise: RoomNoiseModel,
        rng: random.Random,
        *,
        miss_rate: float = 0.05,
    ) -> None:
        if not 0.0 <= miss_rate <= 1.0:
            raise ValueError(f"miss_rate must be in [0, 1], got {miss_rate}")
        self.noise = noise
        self.rng = rng
        self.miss_rate = miss_rate

    def sightings(self, truth: Sequence[TruePosition]) -> List[BadgeSighting]:
        """Sighting events for a walker's ground-truth trace."""
        out: List[BadgeSighting] = []
        for sample in truth:
            if sample.room is None:
                continue
            if self.rng.random() < self.miss_rate:
                continue
            reading = self.noise.observe(sample.room)
            out.append(
                BadgeSighting(
                    subject=sample.subject,
                    room=str(reading.value),
                    timestamp=sample.timestamp,
                    corrupted=reading.corrupted,
                )
            )
        return out
