"""Snapshot-window ingress: asynchronous checking over unordered streams.

The checker, the runtime driver and both host adapters historically
assumed a *synchronized* stream -- contexts arriving in timestamp order
from one clock.  Real pervasive deployments violate that constantly:
contexts arrive late, reordered, duplicated and with skewed source
clocks, and the paper's Rules 1/2/2' are only sound against views whose
timestamps do not regress (the simulation clock is strictly monotone;
an out-of-order arrival is silently evaluated at the *wrong* now).

:class:`SnapshotIngress` restores that soundness the way the
snapshot-based asynchronous event-detection line (SECA; Huang et al.,
PAPERS.md) does: arrivals are buffered into a bounded snapshot window
keyed by context timestamp, and only released -- in timestamp order --
once a *watermark* guarantees no earlier context can still be accepted.

Semantics
---------
* The **watermark** is ``max_observed_timestamp - max_lag``: a context
  is releasable once the stream has advanced ``max_lag`` past it, the
  window in which a late context may still legally arrive.
* The **cursor** is the largest released timestamp.  A context is
  **stale** iff ``timestamp < cursor`` -- it can no longer be placed in
  sorted order, so admitting it would regress the checker's clock.  A
  context *below the watermark but at/after the cursor* is still
  accepted: it is placed in order and released immediately.
* **Duplicates** (a ctx_id seen within the ``dedup_window`` most recent
  ids) are dropped before buffering.
* The buffer is **bounded**: past ``max_buffer`` pending contexts the
  oldest is force-released (counted in :attr:`forced`), advancing the
  cursor early -- under overload the ingress degrades gracefully toward
  synchronous behavior instead of growing without bound.

The load-bearing invariant, relied on by the ledger's deterministic
replay: *the released stream is always timestamp-sorted* (both the
watermark pops and the forced pops take the heap minimum, and stale
arrivals below the cursor are never admitted).  A driver fed from this
ingress therefore sees ``now == ctx.timestamp`` at every release, the
simulation clock never regresses, and re-feeding the released stream --
which is exactly what ledger arrival entries record -- through the same
configuration reproduces every decision byte for byte.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.context import Context
from .scheduler import BoundedIdSet

__all__ = ["AsyncCheckConfig", "IngressOutcome", "SnapshotIngress"]


@dataclass(frozen=True)
class AsyncCheckConfig:
    """Tunables of the snapshot-window asynchronous checking mode.

    Parameters
    ----------
    max_lag:
        Watermark lag in simulated seconds: how far behind the maximum
        observed timestamp a context may arrive and still be reordered
        into place.  Should cover the deployment's worst expected
        delivery delay plus clock skew; see
        :func:`repro.constraints.horizon.temporal_horizon` for deriving
        a lower bound from the constraint set itself.
    max_buffer:
        Bound on buffered (unreleased) contexts; the oldest is
        force-released past it.
    dedup_window:
        How many recent ctx_ids the duplicate filter remembers (exact
        dedup within the window, O(dedup_window) memory).
    per_source:
        Track the maximum observed timestamp *per context source* and
        take the watermark from the slowest **active** source instead
        of the global maximum.  A consistently slow source (transport
        delay, clock skew) then holds the window open so its arrivals
        are reordered into place rather than dropped stale -- the
        global max-based watermark races ahead on the fastest source
        and penalizes stragglers.
    source_idle_arrivals:
        Straggler bound for ``per_source`` mode: a source that stays
        silent while this many arrivals are accepted from other
        sources is considered *idle* and evicted from the watermark
        minimum, so one stalled source cannot stall the whole window
        forever.  It is reinstated by its next accepted arrival.
    """

    max_lag: float = 5.0
    max_buffer: int = 1024
    dedup_window: int = 4096
    per_source: bool = False
    source_idle_arrivals: int = 64

    def __post_init__(self) -> None:
        if self.max_lag < 0:
            raise ValueError(f"max_lag must be >= 0, got {self.max_lag}")
        if self.max_buffer < 1:
            raise ValueError(
                f"max_buffer must be >= 1, got {self.max_buffer}"
            )
        if self.dedup_window < 1:
            raise ValueError(
                f"dedup_window must be >= 1, got {self.dedup_window}"
            )
        if self.source_idle_arrivals < 1:
            raise ValueError(
                f"source_idle_arrivals must be >= 1, got "
                f"{self.source_idle_arrivals}"
            )

    def to_document(self) -> dict:
        """Plain-JSON form for the ledger's ruleset header."""
        return {
            "max_lag": self.max_lag,
            "max_buffer": self.max_buffer,
            "dedup_window": self.dedup_window,
            "per_source": self.per_source,
            "source_idle_arrivals": self.source_idle_arrivals,
        }

    @classmethod
    def from_document(cls, doc: Mapping[str, object]) -> "AsyncCheckConfig":
        """Rebuild from a :meth:`to_document` mapping (ledger replay)."""
        return cls(
            max_lag=float(doc.get("max_lag", 5.0)),  # type: ignore[arg-type]
            max_buffer=int(doc.get("max_buffer", 1024)),  # type: ignore[arg-type]
            dedup_window=int(doc.get("dedup_window", 4096)),  # type: ignore[arg-type]
            per_source=bool(doc.get("per_source", False)),
            source_idle_arrivals=int(
                doc.get("source_idle_arrivals", 64)  # type: ignore[arg-type]
            ),
        )


@dataclass(frozen=True)
class IngressOutcome:
    """What one :meth:`SnapshotIngress.offer` did.

    ``released`` is the (possibly empty) timestamp-sorted run of
    contexts the offer made releasable; ``dropped`` is ``None`` when
    the offered context was buffered or released, else ``"stale"`` /
    ``"duplicate"``.
    """

    released: Tuple[Context, ...]
    dropped: Optional[str] = None


class SnapshotIngress:
    """Bounded reorder buffer releasing a timestamp-sorted stream."""

    __slots__ = (
        "config",
        "_heap",
        "_seq",
        "_max_ts",
        "_cursor",
        "_seen",
        "_arrivals",
        "_source_max",
        "_source_seen_at",
        "released",
        "stale",
        "duplicates",
        "forced",
        "evicted_sources",
    )

    def __init__(self, config: AsyncCheckConfig) -> None:
        self.config = config
        self._heap: List[Tuple[float, int, Context]] = []
        self._seq = 0
        self._max_ts = float("-inf")
        self._cursor = float("-inf")
        self._seen = BoundedIdSet(maxlen=config.dedup_window)
        #: Accepted arrivals (per-source idle detection clock).
        self._arrivals = 0
        #: source name -> largest accepted timestamp (per_source mode).
        self._source_max: Dict[str, float] = {}
        #: source name -> arrival count at its last accepted arrival.
        self._source_seen_at: Dict[str, int] = {}
        #: Contexts released to the pipeline (watermark + forced + flush).
        self.released = 0
        #: Arrivals dropped because their timestamp predates the cursor.
        self.stale = 0
        #: Arrivals dropped by the ctx_id duplicate filter.
        self.duplicates = 0
        #: Releases forced by the ``max_buffer`` bound (before their
        #: watermark; a high rate means ``max_buffer`` is undersized
        #: for the stream's disorder).
        self.forced = 0
        #: Times a stalled source was dropped from the per-source
        #: watermark minimum (``source_idle_arrivals`` exceeded).
        self.evicted_sources = 0

    def __len__(self) -> int:
        """Buffered (offered but not yet released) contexts."""
        return len(self._heap)

    @property
    def watermark(self) -> float:
        """Largest timestamp currently releasable (``-inf`` initially).

        Global mode: ``max observed - max_lag``.  Per-source mode: the
        minimum over the *tracked* sources' observed maxima, minus the
        lag -- at most the global watermark, holding the window open
        for the slowest live source.  Stalled sources are evicted from
        the tracking map on arrival (see :meth:`offer`), and removing
        a term from a minimum can only raise it, so one straggler
        stops stalling the watermark as soon as it is evicted.
        """
        base = self._max_ts - self.config.max_lag
        if not self.config.per_source or not self._source_max:
            return base
        return min(self._source_max.values()) - self.config.max_lag

    @property
    def cursor(self) -> float:
        """Largest released timestamp; arrivals below it are stale."""
        return self._cursor

    def offer(self, ctx: Context) -> IngressOutcome:
        """Accept one arrival; return the run it makes releasable."""
        if not self._seen.add(ctx.ctx_id):
            self.duplicates += 1
            return IngressOutcome(released=(), dropped="duplicate")
        if ctx.timestamp < self._cursor:
            self.stale += 1
            return IngressOutcome(released=(), dropped="stale")
        self._seq += 1
        heapq.heappush(self._heap, (ctx.timestamp, self._seq, ctx))
        if ctx.timestamp > self._max_ts:
            self._max_ts = ctx.timestamp
        if self.config.per_source:
            self._track_source(ctx)
        return IngressOutcome(released=tuple(self._release()))

    def _track_source(self, ctx: Context) -> None:
        """Per-source bookkeeping: maxima, liveness, straggler eviction."""
        self._arrivals += 1
        source = ctx.source
        if ctx.timestamp > self._source_max.get(source, float("-inf")):
            self._source_max[source] = ctx.timestamp
        self._source_seen_at[source] = self._arrivals
        bound = self.config.source_idle_arrivals
        idle = [
            name
            for name, seen_at in self._source_seen_at.items()
            if self._arrivals - seen_at > bound
        ]
        for name in idle:
            del self._source_max[name]
            del self._source_seen_at[name]
            self.evicted_sources += 1

    def _release(self) -> List[Context]:
        heap = self._heap
        out: List[Context] = []
        watermark = self.watermark
        while heap and heap[0][0] <= watermark:
            out.append(heapq.heappop(heap)[2])
        while len(heap) > self.config.max_buffer:
            out.append(heapq.heappop(heap)[2])
            self.forced += 1
        if out:
            # Heap pops are non-decreasing, so the last pop is the max.
            self._cursor = out[-1].timestamp
            self.released += len(out)
        return out

    def flush(self) -> List[Context]:
        """Release everything still buffered, in timestamp order
        (end-of-stream / drain)."""
        heap = self._heap
        out: List[Context] = []
        while heap:
            out.append(heapq.heappop(heap)[2])
        if out:
            self._cursor = out[-1].timestamp
            self.released += len(out)
        return out

    def stats(self) -> Dict[str, float]:
        """Counters + window position, for telemetry and ``/stats``."""
        return {
            "buffered": float(len(self._heap)),
            "released": float(self.released),
            "stale": float(self.stale),
            "duplicates": float(self.duplicates),
            "forced": float(self.forced),
            "evicted_sources": float(self.evicted_sources),
            "tracked_sources": float(len(self._source_max)),
            "watermark": self.watermark,
            "cursor": self._cursor,
        }

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data picklable state (shard checkpoint payload)."""
        return {
            "heap": list(self._heap),
            "seq": self._seq,
            "max_ts": self._max_ts,
            "cursor": self._cursor,
            "seen": list(self._seen._order),
            "released": self.released,
            "stale": self.stale,
            "duplicates": self.duplicates,
            "forced": self.forced,
            "arrivals": self._arrivals,
            "source_max": dict(self._source_max),
            "source_seen_at": dict(self._source_seen_at),
            "evicted_sources": self.evicted_sources,
        }

    def restore(self, state: Mapping[str, object]) -> None:
        """Adopt a :meth:`snapshot` (configuration lives in the spec)."""
        self._heap = list(state["heap"])  # type: ignore[arg-type]
        heapq.heapify(self._heap)
        self._seq = state["seq"]  # type: ignore[assignment]
        self._max_ts = state["max_ts"]  # type: ignore[assignment]
        self._cursor = state["cursor"]  # type: ignore[assignment]
        self._seen = BoundedIdSet(maxlen=self.config.dedup_window)
        for ctx_id in state["seen"]:  # type: ignore[union-attr]
            self._seen.add(ctx_id)
        self.released = state["released"]  # type: ignore[assignment]
        self.stale = state["stale"]  # type: ignore[assignment]
        self.duplicates = state["duplicates"]  # type: ignore[assignment]
        self.forced = state["forced"]  # type: ignore[assignment]
        # Per-source keys postdate the first checkpoint format; default
        # to empty so old checkpoints keep restoring.
        self._arrivals = state.get("arrivals", 0)  # type: ignore[assignment]
        self._source_max = dict(state.get("source_max", {}))  # type: ignore[arg-type]
        self._source_seen_at = dict(state.get("source_seen_at", {}))  # type: ignore[arg-type]
        self.evicted_sources = state.get("evicted_sources", 0)  # type: ignore[assignment]
