"""Amortized batch arrivals over a :class:`~.pipeline.PipelineDriver`.

:func:`receive_batch` applies a sequence of contexts with decisions
byte-identical to calling ``driver.receive`` per context -- the
equivalence suite machine-checks this -- while hoisting the per-arrival
bookkeeping the sequential path pays:

* **Expiry sweep guard.**  The sequential path asks every pipeline for
  due expiries on every arrival (O(shards) heap peeks per context).
  The batch path tracks one running lower bound -- the minimum pending
  expiry across all pipelines, tightened as admitted contexts bring
  finite lifespans in -- and sweeps only when the simulation clock
  actually reaches it.  Streams of immortal contexts pay a single float
  comparison per arrival.
* **Bound-method hoisting.**  The clock, scheduler, router and
  pipeline lookups are resolved once per batch, not per context.

Sweeping on the bound is sound because pool *removals* (uses, discards)
can only raise the true minimum pending expiry -- a stale bound causes
at most one redundant (cheap, heap-guarded) sweep -- and every pool
*insert* during the batch passes through ``pipeline.add``, where the
bound is tightened with the newcomer's expiry before the next arrival.

The bound stays sound even when batch timestamps *regress* (a late,
older-timestamped arrival), because of the dead-on-arrival intercept:
``now`` itself never regresses (it is the max of the clock and the
arrival timestamp), and a late context whose availability already
lapsed (``expiry <= now``) is expired at receive instead of admitted.
Every context that reaches the pool therefore satisfies
``expiry > now``, so tightening the bound with it can never place
``next_expiry`` in the past and no admitted context can sit in the
pool beyond its availability waiting for a sweep the bound skipped.
(Before the intercept, a regressing timestamp could admit an
already-dead context and deliver it from the very ``drain`` call that
follows -- the non-monotonic-timestamp hole the regression tests in
``tests/runtime/test_doa_and_regress.py`` pin.)

Since ISSUE 9 the batch path also *detects* in batches: when the
driver's ``batch_kernels`` flag is on, a planning pass precomputes
detection verdicts for whole runs of arrivals through the detector's
``detect_batch`` (the columnar kernel path of
:class:`~repro.constraints.checker.ConstraintChecker`), and each
arrival consumes its precomputed verdict instead of paying a
per-context ``detect``.  See :class:`_BatchDetectPlanner` for the
exact soundness conditions; whenever they cannot be established the
arrival transparently falls back to the per-context detect, so
decisions never depend on the flag.

The engine's shard batches (``ShardExecutionState.process_batch``) and
the middleware's ``receive_all`` both feed through here, so the batch
path is the one hot loop everything shares.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from ..core.context import Context
from .pipeline import PipelineDriver, ResolutionPipeline

__all__ = ["receive_batch"]


class _BatchDetectPlanner:
    """Precomputed ``detect_batch`` verdicts for one pipeline's arrivals.

    ``detect_batch``'s contract is the sequential sweep: row ``k`` is
    checked against the pre-existing scope plus rows ``[:k]``, both
    filtered to contexts alive at the row's clock.  That matches the
    real lifecycle exactly as long as

    * every planned row is admitted when its turn comes (no strategy
      discard of the newcomer or of victims, no dead-on-arrival or
      duplicate interception), and
    * nothing else leaves the pool except expiry (which the per-row
      cutoff filter reproduces), and
    * every pooled context participates in checking
      (``strategy.pool_equals_checking_scope``).

    The planner is therefore *reactive*: verdicts are precomputed
    optimistically for the maximal run of arrivals that provably
    cannot be intercepted (duplicate and dead-on-arrival checks are
    decidable at planning time -- clocks depend only on timestamps),
    and every non-expiry pool removal shows up in the pipeline's
    discard log, whose length is re-checked before each verdict is
    consumed.  On a mismatch the remaining rows are re-planned against
    the current pool, so a discard costs one extra ``detect_batch``
    call, never a wrong verdict.  Row identity and clock are verified
    per consume; any divergence abandons the plan for the rest of the
    batch (per-context fallback).
    """

    __slots__ = (
        "pipeline",
        "detector",
        "ids",
        "rows",
        "nows",
        "verdicts",
        "cursor",
        "discard_mark",
        "open",
    )

    def __init__(self, pipeline: ResolutionPipeline) -> None:
        self.pipeline = pipeline
        self.detector = pipeline.resolution.detector
        self.ids: Set[str] = set()
        self.rows: List[Context] = []
        self.nows: List[float] = []
        self.verdicts: List[List] = []
        self.cursor = 0
        self.discard_mark = 0
        #: Still accepting rows during the planning scan.
        self.open = True

    def offer(self, ctx: Context, now: float) -> None:
        """Accept ``ctx`` into the planned run, or close the run.

        A context that would be intercepted before detection -- dead on
        arrival (decidable now: clocks are timestamp-determined) or a
        duplicate of a live pooled id or of an earlier planned row --
        ends the run: everything after it takes the per-context path.
        """
        if not self.open:
            return
        if (
            ctx.expiry <= now
            or ctx.ctx_id in self.ids
            or self.pipeline.pool.get(ctx.ctx_id) is not None
        ):
            self.open = False
            return
        self.ids.add(ctx.ctx_id)
        self.rows.append(ctx)
        self.nows.append(now)

    def plan(self) -> None:
        """Precompute the verdicts for the accepted run.

        The ``detect_batch`` call is timed as the ``check`` stage (one
        observation per planned batch), so checking latency stays
        visible in the same histogram the per-context path feeds.
        """
        pipeline = self.pipeline
        self.discard_mark = len(pipeline.resolution.log.discarded)
        if self.rows:
            with pipeline.resolution.stage_check:
                self.verdicts = self.detector.detect_batch(
                    self.rows, pipeline.pool.contents(), self.nows
                )

    def take(self, ctx: Context, now: float) -> Optional[List]:
        """The precomputed verdict for ``ctx``, or ``None`` to fall back.

        Re-plans the remaining rows when the pipeline discarded
        contexts since the verdicts were computed (the scope the plan
        assumed no longer matches the pool).
        """
        if self.cursor >= len(self.rows):
            return None
        if len(self.pipeline.resolution.log.discarded) != self.discard_mark:
            del self.rows[: self.cursor]
            del self.nows[: self.cursor]
            self.cursor = 0
            self.plan()
        row = self.rows[self.cursor]
        if row.ctx_id != ctx.ctx_id or self.nows[self.cursor] != now:
            # The lifecycle diverged from the planned model (should be
            # unreachable -- interceptions are planned around); abandon
            # the rest of the plan rather than risk a stale verdict.
            self.cursor = len(self.rows)
            return None
        verdict = self.verdicts[self.cursor]
        self.cursor += 1
        return verdict


def _batch_planners(
    driver: PipelineDriver,
    contexts: Sequence[Context],
    routes: Sequence[int],
) -> Optional[Dict[int, _BatchDetectPlanner]]:
    """Plan ``detect_batch`` verdict runs for every eligible pipeline.

    Eligibility mirrors :class:`_BatchDetectPlanner`'s soundness
    conditions: the detector must expose ``detect_batch`` with its
    batch kernels enabled (with them off the sequential emulation would
    only add overhead), and the strategy must guarantee that the pool
    *is* the checking scope.  ``routes`` is the precomputed pipeline
    index per context (routing may count calls, so the caller routes
    each context exactly once and shares the result).  Returns ``None``
    when no pipeline qualifies, so the hot loop skips planner lookups
    entirely.
    """
    planners: Dict[int, Optional[_BatchDetectPlanner]] = {}
    for index, pipeline in enumerate(driver.pipelines):
        detector = pipeline.resolution.detector
        if (
            getattr(detector, "batch_kernels", False)
            and callable(getattr(detector, "detect_batch", None))
            and getattr(
                pipeline.resolution.strategy,
                "pool_equals_checking_scope",
                False,
            )
        ):
            planners[index] = _BatchDetectPlanner(pipeline)
        else:
            planners[index] = None
    if not any(planner is not None for planner in planners.values()):
        return None
    # One forward pass replays the clock advance (a pure function of
    # the timestamps) and offers each context to its pipeline's
    # planner.
    sim_now = driver.clock.now()
    for ctx, index in zip(contexts, routes):
        if ctx.timestamp > sim_now:
            sim_now = ctx.timestamp
        planner = planners[index]
        if planner is not None:
            planner.offer(ctx, sim_now)
    out = {
        index: planner
        for index, planner in planners.items()
        if planner is not None and planner.rows
    }
    if not out:
        return None
    for planner in out.values():
        planner.plan()
    return out


def receive_batch(
    driver: PipelineDriver,
    contexts: Sequence[Context],
    position_hook: Optional[Callable[[int], None]] = None,
) -> int:
    """Apply ``contexts`` in order; returns how many were processed.

    ``position_hook`` (used by the fault-injection harness) is called
    with the batch position before each context is processed.
    """
    if driver.ingress is not None:
        # Asynchronous checking: the snapshot window decides release
        # order per arrival, so the hoisted fast path (whose sweep
        # bound amortization assumes arrivals are processed as they
        # come) hands over to the per-context path.
        for position, ctx in enumerate(contexts):
            if position_hook is not None:
                position_hook(position)
            driver.receive(ctx)
        return len(contexts)
    pipelines = driver.pipelines
    scheduler = driver.scheduler
    clock = driver.clock
    route = driver.route
    time_based = scheduler.use_delay is not None
    drain = driver.drain_due_uses
    advance = clock.advance_to
    clock_now = clock.now
    # Routing may count calls (e.g. the engine's ContextRouter keeps
    # per-shard tallies), so each context is routed exactly once: the
    # planning pass and the hot loop share the precomputed indices.
    routes: Optional[List[int]] = None
    planners = None
    if getattr(driver, "batch_kernels", True):
        routes = [route(ctx) for ctx in contexts]
        planners = _batch_planners(driver, contexts, routes)

    next_expiry = min(
        (pipeline.next_expiry() for pipeline in pipelines),
        default=float("inf"),
    )
    position = 0
    for ctx in contexts:
        if position_hook is not None:
            position_hook(position)
        pipeline_index = routes[position] if routes is not None else route(ctx)
        position += 1
        now = ctx.timestamp
        current = clock_now()
        if current > now:
            now = current
        else:
            advance(now)
        if next_expiry <= now:
            for pipeline in pipelines:
                pipeline.expire_due(now)
            next_expiry = min(
                (pipeline.next_expiry() for pipeline in pipelines),
                default=float("inf"),
            )
        if time_based:
            drain(now)

        if ctx.expiry <= now:
            # Dead on arrival (see the module docstring): expire at
            # receive; the pool, the scheduler and the sweep bound
            # never see a context whose availability already lapsed.
            pipelines[pipeline_index].expire_on_receive(ctx, now)
            continue
        if pipelines[pipeline_index].pool.get(ctx.ctx_id) is not None:
            # Live-id re-delivery: refuse, mirroring the per-context
            # path (see PipelineDriver._receive_now).
            pipelines[pipeline_index].refuse_duplicate(ctx, now)
            continue
        detected = None
        if planners is not None:
            planner = planners.get(pipeline_index)
            if planner is not None:
                detected = planner.take(ctx, now)
        outcome = pipelines[pipeline_index].add(ctx, now, detected=detected)
        if ctx.ctx_id not in {c.ctx_id for c in outcome.discarded}:
            scheduler.schedule(ctx, pipeline_index, now)
            if ctx.expiry < next_expiry:
                next_expiry = ctx.expiry

        drain(now)
    return position
