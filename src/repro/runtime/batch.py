"""Amortized batch arrivals over a :class:`~.pipeline.PipelineDriver`.

:func:`receive_batch` applies a sequence of contexts with decisions
byte-identical to calling ``driver.receive`` per context -- the
equivalence suite machine-checks this -- while hoisting the per-arrival
bookkeeping the sequential path pays:

* **Expiry sweep guard.**  The sequential path asks every pipeline for
  due expiries on every arrival (O(shards) heap peeks per context).
  The batch path tracks one running lower bound -- the minimum pending
  expiry across all pipelines, tightened as admitted contexts bring
  finite lifespans in -- and sweeps only when the simulation clock
  actually reaches it.  Streams of immortal contexts pay a single float
  comparison per arrival.
* **Bound-method hoisting.**  The clock, scheduler, router and
  pipeline lookups are resolved once per batch, not per context.

Sweeping on the bound is sound because pool *removals* (uses, discards)
can only raise the true minimum pending expiry -- a stale bound causes
at most one redundant (cheap, heap-guarded) sweep -- and every pool
*insert* during the batch passes through ``pipeline.add``, where the
bound is tightened with the newcomer's expiry before the next arrival.

The bound stays sound even when batch timestamps *regress* (a late,
older-timestamped arrival), because of the dead-on-arrival intercept:
``now`` itself never regresses (it is the max of the clock and the
arrival timestamp), and a late context whose availability already
lapsed (``expiry <= now``) is expired at receive instead of admitted.
Every context that reaches the pool therefore satisfies
``expiry > now``, so tightening the bound with it can never place
``next_expiry`` in the past and no admitted context can sit in the
pool beyond its availability waiting for a sweep the bound skipped.
(Before the intercept, a regressing timestamp could admit an
already-dead context and deliver it from the very ``drain`` call that
follows -- the non-monotonic-timestamp hole the regression tests in
``tests/runtime/test_doa_and_regress.py`` pin.)

The engine's shard batches (``ShardExecutionState.process_batch``) and
the middleware's ``receive_all`` both feed through here, so the batch
path is the one hot loop everything shares.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..core.context import Context
from .pipeline import PipelineDriver

__all__ = ["receive_batch"]


def receive_batch(
    driver: PipelineDriver,
    contexts: Sequence[Context],
    position_hook: Optional[Callable[[int], None]] = None,
) -> int:
    """Apply ``contexts`` in order; returns how many were processed.

    ``position_hook`` (used by the fault-injection harness) is called
    with the batch position before each context is processed.
    """
    if driver.ingress is not None:
        # Asynchronous checking: the snapshot window decides release
        # order per arrival, so the hoisted fast path (whose sweep
        # bound amortization assumes arrivals are processed as they
        # come) hands over to the per-context path.
        for position, ctx in enumerate(contexts):
            if position_hook is not None:
                position_hook(position)
            driver.receive(ctx)
        return len(contexts)
    pipelines = driver.pipelines
    scheduler = driver.scheduler
    clock = driver.clock
    route = driver.route
    time_based = scheduler.use_delay is not None
    drain = driver.drain_due_uses
    advance = clock.advance_to
    clock_now = clock.now

    next_expiry = min(
        (pipeline.next_expiry() for pipeline in pipelines),
        default=float("inf"),
    )
    position = 0
    for ctx in contexts:
        if position_hook is not None:
            position_hook(position)
        position += 1
        now = ctx.timestamp
        current = clock_now()
        if current > now:
            now = current
        else:
            advance(now)
        if next_expiry <= now:
            for pipeline in pipelines:
                pipeline.expire_due(now)
            next_expiry = min(
                (pipeline.next_expiry() for pipeline in pipelines),
                default=float("inf"),
            )
        if time_based:
            drain(now)

        pipeline_index = route(ctx)
        if ctx.expiry <= now:
            # Dead on arrival (see the module docstring): expire at
            # receive; the pool, the scheduler and the sweep bound
            # never see a context whose availability already lapsed.
            pipelines[pipeline_index].expire_on_receive(ctx, now)
            continue
        if pipelines[pipeline_index].pool.get(ctx.ctx_id) is not None:
            # Live-id re-delivery: refuse, mirroring the per-context
            # path (see PipelineDriver._receive_now).
            pipelines[pipeline_index].refuse_duplicate(ctx, now)
            continue
        outcome = pipelines[pipeline_index].add(ctx, now)
        if ctx.ctx_id not in {c.ctx_id for c in outcome.discarded}:
            scheduler.schedule(ctx, pipeline_index, now)
            if ctx.expiry < next_expiry:
                next_expiry = ctx.expiry

        drain(now)
    return position
