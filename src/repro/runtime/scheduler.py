"""Use-window scheduling: when applications use received contexts.

The paper's drop-bad life cycle delays the *use* of a context by a
configurable window after its arrival (Section 5.3).  Two window
semantics exist, historically implemented twice (``Middleware`` and the
engine's ``StreamDriver``) with an O(n) deque rebuild on every discard.
:class:`UseScheduler` is the single implementation both now share:

* **count-based** (``use_window`` admitted arrivals) -- deterministic
  and the experiments' default;
* **time-based** (``use_delay`` simulated seconds) -- the Cabot
  "checking-sensitive period"; entries become due as the simulation
  clock passes ``arrived_at + use_delay``.

A zero window makes every context due immediately upon admission,
degenerating drop-bad into drop-latest (Section 5.3).

Discard-by-id is amortized O(1): entries live in a FIFO deque *and* an
id index; discarding tombstones the entry through the index instead of
rebuilding the deque.  Tombstones are dropped lazily when they surface
at the head, and the deque is compacted once tombstones outnumber live
entries (amortized constant work per discard) -- so pending-queue
length no longer multiplies discard cost (see the scheduler
micro-benchmark next to the pool guard).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.context import Context

__all__ = ["UseScheduler", "ScheduledUse", "BoundedIdSet"]

#: Compaction floor: never rebuild tiny queues, whatever the ratio.
_COMPACT_MIN_TOMBSTONES = 64


class ScheduledUse:
    """One pending use: the context plus its window bookkeeping.

    ``payload`` is opaque caller routing state (the pipeline index for
    multi-shard drivers); ``arrival_index`` is the admitted-arrival
    counter at schedule time (count-based windows); ``arrived_at`` is
    the simulation time of admission (time-based windows).
    """

    __slots__ = ("ctx", "payload", "arrival_index", "arrived_at", "discarded")

    def __init__(
        self,
        ctx: Context,
        payload: object,
        arrival_index: int,
        arrived_at: float,
    ) -> None:
        self.ctx = ctx
        self.payload = payload
        self.arrival_index = arrival_index
        self.arrived_at = arrived_at
        self.discarded = False


class UseScheduler:
    """FIFO use-window queue with O(1) discard, both window semantics.

    Exactly one of the two window parameters is consulted: when
    ``use_delay`` is not ``None`` the scheduler is time-based and
    ``use_window`` is ignored, mirroring the historical middleware
    contract.
    """

    def __init__(
        self, *, use_window: int = 4, use_delay: Optional[float] = None
    ) -> None:
        if use_window < 0:
            raise ValueError(f"use_window must be >= 0, got {use_window}")
        if use_delay is not None and use_delay < 0:
            raise ValueError(f"use_delay must be >= 0, got {use_delay}")
        self.use_window = use_window
        self.use_delay = use_delay
        #: Admitted arrivals so far (the count-based window's clock).
        self.arrivals = 0
        self._queue: Deque[ScheduledUse] = deque()
        self._by_id: Dict[str, ScheduledUse] = {}
        self._tombstones = 0

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self, ctx: Context, payload: object, arrived_at: float
    ) -> ScheduledUse:
        """Admit ``ctx`` and enqueue its pending use."""
        self.arrivals += 1
        entry = ScheduledUse(ctx, payload, self.arrivals, arrived_at)
        self._queue.append(entry)
        self._by_id[ctx.ctx_id] = entry
        return entry

    def discard(self, ctx_id: str) -> bool:
        """Unschedule a pending use by context id; O(1) amortized.

        Returns whether a pending entry existed.  Unknown ids are a
        no-op: strategies discard victims that may have been used or
        never admitted.
        """
        entry = self._by_id.pop(ctx_id, None)
        if entry is None:
            return False
        entry.discarded = True
        self._tombstones += 1
        if (
            self._tombstones > _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._queue)
        ):
            self._compact()
        return True

    def _compact(self) -> None:
        self._queue = deque(e for e in self._queue if not e.discarded)
        self._tombstones = 0

    # -- draining -------------------------------------------------------------

    def _head(self) -> Optional[ScheduledUse]:
        queue = self._queue
        while queue and queue[0].discarded:
            queue.popleft()
            self._tombstones -= 1
        return queue[0] if queue else None

    def _due(self, entry: ScheduledUse, now: float) -> bool:
        if self.use_delay is not None:
            return now >= entry.arrived_at + self.use_delay
        return self.arrivals - entry.arrival_index >= self.use_window

    def pop_due(self, now: float) -> Optional[ScheduledUse]:
        """Pop the oldest pending use that is due at ``now``, if any.

        One entry at a time by design: using a context can discard
        other *pending* contexts, which must stop being due before the
        next pop (the drain loop in the pipeline driver).
        """
        entry = self._head()
        if entry is None or not self._due(entry, now):
            return None
        self._queue.popleft()
        del self._by_id[entry.ctx.ctx_id]
        return entry

    def pop_next(self) -> Optional[ScheduledUse]:
        """Pop the oldest pending use regardless of its window (flush)."""
        entry = self._head()
        if entry is None:
            return None
        self._queue.popleft()
        del self._by_id[entry.ctx.ctx_id]
        return entry

    def next_due_at(self) -> float:
        """Earliest simulation time the head entry becomes due.

        ``-inf`` when the head is already due by count, ``inf`` when
        nothing is pending.  Lets batch paths skip per-context drain
        checks while the clock is below this bound.
        """
        entry = self._head()
        if entry is None:
            return float("inf")
        if self.use_delay is not None:
            return entry.arrived_at + self.use_delay
        if self.arrivals - entry.arrival_index >= self.use_window:
            return float("-inf")
        return float("inf")

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        """Live (non-tombstoned) pending uses."""
        return len(self._by_id)

    def pending(self) -> List[Context]:
        """Live pending contexts in schedule order (a fresh list)."""
        return [e.ctx for e in self._queue if not e.discarded]

    def queue_slots(self) -> int:
        """Deque slots held, tombstones included (compaction tests)."""
        return len(self._queue)

    # -- checkpointing --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data picklable state (live entries only)."""
        entries: List[Tuple[Context, object, int, float]] = [
            (e.ctx, e.payload, e.arrival_index, e.arrived_at)
            for e in self._queue
            if not e.discarded
        ]
        return {"arrivals": self.arrivals, "entries": entries}

    def restore(self, state: Dict[str, object]) -> None:
        """Adopt a :meth:`snapshot`; window parameters are not part of
        the state (they live in the spec that rebuilt this scheduler)."""
        self.arrivals = state["arrivals"]  # type: ignore[assignment]
        self._queue.clear()
        self._by_id.clear()
        self._tombstones = 0
        for ctx, payload, arrival_index, arrived_at in state["entries"]:  # type: ignore[union-attr]
            entry = ScheduledUse(ctx, payload, arrival_index, arrived_at)
            self._queue.append(entry)
            self._by_id[ctx.ctx_id] = entry


class BoundedIdSet:
    """Recently-seen id set with bounded memory (FIFO eviction).

    Backs ``Middleware.used_count``: distinct-use counting needs to
    recognize a context used twice in close succession, but keeping
    every id of an unbounded stream leaks (the historical ``_used_ids``
    set).  Ids are remembered in insertion order and the oldest are
    evicted past ``maxlen`` -- dedup stays exact within the retention
    window, memory stays O(maxlen) however long the stream runs.
    """

    __slots__ = ("_ids", "_order", "maxlen")

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._ids: set = set()
        self._order: Deque[str] = deque()

    def add(self, item: str) -> bool:
        """Remember ``item``; returns ``True`` when it was not present."""
        if item in self._ids:
            return False
        self._ids.add(item)
        self._order.append(item)
        if len(self._order) > self.maxlen:
            self._ids.discard(self._order.popleft())
        return True

    def __contains__(self, item: object) -> bool:
        return item in self._ids

    def __len__(self) -> int:
        return len(self._ids)
