"""The canonical resolution runtime (ISSUE 5).

One implementation of the paper's receive -> check -> resolve -> use ->
deliver/discard life cycle, shared by every entry point:

* :class:`~repro.middleware.manager.Middleware` -- the single-pool
  reproduction host -- is a thin adapter over one
  :class:`ResolutionPipeline` and one :class:`PipelineDriver`;
* the engine's ``ShardPipeline``/``StreamDriver``
  (:mod:`repro.engine.shard`) adapt the same classes per shard, with
  :class:`UseScheduler` state riding shard checkpoints.

See ``docs/runtime.md`` for the stage/semantics reference.
"""

from .batch import receive_batch
from .pipeline import PipelineDriver, ResolutionPipeline
from .scheduler import BoundedIdSet, ScheduledUse, UseScheduler
from .snapshot import AsyncCheckConfig, IngressOutcome, SnapshotIngress

__all__ = [
    "AsyncCheckConfig",
    "BoundedIdSet",
    "IngressOutcome",
    "PipelineDriver",
    "ResolutionPipeline",
    "ScheduledUse",
    "SnapshotIngress",
    "UseScheduler",
    "receive_batch",
]
