"""The canonical resolution pipeline: one lifecycle, every entry point.

The paper's drop-bad life cycle -- receive -> check -> resolve -> use ->
deliver/discard (Sections 4-5) -- used to be implemented twice: once in
``middleware/manager.py`` and again in ``engine/shard.py``.  This
module is now the only place the lifecycle exists; the middleware
manager and the engine shards are thin adapters over it.

Two classes split the work along the line the sharded engine needs:

* :class:`ResolutionPipeline` -- the per-pool stage logic: the context
  addition change (check + resolve + publication), the deletion (use)
  change, heap-guarded expiry, and the telemetry stage instruments
  (``receive/check/resolve/use/deliver/discard`` -- check/resolve live
  in :class:`~repro.core.resolver.ResolutionService`).  It is
  parameterized by detector, strategy, bus, telemetry, and -- once a
  driver binds it -- a shared clock and :class:`~.scheduler.UseScheduler`.
* :class:`PipelineDriver` -- the arrival loop over one or more
  pipelines: the simulation clock, the use scheduler, routing, due-use
  draining and end-of-stream flushing.  One driver over n pipelines is
  the inline engine's global schedule; one driver over one pipeline is
  the single-pool middleware and the shard-local worker schedule.

Expiry is registered through a pool listener, so *every* pool insert
(including checkpoint restores, which re-add the pool contents) lands
in the expiry heap; streams of immortal contexts pay O(1) per arrival.
"""

from __future__ import annotations

import heapq
from itertools import islice
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..core.context import Context
from ..core.resolver import AddOutcome, ResolutionService, UseOutcome
from ..core.strategy import ResolutionStrategy
from ..middleware.bus import (
    ContextAdmitted,
    ContextBuffered,
    ContextDelivered,
    ContextDiscarded,
    ContextDuplicate,
    ContextExpired,
    ContextMarkedBad,
    ContextReceived,
    ContextStale,
    EventBus,
    InconsistencyDetected,
)
from ..middleware.clock import SimulationClock
from ..middleware.pool import ContextPool
from .scheduler import UseScheduler
from .snapshot import AsyncCheckConfig, SnapshotIngress

__all__ = ["ResolutionPipeline", "PipelineDriver"]


class _ExpiryListener:
    """Pool listener feeding the pipeline's expiry heap.

    Registered on the pool at pipeline construction, so direct pool
    inserts (tests, checkpoint restores) schedule expiry too -- the
    heap can never miss a context the pool holds.
    """

    __slots__ = ("_pipeline",)

    def __init__(self, pipeline: "ResolutionPipeline") -> None:
        self._pipeline = pipeline

    def on_add(self, ctx: Context) -> None:
        pipeline = self._pipeline
        if ctx.expiry != float("inf"):
            pipeline._heap_seq += 1
            heapq.heappush(
                pipeline._expiry_heap, (ctx.expiry, pipeline._heap_seq, ctx)
            )

    def on_remove(self, ctx: Context) -> None:
        pass  # heap entries for removed contexts are skipped lazily

    def on_clear(self) -> None:
        pipeline = self._pipeline
        pipeline._expiry_heap.clear()
        pipeline._heap_seq = 0


class ResolutionPipeline:
    """One pool's receive/check/resolve/use/expire stage logic.

    Parameters
    ----------
    detector:
        Inconsistency detector (usually a
        :class:`~repro.constraints.checker.ConstraintChecker`).  A
        detector with ``attach_pool`` gets the pipeline's pool, so
        persistent candidate indexes ride the pool listeners.
    strategy:
        The resolution strategy plug-in.
    bus:
        Event bus for the lifecycle vocabulary; a private one is
        created when omitted.  Reassignable (the inline engine points
        all shard pipelines at the engine bus).
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle; re-attachable via
        :meth:`attach_telemetry`.
    wrapper_spans:
        ``True`` gives the receive/use wrappers full span+histogram
        timers (the middleware's observability contract); ``False``
        records histogram-only observers (the engine's cheaper tier --
        the interesting sub-work is already spanned inside).
    deliver_hook:
        Optional callable invoked with the context inside the deliver
        stage after the ``ContextDelivered`` event (the middleware's
        application subscriptions).
    """

    def __init__(
        self,
        detector,
        strategy: ResolutionStrategy,
        *,
        bus: Optional[EventBus] = None,
        telemetry=None,
        wrapper_spans: bool = False,
        deliver_hook: Optional[Callable[[Context], None]] = None,
    ) -> None:
        self.pool = ContextPool()
        self.resolution = ResolutionService(detector, strategy)
        self.bus = bus if bus is not None else EventBus()
        self.deliver_hook = deliver_hook
        self._wrapper_spans = wrapper_spans
        self._expiry_heap: List[Tuple[float, int, Context]] = []
        self._heap_seq = 0
        self.pool.add_listener(_ExpiryListener(self))
        if hasattr(detector, "attach_pool"):
            # Constraint checkers maintain persistent candidate indexes
            # through pool listeners (see constraints.index); restores
            # that re-add pool contents rebuild them, like the heap.
            detector.attach_pool(self.pool)
        #: Use scheduler shared with the driving loop; bound by
        #: :class:`PipelineDriver`.  Victims and expired contexts are
        #: unscheduled here so every driver stays consistent.
        self.scheduler: Optional[UseScheduler] = None
        if telemetry is None:
            from ..obs.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.attach_telemetry(telemetry)

    @property
    def strategy(self) -> ResolutionStrategy:
        return self.resolution.strategy

    def attach_telemetry(self, telemetry) -> None:
        """Adopt a telemetry bundle across the whole pipeline.

        Rebinds the reusable stage instruments (allocated once,
        re-entered per context), the resolution service's check/resolve
        timers and the detector's incremental-check spans, so hot-path
        latencies land in one registry under the canonical stage names.
        """
        self.telemetry = telemetry
        self.resolution.telemetry = telemetry
        if hasattr(self.resolution.detector, "telemetry"):
            self.resolution.detector.telemetry = telemetry
        wrapper = (
            telemetry.stage_timer
            if self._wrapper_spans
            else telemetry.stage_observer
        )
        self._stage_receive = wrapper("receive")
        self._stage_use = wrapper("use")
        self._stage_deliver = telemetry.stage_timer("deliver")
        self._stage_discard = telemetry.stage_timer("discard")

    # -- the context addition change ------------------------------------------

    def add(self, ctx: Context, now: float, detected=None) -> AddOutcome:
        """Check ``ctx`` against the pool and apply the strategy.

        Publishes the arrival events, admits the survivor into the
        pool, evicts and unschedules the victims.  The caller schedules
        the context for use iff it survived
        (``ctx not in outcome.discarded``).  ``detected`` optionally
        carries a precomputed detection verdict (the batched detection
        path); events, logging and outcomes are identical either way.
        """
        with self._stage_receive:
            existing = [
                c for c in self.pool.contents() if c.ctx_id != ctx.ctx_id
            ]
            detected_before = len(self.resolution.log.detected)
            outcome = self.resolution.handle_addition(
                ctx, existing, now, detected=detected
            )
            self.bus.publish(ContextReceived(at=now, context=ctx))
            for inconsistency in self.resolution.log.detected[detected_before:]:
                self.bus.publish(
                    InconsistencyDetected(at=now, inconsistency=inconsistency)
                )

            discarded_ids = {c.ctx_id for c in outcome.discarded}
            if ctx.ctx_id not in discarded_ids:
                self.pool.add(ctx)
            for victim in outcome.discarded:
                with self._stage_discard:
                    self.pool.remove(victim)
                    if self.scheduler is not None:
                        self.scheduler.discard(victim.ctx_id)
                    self.bus.publish(ContextDiscarded(at=now, context=victim))
            for admitted in outcome.admitted:
                self.bus.publish(ContextAdmitted(at=now, context=admitted))
            if outcome.buffered:
                self.bus.publish(ContextBuffered(at=now, context=ctx))
        return outcome

    # -- the context deletion (use) change --------------------------------------

    def use(self, ctx: Context, now: float) -> UseOutcome:
        """An application uses ``ctx``; deliver or discard per strategy."""
        with self._stage_use:
            outcome = self.resolution.handle_use(ctx, now)
            for bad in outcome.newly_bad:
                self.bus.publish(ContextMarkedBad(at=now, context=bad))
            for victim in outcome.discarded:
                with self._stage_discard:
                    self.pool.remove(victim)
                    if self.scheduler is not None:
                        self.scheduler.discard(victim.ctx_id)
                    self.bus.publish(ContextDiscarded(at=now, context=victim))
            if outcome.delivered:
                with self._stage_deliver:
                    self.bus.publish(ContextDelivered(at=now, context=ctx))
                    if self.deliver_hook is not None:
                        self.deliver_hook(ctx)
        return outcome

    def expire_on_receive(self, ctx: Context, now: float) -> None:
        """Record a context that is dead on arrival.

        A context whose ``timestamp + lifespan`` already passed the
        pipeline clock at receive time must never enter the pool: it
        would be delivered (or discard a live victim) before the next
        expiry sweep could catch it.  The receive is still recorded --
        ``ContextReceived`` then ``ContextExpired`` -- so the ledger
        carries the arrival *and* its ``expire`` verdict, but no
        detection, strategy or scheduling runs.
        """
        with self._stage_receive:
            self.bus.publish(ContextReceived(at=now, context=ctx))
            self.bus.publish(ContextExpired(at=now, context=ctx))

    def refuse_duplicate(self, ctx: Context, now: float) -> None:
        """Refuse a context whose id is already live in the pool.

        At-least-once transports re-deliver; before this guard a
        re-delivered context crashed the receive stage on the pool's
        unique-id invariant.  The refusal mirrors the async ingress's
        duplicate drop -- a ``ContextDuplicate`` event (ledger kind
        ``duplicate``), *not* an arrival -- so replay semantics are
        identical in both modes: refused contexts are never re-fed.
        """
        with self._stage_receive:
            self.bus.publish(ContextDuplicate(at=now, context=ctx))

    # -- expiry -------------------------------------------------------------

    def next_expiry(self) -> float:
        """Earliest possible pending expiry time (``inf`` when none).

        Lazily drops heap entries whose context already left the pool,
        so batch paths can use the returned bound directly.
        """
        heap = self._expiry_heap
        while heap and self.pool.get(heap[0][2].ctx_id) is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else float("inf")

    def expire_due(self, now: float) -> List[Context]:
        """Remove every pooled context whose availability period passed.

        The heap makes the no-expiry case O(1); entries for contexts
        that were discarded first are skipped lazily.  Expired contexts
        are unscheduled, their pending inconsistencies resolved, and
        ``ContextExpired`` published.
        """
        expired: List[Context] = []
        heap = self._expiry_heap
        while heap and heap[0][0] <= now:
            _, _, ctx = heapq.heappop(heap)
            live = self.pool.get(ctx.ctx_id)
            if live is None:
                continue
            self.pool.remove(live)
            if self.scheduler is not None:
                self.scheduler.discard(live.ctx_id)
            self.resolution.strategy.delta.resolve_involving(live)
            self.bus.publish(ContextExpired(at=now, context=live))
            expired.append(live)
        return expired


class PipelineDriver:
    """The arrival loop: clock + use scheduler over routed pipelines.

    Reproduces the window bookkeeping of the historical
    ``Middleware.receive`` -- the shared clock, the admitted-arrival
    counter, both window semantics, and the ordering of expiry,
    draining, checking and use around each arrival -- while the
    per-context pool work happens in whichever pipeline ``route``
    selects.

    Parameters
    ----------
    pipelines:
        The pipelines this driver schedules; their ``scheduler``
        binding is taken over.
    route:
        Maps a context to a pipeline index.
    use_window, use_delay:
        Window semantics (see :class:`~.scheduler.UseScheduler`).
    clock:
        Optionally injected simulation clock (shared across hosts).
    use_dispatch:
        Optional override of the use step: called as ``fn(ctx,
        pipeline_index)`` and must return the
        :class:`~repro.core.strategy.UseOutcome`.  The middleware hooks
        its distinct-use accounting here.
    async_check:
        When set, arrivals pass through a
        :class:`~.snapshot.SnapshotIngress` snapshot window first:
        buffered, deduplicated and released in timestamp order behind
        the watermark, so the checker only ever sees a synchronized
        view.  ``None`` (the default) is the historical synchronous
        path, byte-identical to before this option existed.
    """

    def __init__(
        self,
        pipelines: Sequence[ResolutionPipeline],
        route: Callable[[Context], int],
        *,
        use_window: int = 4,
        use_delay: Optional[float] = None,
        clock: Optional[SimulationClock] = None,
        use_dispatch: Optional[Callable[[Context, int], UseOutcome]] = None,
        async_check: Optional[AsyncCheckConfig] = None,
        batch_kernels: bool = True,
    ) -> None:
        #: Let :func:`~repro.runtime.batch.receive_batch` plan whole
        #: runs of arrivals through the detector's ``detect_batch``
        #: (the columnar kernel path).  Decisions are identical either
        #: way -- this is the ``--no-batch-kernels`` escape hatch and
        #: the A/B lever of the ``detection_batch`` benchmark.
        self.batch_kernels = batch_kernels
        self.pipelines = list(pipelines)
        self.route = route
        self.clock = clock if clock is not None else SimulationClock()
        self.scheduler = UseScheduler(
            use_window=use_window, use_delay=use_delay
        )
        for pipeline in self.pipelines:
            pipeline.scheduler = self.scheduler
        self._use_dispatch = (
            use_dispatch if use_dispatch is not None else self._use_pipeline
        )
        #: Snapshot-window reorder buffer; ``None`` in synchronous mode.
        self.ingress = (
            SnapshotIngress(async_check) if async_check is not None else None
        )
        #: Contexts delivered through this driver, in decision order.
        self.delivered: List[Context] = []

    @property
    def use_window(self) -> int:
        return self.scheduler.use_window

    @property
    def use_delay(self) -> Optional[float]:
        return self.scheduler.use_delay

    # -- arrivals -----------------------------------------------------------

    def receive(self, ctx: Context) -> None:
        """Process one arrival: expiry, due drains, check, schedule.

        With asynchronous checking enabled the arrival first passes the
        snapshot window: it may be dropped (stale/duplicate), buffered,
        or trigger the release of a timestamp-sorted run that is then
        processed as if it had arrived synchronized.
        """
        if self.ingress is None:
            self._receive_now(ctx)
            return
        outcome = self.ingress.offer(ctx)
        if outcome.dropped is not None:
            event_type = (
                ContextStale if outcome.dropped == "stale" else ContextDuplicate
            )
            self.pipelines[self.route(ctx)].bus.publish(
                event_type(at=self.clock.now(), context=ctx)
            )
        for released in outcome.released:
            self._receive_now(released)

    def _receive_now(self, ctx: Context) -> None:
        """The synchronous arrival step (post-ingress in async mode)."""
        now = max(self.clock.now(), ctx.timestamp)
        self.clock.advance_to(now)
        for pipeline in self.pipelines:
            pipeline.expire_due(now)
        if self.scheduler.use_delay is not None:
            # Time-based window: contexts whose delay elapsed are used
            # BEFORE the newcomer is checked -- they have left the
            # checking scope by the time it arrives.
            self.drain_due_uses(now)

        pipeline_index = self.route(ctx)
        if ctx.expiry <= now:
            # Dead on arrival: its availability period ended at or
            # before the clock it arrives under -- expire at receive
            # instead of admitting a context the next sweep would
            # already have removed.
            self.pipelines[pipeline_index].expire_on_receive(ctx, now)
            return
        if self.pipelines[pipeline_index].pool.get(ctx.ctx_id) is not None:
            # At-least-once re-delivery while the original is still
            # live: refuse it instead of tripping the pool's unique-id
            # invariant.  (A duplicate arriving after the original left
            # the pool is indistinguishable from a fresh context and is
            # admitted as one.)
            self.pipelines[pipeline_index].refuse_duplicate(ctx, now)
            return
        outcome = self.pipelines[pipeline_index].add(ctx, now)
        if ctx.ctx_id not in {c.ctx_id for c in outcome.discarded}:
            self.scheduler.schedule(ctx, pipeline_index, now)

        self.drain_due_uses(now)

    def receive_all(self, contexts: Iterable[Context]) -> None:
        """Feed a whole stream, then flush the remaining pending uses.

        Streams through :func:`~repro.runtime.batch.receive_batch` in
        bounded chunks, so lazy trace readers keep O(chunk) memory
        while amortizing the batch path's sweep guards.
        """
        from .batch import receive_batch  # local import: cycle

        iterator = iter(contexts)
        while True:
            chunk = list(islice(iterator, 256))
            if not chunk:
                break
            receive_batch(self, chunk)
        self.flush_uses()

    # -- uses ---------------------------------------------------------------

    def _use_pipeline(self, ctx: Context, pipeline_index: int) -> UseOutcome:
        return self.pipelines[pipeline_index].use(ctx, self.clock.now())

    def use_scheduled(self, ctx: Context, pipeline_index: int) -> UseOutcome:
        """Apply one scheduled use through the dispatch hook."""
        outcome = self._use_dispatch(ctx, pipeline_index)
        if outcome.delivered:
            self.delivered.append(ctx)
        return outcome

    def drain_due_uses(self, now: float) -> None:
        """Use every head-of-queue context whose window elapsed."""
        scheduler = self.scheduler
        while True:
            entry = scheduler.pop_due(now)
            if entry is None:
                return
            self.use_scheduled(entry.ctx, entry.payload)

    def flush_ingress(self) -> None:
        """Release everything the snapshot window still buffers."""
        if self.ingress is not None:
            for ctx in self.ingress.flush():
                self._receive_now(ctx)

    def flush_uses(self) -> None:
        """Use every context still awaiting its window (end of stream).

        In asynchronous mode the snapshot window is flushed first --
        buffered arrivals must be checked before the pending uses
        behind them are forced due.
        """
        self.flush_ingress()
        scheduler = self.scheduler
        while True:
            entry = scheduler.pop_next()
            if entry is None:
                return
            self.use_scheduled(entry.ctx, entry.payload)
