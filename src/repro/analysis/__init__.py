"""Empirical analysis: heuristic-rule measurement and discard confusion."""

from .confusion import DiscardConfusion, confusion_from_log, format_confusion
from .rules import (
    InstrumentedDropBad,
    RuleObservation,
    RuleReport,
    rule1_holds,
    rule2_holds,
    rule2_relaxed_holds,
)

__all__ = [
    "DiscardConfusion",
    "confusion_from_log",
    "format_confusion",
    "InstrumentedDropBad",
    "RuleObservation",
    "RuleReport",
    "rule1_holds",
    "rule2_holds",
    "rule2_relaxed_holds",
]
