"""Empirical measurement of the heuristic rules (Sections 3.4, 5.2).

The drop-bad strategy's reliability theorems rest on:

* **Rule 1** -- a set of expected contexts never forms an
  inconsistency (constraints do not produce false reports);
* **Rule 2** -- in every inconsistency, *every* corrupted context has
  a larger count value than *any* expected context;
* **Rule 2'** -- in every inconsistency, *at least one* corrupted
  context has a larger count value than any expected context.

The paper's Landmarc case study measures how often the rules hold in
practice (Rule 1: always; Rule 2': 91.7%).  This module instruments a
drop-bad run to take the same measurements: rule 2/2' are evaluated at
resolution time (when a context is used), on the count values the
strategy actually saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.context import Context
from ..core.drop_bad import DropBadStrategy
from ..core.inconsistency import Inconsistency, TrackedInconsistencies
from ..core.strategy import UseOutcome
from ..core.tiebreak import TieBreakPolicy

__all__ = [
    "RuleObservation",
    "RuleReport",
    "rule1_holds",
    "rule2_holds",
    "rule2_relaxed_holds",
    "InstrumentedDropBad",
]


def rule1_holds(inconsistency: Inconsistency) -> bool:
    """Rule 1 for one inconsistency: some participant is corrupted."""
    return any(c.corrupted for c in inconsistency.contexts)


def _partition_counts(
    inconsistency: Inconsistency, delta: TrackedInconsistencies
) -> Tuple[List[int], List[int]]:
    corrupted = [
        delta.count_of(c) for c in inconsistency.contexts if c.corrupted
    ]
    expected = [
        delta.count_of(c) for c in inconsistency.contexts if not c.corrupted
    ]
    return corrupted, expected


def rule2_holds(
    inconsistency: Inconsistency, delta: TrackedInconsistencies
) -> bool:
    """Rule 2: every corrupted count > every expected count.

    Vacuously true when the inconsistency has no corrupted or no
    expected participants.
    """
    corrupted, expected = _partition_counts(inconsistency, delta)
    if not corrupted or not expected:
        return True
    return min(corrupted) > max(expected)


def rule2_relaxed_holds(
    inconsistency: Inconsistency, delta: TrackedInconsistencies
) -> bool:
    """Rule 2': some corrupted count > every expected count."""
    corrupted, expected = _partition_counts(inconsistency, delta)
    if not corrupted or not expected:
        return True
    return max(corrupted) > max(expected)


@dataclass(frozen=True)
class RuleObservation:
    """Rule checks for one inconsistency at its resolution instant."""

    constraint: str
    context_ids: Tuple[str, ...]
    rule1: bool
    rule2: bool
    rule2_relaxed: bool


@dataclass
class RuleReport:
    """Aggregated rule satisfaction over a run."""

    observations: List[RuleObservation] = field(default_factory=list)

    def add(self, observation: RuleObservation) -> None:
        self.observations.append(observation)

    def _fraction(self, selector) -> float:
        if not self.observations:
            return 1.0
        return sum(1 for o in self.observations if selector(o)) / len(
            self.observations
        )

    @property
    def rule1_rate(self) -> float:
        return self._fraction(lambda o: o.rule1)

    @property
    def rule2_rate(self) -> float:
        return self._fraction(lambda o: o.rule2)

    @property
    def rule2_relaxed_rate(self) -> float:
        return self._fraction(lambda o: o.rule2_relaxed)

    def __len__(self) -> int:
        return len(self.observations)


class InstrumentedDropBad(DropBadStrategy):
    """Drop-bad that records rule satisfaction at each resolution.

    Whenever a used context forces resolution of its tracked
    inconsistencies, the rules are evaluated on the count values in
    effect at that moment -- exactly the information the strategy's
    discard decision uses.
    """

    name = "drop-bad"

    def __init__(
        self,
        tiebreak: Optional[TieBreakPolicy] = None,
        discard_on_tie: bool = True,
    ) -> None:
        super().__init__(tiebreak=tiebreak, discard_on_tie=discard_on_tie)
        self.report = RuleReport()

    def on_context_used(self, ctx: Context, *, now: float = 0.0) -> UseOutcome:
        from ..core.context import ContextState

        # Only count-based decisions are observed: when a *bad* context
        # is used, its conviction happened earlier (under the counts in
        # effect then, already recorded); the counts of its remaining
        # inconsistencies have degraded by the interim resolutions and
        # no longer inform any decision.
        if (
            self.lifecycle.known(ctx)
            and self.state_of(ctx) == ContextState.UNDECIDED
        ):
            for inconsistency in self.delta.involving(ctx):
                self.report.add(
                    RuleObservation(
                        constraint=inconsistency.constraint,
                        context_ids=tuple(
                            sorted(c.ctx_id for c in inconsistency.contexts)
                        ),
                        rule1=rule1_holds(inconsistency),
                        rule2=rule2_holds(inconsistency, self.delta),
                        rule2_relaxed=rule2_relaxed_holds(
                            inconsistency, self.delta
                        ),
                    )
                )
        return super().on_context_used(ctx, now=now)
