"""Discard confusion analysis: what a strategy got right and wrong.

Treats resolution as a binary classifier over the stream -- "discard"
(predicted corrupted) vs "keep" -- against the ground-truth corrupted
flags, yielding the standard confusion counts and derived scores.
``removal precision`` and ``survival rate`` from the paper's case
study are two cells of this matrix; the full matrix plus F1 makes
strategies comparable on one scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.context import Context
from ..core.resolver import ResolutionLog

__all__ = ["DiscardConfusion", "confusion_from_log", "format_confusion"]


@dataclass(frozen=True)
class DiscardConfusion:
    """Binary confusion counts for discard-as-corruption-detection."""

    true_positives: int  # corrupted and discarded
    false_positives: int  # expected but discarded
    false_negatives: int  # corrupted but kept
    true_negatives: int  # expected and kept

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )

    @property
    def precision(self) -> float:
        """The paper's removal precision."""
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        """Fraction of corrupted contexts actually removed."""
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def survival_rate(self) -> float:
        """The paper's context survival rate (expected kept)."""
        denominator = self.false_positives + self.true_negatives
        if denominator == 0:
            return 1.0
        return self.true_negatives / denominator

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 1.0
        return (self.true_positives + self.true_negatives) / self.total


def confusion_from_log(log: ResolutionLog) -> DiscardConfusion:
    """Build the confusion matrix from a run's resolution log."""
    discarded_ids = {c.ctx_id for c in log.discarded}
    tp = fp = fn = tn = 0
    for ctx in log.added:
        discarded = ctx.ctx_id in discarded_ids
        if ctx.corrupted and discarded:
            tp += 1
        elif ctx.corrupted:
            fn += 1
        elif discarded:
            fp += 1
        else:
            tn += 1
    return DiscardConfusion(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )


def format_confusion(confusion: DiscardConfusion) -> str:
    """A compact multi-line rendering of the matrix and scores."""
    return (
        f"                discarded   kept\n"
        f"  corrupted     {confusion.true_positives:9d}   {confusion.false_negatives:4d}\n"
        f"  expected      {confusion.false_positives:9d}   {confusion.true_negatives:4d}\n"
        f"  precision {confusion.precision:.3f}  recall {confusion.recall:.3f}  "
        f"F1 {confusion.f1:.3f}  survival {confusion.survival_rate:.3f}"
    )
