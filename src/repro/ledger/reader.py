"""Reading, verifying and interrogating ledger files.

Everything here works from the ledger file *alone* -- no access to the
recorded run, its workload or its process is needed.  That is the
audit contract: given a ``LEDGER_*.jsonl`` artifact, an operator can

* :func:`verify_ledger` -- prove nobody edited, dropped or reordered
  an entry (hash chain) and that the header's ``ruleset_hash`` really
  is the hash of the embedded ruleset;
* :func:`ledger_signature` -- re-project the run's externally visible
  ``decision_signature`` (delivered/discarded ids in decision order);
* :func:`explain_context` -- the full causal story of one context:
  when it arrived, which constraints implicated it, what verdict it
  got and why;
* :func:`diff_ledgers` -- compare two runs' verdict streams (kernels
  on vs off, fault-injected vs clean, strategy A vs B).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .hashing import GENESIS, chain_hash, ruleset_hash
from .records import (
    DECISION_KINDS,
    KIND_ARRIVAL,
    KIND_DELIVER,
    KIND_DETECTION,
    KIND_DISCARD,
    KIND_RULESET,
    LEDGER_VERSION,
    TERMINAL_KINDS,
)

__all__ = [
    "read_ledger",
    "iter_ledger",
    "VerifyResult",
    "verify_ledger",
    "ledger_signature",
    "explain_context",
    "diff_ledgers",
    "format_diff",
]

PathLike = Union[str, Path]
Entries = Sequence[dict]


def iter_ledger(path: PathLike) -> Iterator[dict]:
    """Lazily yield the parsed entries of a ledger file, in file order."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_ledger(path: PathLike) -> List[dict]:
    """All entries of a ledger file, parsed."""
    return list(iter_ledger(path))


@dataclass
class VerifyResult:
    """Outcome of a chain + ruleset verification pass."""

    ok: bool
    entries: int = 0
    ruleset_hash: Optional[str] = None
    errors: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.ok:
            return (
                f"OK: {self.entries} entries, chain intact, "
                f"ruleset {self.ruleset_hash[:12]}..."
            )
        detail = "; ".join(self.errors) if self.errors else "unknown error"
        return f"FAILED after {self.entries} entries: {detail}"


def verify_ledger(source: Union[PathLike, Entries]) -> VerifyResult:
    """Recompute the hash chain and the header's ruleset hash.

    ``source`` is a ledger path or an already-parsed entry sequence.
    Verification stops at the first broken link -- every entry after an
    edit is unverifiable by construction, so one error is the honest
    report.
    """
    entries = (
        iter_ledger(source)
        if isinstance(source, (str, Path))
        else iter(source)
    )
    prev = GENESIS
    count = 0
    header_hash: Optional[str] = None
    for position, entry in enumerate(entries):
        body = dict(entry)
        stored = body.pop("h", None)
        if stored is None:
            return VerifyResult(
                False, count, header_hash, [f"entry {position}: missing hash"]
            )
        if body.get("seq") != position:
            return VerifyResult(
                False,
                count,
                header_hash,
                [
                    f"entry {position}: sequence says {body.get('seq')!r} "
                    "(entries dropped or reordered)"
                ],
            )
        if chain_hash(prev, body) != stored:
            return VerifyResult(
                False,
                count,
                header_hash,
                [f"entry {position}: hash chain broken"],
            )
        prev = stored
        if position == 0:
            if body.get("kind") != KIND_RULESET:
                return VerifyResult(
                    False, 0, None, ["entry 0 is not a ruleset header"]
                )
            if body.get("ledger_version") != LEDGER_VERSION:
                return VerifyResult(
                    False,
                    0,
                    None,
                    [
                        f"unsupported ledger_version "
                        f"{body.get('ledger_version')!r}"
                    ],
                )
            header_hash = body.get("ruleset_hash")
            if ruleset_hash(body.get("ruleset") or {}) != header_hash:
                return VerifyResult(
                    False,
                    0,
                    header_hash,
                    ["header ruleset_hash does not hash the embedded ruleset"],
                )
        count += 1
    if count == 0:
        return VerifyResult(False, 0, None, ["empty ledger"])
    return VerifyResult(True, count, header_hash)


def ledger_signature(entries: Entries) -> Dict[str, List[str]]:
    """The recorded run's ``decision_signature``, from the ledger alone.

    Byte-compatible with
    :meth:`repro.engine.merge.EngineResult.decision_signature`:
    delivered / discarded context ids in decision order.
    """
    delivered: List[str] = []
    discarded: List[str] = []
    for entry in entries:
        kind = entry.get("kind")
        if kind == KIND_DELIVER:
            delivered.append(entry["ctx_id"])
        elif kind == KIND_DISCARD:
            discarded.append(entry["ctx_id"])
    return {"delivered": delivered, "discarded": discarded}


# -- explain ------------------------------------------------------------------


def _involves(entry: dict, ctx_id: str) -> bool:
    if entry.get("ctx_id") == ctx_id:
        return True
    if entry.get("kind") == KIND_ARRIVAL:
        return entry.get("ctx", {}).get("ctx_id") == ctx_id
    if entry.get("kind") == KIND_DETECTION:
        return ctx_id in entry.get("ctx_ids", ())
    return False


def explain_context(entries: Entries, ctx_id: str) -> str:
    """The causal story of one context, answered from the ledger alone."""
    header = entries[0] if entries else {}
    ruleset = header.get("ruleset") or {}
    strategy = ruleset.get("strategy", "?")
    story = [entry for entry in entries[1:] if _involves(entry, ctx_id)]
    if not story:
        return f"{ctx_id}: no record in this ledger"

    lines = [f"{ctx_id} under {strategy} (ruleset "
             f"{str(header.get('ruleset_hash', '?'))[:12]}...):"]
    for entry in story:
        at = entry.get("at", 0.0)
        kind = entry.get("kind")
        prefix = f"  t={at:g}"
        if kind == KIND_ARRIVAL:
            ctx = entry.get("ctx", {})
            lines.append(
                f"{prefix}  arrived: type={ctx.get('ctx_type')} "
                f"subject={ctx.get('subject')} value={ctx.get('value')!r} "
                f"source={ctx.get('source')} -> shard {entry.get('shard')}"
            )
        elif kind == KIND_DETECTION:
            others = [c for c in entry.get("ctx_ids", ()) if c != ctx_id]
            with_text = f" with {', '.join(others)}" if others else ""
            lines.append(
                f"{prefix}  implicated by constraint "
                f"{entry.get('constraint')!r}{with_text}"
            )
        elif kind == KIND_DISCARD:
            why = entry.get("why") or []
            why_text = (
                f"violated {', '.join(repr(w) for w in why)}"
                if why
                else "strategy decision (no recorded detection)"
            )
            lines.append(f"{prefix}  DISCARDED by {strategy}: {why_text}")
        elif kind in TERMINAL_KINDS or kind in (
            "admit",
            "buffer",
            "mark_bad",
        ):
            verb = {
                "admit": "admitted as consistent",
                "buffer": "buffered pending use (drop-bad)",
                "mark_bad": "marked bad (deferred discard)",
                "deliver": "DELIVERED to the application",
                "expire": "EXPIRED unused (availability period elapsed)",
                "stale": (
                    "REFUSED by the async-check ingress: arrived too "
                    "late to order (timestamp behind the cursor)"
                ),
                "duplicate": (
                    "REFUSED by the async-check ingress: ctx_id "
                    "already seen (duplicate delivery)"
                ),
            }.get(kind, kind)
            lines.append(f"{prefix}  {verb}")
    return "\n".join(lines)


# -- diff ---------------------------------------------------------------------


def _verdicts(entries: Entries) -> Dict[str, Tuple[str, float]]:
    verdicts: Dict[str, Tuple[str, float]] = {}
    for entry in entries:
        kind = entry.get("kind")
        if kind in TERMINAL_KINDS:
            verdicts[entry["ctx_id"]] = (kind, entry.get("at", 0.0))
    return verdicts


def diff_ledgers(entries_a: Entries, entries_b: Entries) -> dict:
    """Structural comparison of two runs' verdict streams.

    Returns a plain dict: ruleset hash equality, decision-signature
    equality, the index of the first diverging decision, and the
    per-context verdict changes (``ctx_id -> [verdict_a, verdict_b]``,
    ``"(absent)"`` when a context only appears in one run).
    """
    header_a = entries_a[0] if entries_a else {}
    header_b = entries_b[0] if entries_b else {}
    signature_a = ledger_signature(entries_a)
    signature_b = ledger_signature(entries_b)

    decisions_a = [
        (e["kind"], e["ctx_id"])
        for e in entries_a
        if e.get("kind") in DECISION_KINDS
    ]
    decisions_b = [
        (e["kind"], e["ctx_id"])
        for e in entries_b
        if e.get("kind") in DECISION_KINDS
    ]
    first_divergence = None
    for index, (da, db) in enumerate(zip(decisions_a, decisions_b)):
        if da != db:
            first_divergence = index
            break
    if first_divergence is None and len(decisions_a) != len(decisions_b):
        first_divergence = min(len(decisions_a), len(decisions_b))

    verdicts_a = _verdicts(entries_a)
    verdicts_b = _verdicts(entries_b)
    changed: Dict[str, List[str]] = {}
    for ctx_id in sorted(set(verdicts_a) | set(verdicts_b)):
        va = verdicts_a.get(ctx_id, ("(absent)", 0.0))[0]
        vb = verdicts_b.get(ctx_id, ("(absent)", 0.0))[0]
        if va != vb:
            changed[ctx_id] = [va, vb]
    return {
        "same_ruleset": header_a.get("ruleset_hash")
        == header_b.get("ruleset_hash"),
        "ruleset_hashes": [
            header_a.get("ruleset_hash"),
            header_b.get("ruleset_hash"),
        ],
        "identical": signature_a == signature_b,
        "decisions": [len(decisions_a), len(decisions_b)],
        "first_divergence": first_divergence,
        "changed_verdicts": changed,
    }


def format_diff(diff: dict, label_a: str = "A", label_b: str = "B") -> str:
    """Human rendering of a :func:`diff_ledgers` result."""
    lines = [f"Ledger diff -- {label_a} vs {label_b}"]
    hash_a, hash_b = diff["ruleset_hashes"]
    if diff["same_ruleset"]:
        lines.append(f"  ruleset: identical ({str(hash_a)[:12]}...)")
    else:
        lines.append(
            f"  ruleset: DIFFERENT ({str(hash_a)[:12]}... vs "
            f"{str(hash_b)[:12]}...)"
        )
    count_a, count_b = diff["decisions"]
    if diff["identical"]:
        lines.append(f"  decisions: identical ({count_a} in both)")
        return "\n".join(lines)
    lines.append(
        f"  decisions: DIVERGENT ({count_a} vs {count_b}, first at "
        f"decision index {diff['first_divergence']})"
    )
    changed = diff["changed_verdicts"]
    lines.append(f"  changed verdicts: {len(changed)}")
    for ctx_id, (verdict_a, verdict_b) in list(changed.items())[:20]:
        lines.append(f"    {ctx_id}: {verdict_a} -> {verdict_b}")
    if len(changed) > 20:
        lines.append(f"    ... and {len(changed) - 20} more")
    return "\n".join(lines)
