"""Deterministic replay: re-project decisions from (ledger + ruleset).

A verified ledger contains everything a re-execution needs: the full
arrival stream (context records in order), the constraint DSL texts,
the strategy name + kwargs and the window semantics.  Replay rebuilds
the resolution pipeline from the header, feeds it the recorded
arrivals, and asserts the resulting ``decision_signature`` is
byte-identical to the one the ledger records -- time-travel debugging
and crash recovery beyond the engine's checkpoints: the ledger alone
reconstitutes the run.

Replay executes in the engine's deterministic ``inline`` mode by
default.  That is sufficient for every recording host: the golden
equivalence suite pins that middleware, inline, local and process
execution produce byte-identical decisions over one stream, so an
inline re-execution must match a ledger recorded in any mode.  (The
one documented exception is ``drop-random``: its per-shard RNG draws
are not captured in the ruleset, so stochastic runs cannot be
re-projected.)
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..middleware.trace import context_from_record
from .reader import Entries, ledger_signature, read_ledger, verify_ledger
from .records import (
    KIND_ARRIVAL,
    constraints_from_document,
    resolve_registry_spec,
)

__all__ = ["ReplayResult", "replay_ledger"]


@dataclass
class ReplayResult:
    """Outcome of one ledger replay."""

    ok: bool
    contexts: int
    recorded: Dict[str, List[str]]
    replayed: Dict[str, List[str]]
    ruleset_hash: Optional[str] = None
    detail: str = ""

    def summary(self) -> str:
        if self.ok:
            return (
                f"OK: {self.contexts} contexts replayed, "
                f"{len(self.recorded['delivered'])} delivered / "
                f"{len(self.recorded['discarded'])} discarded, "
                "decision signature byte-identical"
            )
        return f"MISMATCH: {self.detail}"


def _first_mismatch(recorded: List[str], replayed: List[str]) -> str:
    for index, (a, b) in enumerate(zip(recorded, replayed)):
        if a != b:
            return f"index {index}: recorded {a!r}, replayed {b!r}"
    return f"length {len(recorded)} recorded vs {len(replayed)} replayed"


def replay_ledger(
    source: Union[str, Path, Entries],
    *,
    shards: Optional[int] = None,
    registry_factory: Optional[Callable] = None,
    verify: bool = True,
) -> ReplayResult:
    """Re-execute a ledger's run and compare decision signatures.

    Parameters
    ----------
    source:
        Ledger path or parsed entries.
    shards:
        Shard count for the replay engine (default: the recorded
        ``meta.shards``, else 1).  Inline decisions are shard-count
        invariant, so this only affects layout, never the outcome.
    registry_factory:
        Override for the predicate registry; required when the header
        has no resolvable registry spec (closures, lambdas).
    verify:
        Check the hash chain first (default).  A ledger that fails
        verification is refused -- replaying tampered history would
        launder it.
    """
    entries = (
        read_ledger(source) if isinstance(source, (str, Path)) else list(source)
    )
    if verify:
        check = verify_ledger(entries)
        if not check.ok:
            return ReplayResult(
                False,
                0,
                {"delivered": [], "discarded": []},
                {"delivered": [], "discarded": []},
                check.ruleset_hash,
                f"refusing to replay an unverifiable ledger ({check.summary()})",
            )
    header = entries[0]
    ruleset = header.get("ruleset") or {}
    meta = header.get("meta") or {}

    constraints = constraints_from_document(ruleset)
    if registry_factory is None:
        spec = ruleset.get("registry")
        if spec is None:
            return ReplayResult(
                False,
                0,
                {"delivered": [], "discarded": []},
                {"delivered": [], "discarded": []},
                header.get("ruleset_hash"),
                "ruleset has no registry spec; pass registry_factory "
                "(CLI: --app)",
            )
        registry_factory = resolve_registry_spec(spec)

    contexts = [
        context_from_record(entry["ctx"])
        for entry in entries
        if entry.get("kind") == KIND_ARRIVAL
    ]

    # Deferred import: the engine imports the ledger package for its
    # own wiring, so a module-level import here would cycle.
    from ..engine.config import EngineConfig
    from ..engine.facade import ShardedEngine
    from ..runtime.snapshot import AsyncCheckConfig

    # An async-mode ledger records arrivals in *release* order (the
    # snapshot window's timestamp-sorted output), so re-feeding them
    # through the same window configuration releases them identically:
    # sorted input, unique ids, nothing refused, same clock at every
    # step.  The refusal entries (stale/duplicate) are not arrivals
    # and are deliberately not replayed.
    async_doc = ruleset.get("async_check")
    engine = ShardedEngine(
        constraints,
        strategy=ruleset.get("strategy", "drop-latest"),
        strategy_kwargs=dict(ruleset.get("strategy_kwargs") or {}),
        registry_factory=registry_factory,
        config=EngineConfig(
            shards=shards
            if shards is not None
            else int(meta.get("shards", 1) or 1),
            mode="inline",
            use_window=int(ruleset.get("use_window", 4)),
            use_delay=ruleset.get("use_delay"),
            async_check=(
                AsyncCheckConfig.from_document(async_doc)
                if async_doc is not None
                else None
            ),
        ),
    )
    result = engine.run(contexts)

    recorded = ledger_signature(entries)
    replayed = result.decision_signature()
    if recorded == replayed:
        return ReplayResult(
            True, len(contexts), recorded, replayed, header.get("ruleset_hash")
        )
    details = []
    for key in ("delivered", "discarded"):
        if recorded[key] != replayed[key]:
            details.append(f"{key}: {_first_mismatch(recorded[key], replayed[key])}")
    return ReplayResult(
        False,
        len(contexts),
        recorded,
        replayed,
        header.get("ruleset_hash"),
        "; ".join(details),
    )
