"""Ledger entry vocabulary and the self-describing ruleset document.

A ledger file is JSONL: one entry per line, hash-chained in order.
Line 0 is always the *ruleset header* (kind ``"ruleset"``) -- the full
resolution configuration in re-parseable form -- and every later line
is one life-cycle verdict of the paper's resolution pipeline:

========== ===========================================================
kind       meaning / extra fields
========== ===========================================================
ruleset    header: ``ledger_version``, ``ruleset`` (see
           :func:`ruleset_document`), ``ruleset_hash``, ``meta``
arrival    a context reached the pipeline; ``ctx`` is the full
           context record (enough to replay the run from the ledger)
detection  a constraint fired; ``constraint``, ``ctx_ids``
discard    a context was dropped; ``ctx_id``, ``why`` (the constraint
           names whose detections implicated it -- empty for expiry-
           free strategies that discard on arrival without detection)
admit      the strategy judged a context consistent; ``ctx_id``
mark_bad   drop-bad marked a context bad (deferred drop); ``ctx_id``
deliver    a used context reached the application; ``ctx_id``
expire     availability period elapsed unused; ``ctx_id``
stale      the async-check ingress refused an unorderably late
           arrival; ``ctx_id`` plus the full ``ctx`` record (the
           context never *arrived* at the pipeline, so this is not an
           ``arrival`` -- replay must not feed it)
duplicate  the async-check ingress refused a re-delivered ctx_id;
           same fields as ``stale``
========== ===========================================================

All entries carry ``at`` (simulation time), ``shard`` (the owning
shard, ``0`` in the single-pool middleware) and writer-assigned
``seq`` + ``h`` (chain hash).  The delivered/discarded entries in file
order *are* the run's ``decision_signature`` -- see
:func:`repro.ledger.reader.ledger_signature`.

Mechanical staging (a context being *buffered* pending its use) is
deliberately not a ledger kind: it is not a verdict, it is visible in
telemetry stage histograms, and at roughly one event per context it
would be the single largest contributor to ledger write overhead.

The ruleset document deliberately contains only decision-relevant
configuration: constraint DSL texts (round-trippable through
:func:`repro.constraints.parser.parse_constraint`), strategy name and
kwargs, window semantics and the predicate-registry factory spec.
Accelerations that are pinned decision-neutral (compiled kernels,
candidate indexes, runtime batching) belong in ``meta``, so kernels-on
and kernels-off runs share one ``ruleset_hash`` and stay diffable.
"""

from __future__ import annotations

import importlib
import types
from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..constraints.ast import Constraint
from ..constraints.builtins import standard_registry
from ..constraints.format import format_formula

__all__ = [
    "LEDGER_VERSION",
    "KIND_RULESET",
    "KIND_ARRIVAL",
    "KIND_DETECTION",
    "KIND_ADMIT",
    "KIND_MARK_BAD",
    "KIND_DISCARD",
    "KIND_DELIVER",
    "KIND_EXPIRE",
    "KIND_STALE",
    "KIND_DUPLICATE",
    "DECISION_KINDS",
    "TERMINAL_KINDS",
    "ruleset_document",
    "constraints_from_document",
    "registry_spec",
    "resolve_registry_spec",
]

#: Ledger format version (bump on incompatible entry-schema change).
LEDGER_VERSION = 1

KIND_RULESET = "ruleset"
KIND_ARRIVAL = "arrival"
KIND_DETECTION = "detection"
KIND_ADMIT = "admit"
KIND_MARK_BAD = "mark_bad"
KIND_DISCARD = "discard"
KIND_DELIVER = "deliver"
KIND_EXPIRE = "expire"
KIND_STALE = "stale"
KIND_DUPLICATE = "duplicate"

#: The externally visible decisions (the ``decision_signature`` pair).
DECISION_KINDS = (KIND_DELIVER, KIND_DISCARD)
#: Kinds after which a context's story is over.
TERMINAL_KINDS = (
    KIND_DELIVER,
    KIND_DISCARD,
    KIND_EXPIRE,
    KIND_STALE,
    KIND_DUPLICATE,
)

_STANDARD_REGISTRY_SPEC = "repro.constraints.builtins:standard_registry"


def registry_spec(factory: Optional[Callable]) -> Optional[str]:
    """A ``"module:qualname"`` spec re-resolving to ``factory``.

    Covers the cases the engine documents as process-safe: module-level
    callables and bound methods of no-argument-constructible classes
    (the application objects' ``build_registry``).  Closures, lambdas
    and locals have no stable spec -- ``None`` is returned and replay
    will need an explicit registry (``repro ledger replay --app``).
    """
    if factory is None or factory is standard_registry:
        return _STANDARD_REGISTRY_SPEC
    func = getattr(factory, "__func__", factory)
    module = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        return None
    return f"{module}:{qualname}"


def resolve_registry_spec(spec: str) -> Callable:
    """Import the callable a :func:`registry_spec` string names.

    A plain function resolves by attribute walk; a function reached
    *through a class* (an app's ``build_registry``) is bound to a
    freshly constructed instance of that class.
    """
    module_name, sep, qualname = spec.partition(":")
    if not sep or not qualname:
        raise ValueError(f"malformed registry spec {spec!r}")
    obj: object = importlib.import_module(module_name)
    parent: object = None
    last_part = ""
    for part in qualname.split("."):
        parent, obj = obj, getattr(obj, part)
        last_part = part
    if isinstance(parent, type) and isinstance(obj, types.FunctionType):
        # Unbound instance method fetched off the class: bind it.
        obj = getattr(parent(), last_part)
    if not callable(obj):
        raise ValueError(f"registry spec {spec!r} is not callable")
    return obj


def ruleset_document(
    constraints: Iterable[Constraint],
    *,
    strategy: str,
    strategy_kwargs: Optional[Mapping[str, object]] = None,
    use_window: int = 4,
    use_delay: Optional[float] = None,
    registry_factory: Optional[Callable] = None,
    async_check: Optional[Mapping[str, object]] = None,
) -> dict:
    """The self-describing resolution configuration of one run.

    Constraints are stored name-sorted as re-parseable DSL text
    (``format_formula`` round-trips through ``parse_constraint``), so
    a ledger plus this document is sufficient to re-project every
    decision.  The document is plain JSON data; its canonical hash is
    the run's ``ruleset_hash``.

    ``async_check`` is the snapshot-window configuration
    (:meth:`repro.runtime.snapshot.AsyncCheckConfig.to_document`) when
    asynchronous checking is on.  It is decision-relevant -- replaying
    a perturbed stream without the window resolves differently -- so
    it belongs here, but the key is *omitted entirely* when ``None``:
    synchronous rulesets keep the exact document (and hash) they had
    before the mode existed.
    """
    docs = [
        {
            "name": c.name,
            "text": format_formula(c.formula),
            "description": c.description,
        }
        for c in sorted(constraints, key=lambda c: c.name)
    ]
    document = {
        "constraints": docs,
        "strategy": strategy,
        "strategy_kwargs": dict(strategy_kwargs or {}),
        "use_window": use_window,
        "use_delay": use_delay,
        "registry": registry_spec(registry_factory),
    }
    if async_check is not None:
        document["async_check"] = dict(async_check)
    return document


def constraints_from_document(ruleset: Mapping[str, object]) -> Sequence[Constraint]:
    """Re-parse the header's constraint texts into AST constraints."""
    from ..constraints.parser import parse_constraint

    return [
        parse_constraint(
            doc["name"], doc["text"], doc.get("description", "")
        )
        for doc in ruleset.get("constraints", ())  # type: ignore[union-attr]
    ]
