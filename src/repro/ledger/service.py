"""The middleware plug-in that records a decision ledger.

Plugging a :class:`LedgerService` into a
:class:`~repro.middleware.manager.Middleware` makes the run auditable:
the service derives the ruleset document from the manager's live
configuration (checker constraints, strategy name, window semantics),
opens the writer, and records every lifecycle event the pipeline
publishes.  Unplugging (``middleware.unplug("ledger")``) detaches the
bus subscription and seals the file.

    middleware = Middleware(checker, make_strategy("drop-bad"), use_window=10)
    middleware.plug_in(LedgerService("run.ledger.jsonl"))
    middleware.receive_all(stream)
    middleware.unplug("ledger")        # flush + close
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Mapping, Optional, Union

from ..middleware.service import MiddlewareService
from .records import ruleset_document
from .recorder import LedgerRecorder
from .writer import LedgerWriter

__all__ = ["LedgerService"]


class LedgerService(MiddlewareService):
    """Records the manager's resolution run into a ledger file.

    Parameters
    ----------
    path:
        Ledger JSONL output path.
    strategy_kwargs:
        The kwargs the strategy was built with, for the ruleset
        document (a live strategy instance only knows its name).
    registry_factory:
        The predicate-registry factory of the run, recorded as a
        replayable spec when possible.
    meta:
        Extra header metadata (merged over ``{"host": "middleware"}``).
    fsync:
        Force-fsync every ledger flush.
    buffer_entries:
        Writer buffer size.
    """

    name = "ledger"

    def __init__(
        self,
        path: Union[str, Path],
        *,
        strategy_kwargs: Optional[Mapping[str, object]] = None,
        registry_factory: Optional[Callable] = None,
        meta: Optional[Mapping[str, object]] = None,
        fsync: bool = False,
        buffer_entries: int = 256,
    ) -> None:
        self._path = path
        self._strategy_kwargs = dict(strategy_kwargs or {})
        self._registry_factory = registry_factory
        self._meta = dict(meta or {})
        self._fsync = fsync
        self._buffer_entries = buffer_entries
        self.writer: Optional[LedgerWriter] = None
        self.recorder: Optional[LedgerRecorder] = None

    @property
    def ruleset_hash(self) -> Optional[str]:
        return self.writer.ruleset_hash if self.writer is not None else None

    def on_attach(self, middleware) -> None:
        detector = middleware.resolution.detector
        constraints_of = getattr(detector, "constraints", None)
        constraints = constraints_of() if callable(constraints_of) else ()
        ruleset = ruleset_document(
            constraints,
            strategy=middleware.strategy.name,
            strategy_kwargs=self._strategy_kwargs,
            use_window=middleware.use_window,
            use_delay=middleware.use_delay,
            registry_factory=self._registry_factory,
        )
        meta = {"host": "middleware", "shards": 1}
        meta.update(self._meta)
        self.writer = LedgerWriter(
            self._path,
            ruleset,
            meta=meta,
            fsync=self._fsync,
            buffer_entries=self._buffer_entries,
            telemetry=middleware.telemetry,
        )
        # Surface the configuration identity in the run's metrics too
        # (the Prometheus info-metric idiom: constant-1 gauge, identity
        # in the label).
        middleware.telemetry.registry.gauge(
            "repro_ruleset_info",
            help="Resolution ruleset identity (value is always 1)",
            labels={"ruleset_hash": self.writer.ruleset_hash},
        ).set(1.0)
        self.recorder = LedgerRecorder(self.writer.append)
        self.recorder.attach(middleware.bus)

    def on_detach(self, middleware) -> None:
        if self.recorder is not None:
            self.recorder.detach()
            self.recorder = None
        if self.writer is not None:
            self.writer.close()
