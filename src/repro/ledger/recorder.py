"""Event-stream recording: lifecycle bus events -> ledger entries.

Since ISSUE 5 every host -- the single-pool middleware, the inline /
local / process engine shards and the serving front-door -- runs the
one canonical :class:`~repro.runtime.pipeline.ResolutionPipeline`,
which publishes the full lifecycle vocabulary on its event bus.  The
recorder converts that stream into ledger entries, so wiring a ledger
into a new host costs one bus subscription, never new stage logic.

Two consumption styles:

* **live** -- :meth:`LedgerRecorder.attach` subscribes to a bus and
  feeds a sink per event (the serving front-door's open stream, the
  middleware's :class:`~repro.ledger.service.LedgerService`);
* **post-hoc** -- :func:`entries_from_events` converts a recorded
  event list (a shard's :class:`~repro.engine.shard.ShardRunResult`
  ``events``) into one per-shard *segment*, and
  :func:`merge_segments` interleaves segments into the deterministic
  global order -- the same ``(at, shard, seq)`` k-way merge
  :func:`repro.engine.merge.merge_events` applies to the events
  themselves, so the merged ledger's decision order is byte-identical
  to the merged :class:`~repro.engine.merge.EngineResult`.

The recorder keeps two small indexes: context -> owning shard (from
arrivals; popped on terminal verdicts) and context -> implicating
constraint names (from detections; this is the ``why`` a discard
entry carries).  Both are bounded by the number of in-flight contexts.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.context import Context
from ..middleware.bus import (
    ContextAdmitted,
    ContextDelivered,
    ContextDiscarded,
    ContextDuplicate,
    ContextExpired,
    ContextMarkedBad,
    ContextReceived,
    ContextStale,
    Event,
    EventBus,
    InconsistencyDetected,
)
from ..middleware.trace import context_record
from .records import (
    KIND_ADMIT,
    KIND_ARRIVAL,
    KIND_DELIVER,
    KIND_DETECTION,
    KIND_DISCARD,
    KIND_DUPLICATE,
    KIND_EXPIRE,
    KIND_MARK_BAD,
    KIND_STALE,
)

__all__ = ["LedgerRecorder", "entries_from_events", "merge_segments"]

# ContextBuffered is deliberately absent: buffering is mechanical
# staging, not a verdict (see :mod:`.records`), and at ~one event per
# context it would dominate the ledger's write cost.
_SIMPLE_KINDS = (
    (ContextAdmitted, KIND_ADMIT),
    (ContextMarkedBad, KIND_MARK_BAD),
)


class LedgerRecorder:
    """Converts lifecycle events into ledger entry dicts.

    Parameters
    ----------
    sink:
        Called with each produced entry (typically
        :meth:`~repro.ledger.writer.LedgerWriter.append` or
        ``list.append``).
    shard_of:
        Optional pure ``Context -> shard`` attribution (the engine's
        :meth:`~repro.engine.router.ContextRouter.shard_for`).  Omitted
        in single-pool hosts, where every entry is shard ``0``.
    """

    def __init__(
        self,
        sink: Callable[[dict], None],
        *,
        shard_of: Optional[Callable[[Context], int]] = None,
    ) -> None:
        self._sink = sink
        self._shard_of = shard_of
        self._shard: Dict[str, int] = {}
        self._why: Dict[str, List[str]] = {}
        self._bus: Optional[EventBus] = None
        # Exact-type dispatch table (an isinstance cascade per event is
        # measurable on the engine's post-run emission path); unknown
        # concrete types resolve through isinstance once, then cache.
        self._dispatch: Dict[type, Optional[Callable[[Event], Optional[dict]]]] = {
            ContextReceived: self._on_arrival,
            InconsistencyDetected: self._on_detection,
            ContextDiscarded: self._on_discard,
            ContextDelivered: self._on_deliver,
            ContextExpired: self._on_expire,
            ContextStale: self._refusal_handler(KIND_STALE),
            ContextDuplicate: self._refusal_handler(KIND_DUPLICATE),
        }
        for event_type, kind in _SIMPLE_KINDS:
            self._dispatch[event_type] = self._simple_handler(kind)

    # -- bus lifecycle ------------------------------------------------------

    def attach(self, bus: EventBus) -> None:
        """Subscribe to every lifecycle event on ``bus``."""
        if self._bus is not None:
            raise ValueError("recorder is already attached to a bus")
        bus.subscribe(Event, self.observe)
        self._bus = bus

    def detach(self) -> None:
        """Drop the bus subscription (idempotent)."""
        if self._bus is not None:
            self._bus.unsubscribe(Event, self.observe)
            self._bus = None

    # -- event conversion ---------------------------------------------------

    def observe(self, event: Event) -> None:
        """Record one event (non-lifecycle events are ignored)."""
        try:
            handler = self._dispatch[type(event)]
        except KeyError:
            handler = self._resolve(type(event))
        if handler is None:
            return  # SituationActivated, SubscriberError, ...
        entry = handler(event)
        if entry is not None:
            self._sink(entry)

    def _resolve(
        self, event_type: type
    ) -> Optional[Callable[[Event], Optional[dict]]]:
        """isinstance-resolve a type not in the table (e.g. a subclass)."""
        handler = None
        for known, candidate in list(self._dispatch.items()):
            if candidate is not None and issubclass(event_type, known):
                handler = candidate
                break
        self._dispatch[event_type] = handler
        return handler

    def _entry_for(self, event: Event) -> Optional[dict]:
        """Convert one event without sinking it (the dispatch, exposed)."""
        handler = self._dispatch.get(type(event)) or self._resolve(type(event))
        return handler(event) if handler is not None else None

    def _shard_for_id(self, ctx_id: str) -> int:
        return self._shard.get(ctx_id, 0)

    def _on_arrival(self, event: ContextReceived) -> dict:
        ctx = event.context
        shard = self._shard_of(ctx) if self._shard_of is not None else 0
        self._shard[ctx.ctx_id] = shard
        return {
            "at": event.at,
            "kind": KIND_ARRIVAL,
            "shard": shard,
            "ctx": context_record(ctx),
        }

    def _on_detection(self, event: InconsistencyDetected) -> dict:
        inconsistency = event.inconsistency
        contexts = inconsistency.contexts
        if len(contexts) == 2:
            # The paper's constraints implicate pairs in practice;
            # unpacking beats a sort-over-genexp on this hot path.
            first, second = contexts
            a, b = first.ctx_id, second.ctx_id
            ctx_ids = [a, b] if a <= b else [b, a]
        else:
            ctx_ids = sorted(c.ctx_id for c in contexts)
        constraint = inconsistency.constraint
        for ctx_id in ctx_ids:
            implicated = self._why.setdefault(ctx_id, [])
            if constraint not in implicated:
                implicated.append(constraint)
        return {
            "at": event.at,
            "kind": KIND_DETECTION,
            "shard": self._shard_for_id(ctx_ids[0]),
            "constraint": constraint,
            "ctx_ids": ctx_ids,
        }

    def _on_discard(self, event: ContextDiscarded) -> dict:
        ctx_id = event.context.ctx_id
        return {
            "at": event.at,
            "kind": KIND_DISCARD,
            "shard": self._shard.pop(ctx_id, 0),
            "ctx_id": ctx_id,
            "why": self._why.pop(ctx_id, []),
        }

    def _on_deliver(self, event: ContextDelivered) -> dict:
        ctx_id = event.context.ctx_id
        self._why.pop(ctx_id, None)
        return {
            "at": event.at,
            "kind": KIND_DELIVER,
            "shard": self._shard.pop(ctx_id, 0),
            "ctx_id": ctx_id,
        }

    def _on_expire(self, event: ContextExpired) -> dict:
        ctx_id = event.context.ctx_id
        self._why.pop(ctx_id, None)
        return {
            "at": event.at,
            "kind": KIND_EXPIRE,
            "shard": self._shard.pop(ctx_id, 0),
            "ctx_id": ctx_id,
        }

    def _refusal_handler(self, kind: str) -> Callable[[Event], dict]:
        """Handler for ingress refusals (stale / duplicate drops).

        The refused context never *arrived* at the pipeline -- replay
        feeds only ``arrival`` entries, and release-order arrivals
        interleaved with offer-time refusals would break its
        determinism -- so these are their own kinds, carrying both the
        ``ctx_id`` (terminal-verdict indexing: explain, diff) and the
        full ``ctx`` record (audit: what exactly was refused).
        """

        def handle(event: Event) -> dict:
            ctx = event.context
            shard = (
                self._shard_of(ctx) if self._shard_of is not None else 0
            )
            return {
                "at": event.at,
                "kind": kind,
                "shard": shard,
                "ctx_id": ctx.ctx_id,
                "ctx": context_record(ctx),
            }

        return handle

    def _simple_handler(self, kind: str) -> Callable[[Event], dict]:
        def handle(event: Event) -> dict:
            ctx_id = event.context.ctx_id
            return {
                "at": event.at,
                "kind": kind,
                "shard": self._shard_for_id(ctx_id),
                "ctx_id": ctx_id,
            }

        return handle


def _pinned_shard(shard: int) -> Callable[[Context], int]:
    def shard_of(_ctx: Context) -> int:
        return shard

    return shard_of


def entries_from_events(
    events: Iterable[Event],
    *,
    shard_id: Optional[int] = None,
    shard_of: Optional[Callable[[Context], int]] = None,
) -> List[dict]:
    """Convert a recorded event stream into ledger entries.

    ``shard_id`` pins every entry to one shard (a worker's own event
    list); ``shard_of`` attributes per context (a globally merged
    stream).  Exactly one of the two should be given -- neither means
    single-pool shard ``0``.
    """
    if shard_id is not None:
        if shard_of is not None:
            raise ValueError("pass shard_id or shard_of, not both")
        shard_of = _pinned_shard(int(shard_id))

    out: List[dict] = []
    recorder = LedgerRecorder(out.append, shard_of=shard_of)
    # Post-hoc conversion is the engine's bulk emission path; running
    # the dispatch loop here (instead of one observe() call per event)
    # drops a Python frame per event.  ``None`` handlers mark cached
    # non-lifecycle types, so missing needs a distinct sentinel.
    dispatch = recorder._dispatch
    append = out.append
    missing = object()
    for event in events:
        handler = dispatch.get(type(event), missing)
        if handler is missing:
            handler = recorder._resolve(type(event))
        if handler is not None:
            entry = handler(event)
            if entry is not None:
                append(entry)
    return out


def merge_segments(segments: Sequence[Sequence[dict]]) -> List[dict]:
    """K-way merge of per-shard entry segments into global order.

    The same deterministic key :func:`repro.engine.merge.merge_events`
    uses -- ``(at, shard, position)``: each segment is already
    time-ordered (shard clocks are monotone), ties across shards break
    lowest shard first, ties within a shard keep segment order.
    """
    keyed = []
    for segment in segments:
        keyed.append(
            [
                (entry["at"], entry["shard"], position, entry)
                for position, entry in enumerate(segment)
            ]
        )
    return [item[3] for item in heapq.merge(*keyed)]
