"""The buffered, hash-chaining, fsync-optional ledger writer.

Hot-path cost is one dict fill + one ``json.dumps`` + one sha256 per
entry; lines accumulate in an in-memory buffer and hit the file in
batches (``buffer_entries``), so the arrival path never pays a
syscall per decision.  ``fsync=True`` additionally forces the page
cache to disk on every flush -- the durability tier for runs whose
ledger must survive power loss, at the usual cost.

The writer owns ``seq`` and the chain: entries come in as plain dicts
(from :mod:`.recorder`), leave as canonical JSON lines stamped with
``seq`` and ``h = sha256(prev_h + "\\n" + canonical(entry))``.  Line 0
is always the ruleset header, chained from :data:`~.hashing.GENESIS`.

Accounting lands in the telemetry registry on ``close()`` --
``ledger_entries_total`` (per kind), ``ledger_bytes_total``,
``ledger_flushes_total`` -- so a run's sidecar shows what its ledger
cost (see docs/observability.md).
"""

from __future__ import annotations

import hashlib
import os
from binascii import hexlify
from collections import Counter
from pathlib import Path
from typing import Iterable, Mapping, Optional, Union

from .hashing import (
    GENESIS,
    _fast_dumps,
    _strict_guard,
    canonical_bytes,
    ruleset_hash,
)
from .records import KIND_RULESET, LEDGER_VERSION

__all__ = ["LedgerWriter"]


class LedgerWriter:
    """Append-only writer for one ledger file.

    Parameters
    ----------
    path:
        Output JSONL file (parent directories are created; an existing
        file is truncated -- a ledger records exactly one run).
    ruleset:
        The :func:`~.records.ruleset_document` of the run; written as
        the header entry and hashed into :attr:`ruleset_hash`.
    meta:
        Free-form run metadata for the header (host, mode, shards,
        kernels, app...).  Not part of the ruleset hash.
    fsync:
        Force ``os.fsync`` after every buffer flush.
    buffer_entries:
        Entries buffered in memory between file writes.
    telemetry:
        Optional :class:`repro.obs.Telemetry`; ledger accounting is
        recorded into its registry on close.
    """

    def __init__(
        self,
        path: Union[str, Path],
        ruleset: Mapping[str, object],
        *,
        meta: Optional[Mapping[str, object]] = None,
        fsync: bool = False,
        buffer_entries: int = 256,
        telemetry=None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.ruleset = dict(ruleset)
        self.ruleset_hash = ruleset_hash(self.ruleset)
        self.fsync = bool(fsync)
        self.seq = 0
        self.bytes_written = 0
        self.flushes = 0
        self.closed = False
        # The chain state is kept as ASCII hex bytes so the hot loop
        # hashes and splices without str<->bytes round-trips.
        self._prev = GENESIS.encode("ascii")
        # The buffer holds line *pieces* (body, h-splice, hash, tail),
        # joined once per flush -- cheaper than concatenating each
        # line into its own bytes object.  ``_pending`` counts whole
        # entries, since ``len(self._buffer)`` no longer does.
        self._buffer: list = []
        self._pending = 0
        self._buffer_entries = max(1, int(buffer_entries))
        # Raw kind of every appended entry; tallied once at close
        # (a list append is cheaper than a dict upsert per entry).
        self._kinds: list = []
        self._telemetry = telemetry
        self._handle = open(self.path, "wb")
        self._append(
            {
                "at": 0.0,
                "kind": KIND_RULESET,
                "ledger_version": LEDGER_VERSION,
                "meta": dict(meta or {}),
                "ruleset": self.ruleset,
                "ruleset_hash": self.ruleset_hash,
            }
        )

    # -- appending ----------------------------------------------------------

    def append(self, entry: Mapping[str, object]) -> None:
        """Chain and buffer one entry (``seq``/``h`` are assigned here)."""
        self._append(dict(entry))

    def append_many(
        self, entries: Iterable[Mapping[str, object]], *, copy: bool = True
    ) -> None:
        """Bulk :meth:`append` with the per-entry attribute traffic hoisted.

        This is the engine's post-run emission path (thousands of
        entries in one call), so the chain loop binds its state
        locally and inlines the hash; semantics are identical to
        repeated :meth:`append`.  ``copy=False`` lets a caller that
        owns the entry dicts skip the defensive copy (each entry is
        then mutated with its ``seq``).
        """
        if self.closed:
            raise ValueError(f"ledger {self.path} is closed")
        encode = _fast_dumps  # C-level call; null outputs re-validated below
        sha256 = hashlib.sha256
        tohex = hexlify
        buffer_extend = self._buffer.extend
        kinds_append = self._kinds.append
        limit = self._buffer_entries
        prev = self._prev
        seq = self.seq
        pending = self._pending
        try:
            for entry in entries:
                if copy:
                    entry = dict(entry)
                entry["seq"] = seq
                body = encode(entry)
                if b"null" in body:
                    _strict_guard(entry)
                prev = tohex(sha256(prev + b"\n" + body).digest())
                buffer_extend((body[:-1], b',"h":"', prev, b'"}\n'))
                seq += 1
                pending += 1
                kinds_append(entry.get("kind"))
                if pending >= limit:
                    self._prev = prev
                    self.seq = seq
                    self._pending = pending
                    self.flush()
                    pending = 0
        finally:
            self._prev = prev
            self.seq = seq
            self._pending = pending

    def _append(self, entry: dict) -> None:
        if self.closed:
            raise ValueError(f"ledger {self.path} is closed")
        entry["seq"] = self.seq
        body = canonical_bytes(entry)
        h = hexlify(hashlib.sha256(self._prev + b"\n" + body).digest())
        # The line keeps the canonical body and tacks ``h`` on at the
        # end; verification canonicalizes after parsing, so the stored
        # key order is free and the body is serialized exactly once.
        self._buffer.extend((body[:-1], b',"h":"', h, b'"}\n'))
        self._prev = h
        self.seq += 1
        self._pending += 1
        self._kinds.append(entry.get("kind"))
        if self._pending >= self._buffer_entries:
            self.flush()

    # -- flushing / closing -------------------------------------------------

    def flush(self) -> None:
        """Write buffered lines through (and fsync when configured)."""
        if not self._buffer:
            return
        blob = b"".join(self._buffer)
        self._buffer.clear()
        self._pending = 0
        self._handle.write(blob)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.bytes_written += len(blob)
        self.flushes += 1

    def close(self) -> None:
        """Flush, record the ledger accounting, release the file handle.

        Idempotent; the writer cannot append afterwards.
        """
        if self.closed:
            return
        self.flush()
        self._handle.close()
        self.closed = True
        if self._telemetry is not None:
            registry = self._telemetry.registry
            counts = Counter(
                "?" if kind is None else str(kind) for kind in self._kinds
            )
            for kind, count in sorted(counts.items()):
                registry.counter(
                    "ledger_entries_total",
                    help="Decision-ledger entries written, by kind",
                    labels={"kind": kind},
                ).inc(count)
            registry.counter(
                "ledger_bytes_total",
                help="Bytes appended to the decision ledger",
            ).inc(self.bytes_written)
            registry.counter(
                "ledger_flushes_total",
                help="Buffered ledger flushes (file writes)",
            ).inc(self.flushes)

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
