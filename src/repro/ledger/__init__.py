"""Immutable decision ledger: hash-chained provenance + replay.

The paper's contribution is a *decision procedure* -- which
inconsistent context to discard under drop-latest / drop-all /
drop-bad -- and this package makes every one of those decisions a
durable, auditable record.  A ledger is an append-only JSONL file:
line 0 is the run's full resolution configuration (the *ruleset*,
hashed into ``ruleset_hash``), every later line one life-cycle verdict
(arrival, detection, admit, buffer, mark-bad, discard with its *why*,
deliver, expire), each hash-chained to its predecessor so editing,
dropping or reordering history is detectable from the file alone.

Emission rides the canonical runtime's event bus, so every host
records for free: ``Middleware`` via :class:`LedgerService`, the
sharded engine via ``EngineConfig(ledger_path=...)`` (per-shard
segments merged deterministically in local/process modes), the
serving front-door through the engine's open stream.

The reader side needs nothing but the file: ``repro ledger verify``
(chain + ruleset check), ``repro ledger explain <ctx-id>`` (causal
story), ``repro ledger replay`` (re-project the decisions from ledger
+ ruleset and assert byte-identical signatures), ``repro ledger diff``
(compare two runs).  See docs/ledger.md.
"""

from .hashing import GENESIS, canonical_json, chain_hash, ruleset_hash
from .reader import (
    VerifyResult,
    diff_ledgers,
    explain_context,
    format_diff,
    iter_ledger,
    ledger_signature,
    read_ledger,
    verify_ledger,
)
from .recorder import LedgerRecorder, entries_from_events, merge_segments
from .records import (
    DECISION_KINDS,
    LEDGER_VERSION,
    TERMINAL_KINDS,
    constraints_from_document,
    registry_spec,
    resolve_registry_spec,
    ruleset_document,
)
from .replay import ReplayResult, replay_ledger
from .service import LedgerService
from .writer import LedgerWriter

__all__ = [
    "GENESIS",
    "LEDGER_VERSION",
    "DECISION_KINDS",
    "TERMINAL_KINDS",
    "canonical_json",
    "chain_hash",
    "ruleset_hash",
    "ruleset_document",
    "constraints_from_document",
    "registry_spec",
    "resolve_registry_spec",
    "LedgerWriter",
    "LedgerRecorder",
    "entries_from_events",
    "merge_segments",
    "LedgerService",
    "read_ledger",
    "iter_ledger",
    "VerifyResult",
    "verify_ledger",
    "ledger_signature",
    "explain_context",
    "diff_ledgers",
    "format_diff",
    "ReplayResult",
    "replay_ledger",
]
