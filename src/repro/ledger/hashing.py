"""Canonical JSON and the ledger's hash primitives.

Every ledger entry is serialized in *canonical* form -- sorted keys,
compact separators, strict JSON (no bare ``Infinity``/``NaN``) -- so
one logical entry has exactly one byte representation.  That is what
makes the hash chain meaningful: re-serializing a parsed entry
reproduces the bytes that were hashed, so verification never depends
on how the file happened to be formatted.

Two derived hashes:

* :func:`ruleset_hash` -- identity of a resolution configuration (the
  constraint DSL texts + strategy config + window semantics).  Two
  runs with equal ruleset hashes were resolved under the same rules;
  metrics and ledgers stamped with it are attributable to an exact
  configuration.
* :func:`chain_hash` -- per-entry chain link
  ``sha256(prev_hash \\n canonical(entry))``.  Editing, dropping or
  reordering any entry breaks every later link, which is the ledger's
  tamper evidence.
"""

from __future__ import annotations

import hashlib
import json
from functools import partial as _partial
from typing import Mapping

__all__ = [
    "GENESIS",
    "canonical_bytes",
    "canonical_json",
    "sha256_hex",
    "chain_hash",
    "ruleset_hash",
]

try:  # already in the toolchain image; never installed by this package
    import orjson as _orjson
except ImportError:  # pragma: no cover - exercised via the fallback encoder
    _orjson = None

#: Chain seed of the first entry (the ruleset header has no predecessor).
GENESIS = "0" * 64

# json.dumps with non-default options builds a fresh JSONEncoder per
# call; one shared encoder is reused (encoders are stateless).  This
# is both the no-orjson canonical form and the strictness validator
# for the fast path below: ``allow_nan=False`` raises ValueError on
# non-finite floats, ``ensure_ascii=False`` emits the same raw UTF-8
# orjson does.
_STRICT_ENCODE = json.JSONEncoder(
    ensure_ascii=False, sort_keys=True, separators=(",", ":"), allow_nan=False
).encode

if _orjson is not None:
    # Frame-free fast encoder (functools.partial calls are C-level):
    # orjson with sorted keys matches the stdlib encoder byte-for-byte
    # on the ledger's value domain (str keys, raw UTF-8, plain-decimal
    # floats).  Callers MUST pair it with _strict_guard: orjson
    # silently serializes non-finite floats as ``null`` instead of
    # raising, so any output containing ``null`` -- rare in decision
    # entries; legit ``None`` values appear in the once-per-run header
    # -- is re-validated through the strict stdlib encoder, restoring
    # the ``ValueError``-on-NaN contract (context records sentinel
    # infinite lifespans as the string ``"Infinity"`` first, see
    # :func:`repro.middleware.trace.context_record`).
    _fast_dumps = _partial(_orjson.dumps, option=_orjson.OPT_SORT_KEYS)

    def _strict_guard(obj: object) -> None:
        _STRICT_ENCODE(obj)

else:  # pragma: no cover - the image ships orjson; this is the gate

    def _fast_dumps(obj: object) -> bytes:
        return _STRICT_ENCODE(obj).encode("utf-8")

    def _strict_guard(obj: object) -> None:
        pass  # _fast_dumps is already the strict encoder


def canonical_bytes(obj: object) -> bytes:
    """Canonical form as UTF-8 bytes (the writer's hot path).

    Strict JSON: out-of-range floats raise ``ValueError`` instead of
    serializing as the non-standard ``Infinity``/``NaN`` tokens (or
    orjson's silent ``null``).
    """
    out = _fast_dumps(obj)
    if b"null" in out:
        _strict_guard(obj)
    return out


def canonical_json(obj: object) -> str:
    """The single canonical byte form of a JSON-serializable object.

    ``canonical_bytes`` decoded; both views hash identically
    (:func:`sha256_hex` re-encodes as UTF-8).
    """
    return canonical_bytes(obj).decode("utf-8")


def sha256_hex(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def chain_hash(prev: str, entry: Mapping[str, object]) -> str:
    """Chain link for ``entry`` given its predecessor's hash.

    ``entry`` is hashed *without* its own ``h`` field (the writer
    computes ``h`` from this function; the verifier pops ``h`` and
    recomputes it).
    """
    return sha256_hex(prev + "\n" + canonical_json(entry))


def ruleset_hash(ruleset: Mapping[str, object]) -> str:
    """Identity hash of a ruleset document (see :mod:`.records`)."""
    return sha256_hex(canonical_json(ruleset))
