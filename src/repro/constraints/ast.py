"""Abstract syntax for consistency constraints.

Consistency constraints are first-order formulas over the context
pool, in the style of Xu & Cheung's consistency checking work ([16],
[17]) which the paper's middleware uses for inconsistency detection.
A constraint quantifies variables over *context types* and relates the
bound contexts through boolean predicate functions::

    forall p1 in location, forall p2 in location :
        adjacent(p1, p2) implies velocity_ok(p1, p2)

The AST is deliberately small: two quantifiers, the usual boolean
connectives, and applications of named predicate functions to bound
variables and literals.  Formulas are immutable and hashable so
checkers can cache on them.

Construction can go through the classes directly, through the fluent
helpers at the bottom of this module, or through the textual DSL in
:mod:`repro.constraints.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Optional, Tuple, Union

__all__ = [
    "Formula",
    "Universal",
    "Existential",
    "And",
    "Or",
    "Not",
    "Implies",
    "Predicate",
    "Var",
    "Literal",
    "Term",
    "forall",
    "exists",
    "pred",
    "Constraint",
]


@dataclass(frozen=True)
class Var:
    """A variable bound by a quantifier, referencing a context."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal:
    """A constant argument to a predicate (number, string, tuple)."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Var, Literal]


class Formula:
    """Base class for constraint formulas."""

    def variables(self) -> FrozenSet[str]:
        """Names of variables occurring (bound or free) in the formula."""
        raise NotImplementedError

    def free_variables(self) -> FrozenSet[str]:
        """Names of variables not bound by an enclosing quantifier."""
        raise NotImplementedError

    def quantified_types(self) -> FrozenSet[str]:
        """All context types any quantifier in the formula ranges over."""
        raise NotImplementedError

    def walk(self) -> Iterator["Formula"]:
        """Depth-first pre-order traversal of the formula tree."""
        yield self

    # Connective sugar so formulas compose readably in Python:
    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def implies(self, other: "Formula") -> "Implies":
        return Implies(self, other)


@dataclass(frozen=True)
class Predicate(Formula):
    """Application of a named boolean function to terms.

    The function is looked up in the checker's
    :class:`~repro.constraints.builtins.FunctionRegistry` at evaluation
    time.
    """

    func: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        for arg in self.args:
            if not isinstance(arg, (Var, Literal)):
                raise TypeError(
                    f"predicate {self.func!r} argument {arg!r} is neither "
                    f"Var nor Literal"
                )

    def variables(self) -> FrozenSet[str]:
        return frozenset(a.name for a in self.args if isinstance(a, Var))

    def free_variables(self) -> FrozenSet[str]:
        return self.variables()

    def quantified_types(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def free_variables(self) -> FrozenSet[str]:
        return self.operand.free_variables()

    def quantified_types(self) -> FrozenSet[str]:
        return self.operand.quantified_types()

    def walk(self) -> Iterator[Formula]:
        yield self
        yield from self.operand.walk()

    def __repr__(self) -> str:
        return f"not ({self.operand!r})"


class _Binary(Formula):
    """Shared plumbing for binary connectives."""

    left: Formula
    right: Formula
    _symbol = "?"

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables() | self.right.free_variables()

    def quantified_types(self) -> FrozenSet[str]:
        return self.left.quantified_types() | self.right.quantified_types()

    def walk(self) -> Iterator[Formula]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __repr__(self) -> str:
        return f"({self.left!r}) {self._symbol} ({self.right!r})"


@dataclass(frozen=True, repr=False)
class And(_Binary):
    left: Formula
    right: Formula
    _symbol = "and"


@dataclass(frozen=True, repr=False)
class Or(_Binary):
    left: Formula
    right: Formula
    _symbol = "or"


@dataclass(frozen=True, repr=False)
class Implies(_Binary):
    left: Formula
    right: Formula
    _symbol = "implies"


class _Quantifier(Formula):
    """Shared plumbing for quantified formulas."""

    var: str
    ctx_type: str
    body: Formula

    def variables(self) -> FrozenSet[str]:
        return self.body.variables() | {self.var}

    def free_variables(self) -> FrozenSet[str]:
        return self.body.free_variables() - {self.var}

    def quantified_types(self) -> FrozenSet[str]:
        return self.body.quantified_types() | {self.ctx_type}

    def walk(self) -> Iterator[Formula]:
        yield self
        yield from self.body.walk()


@dataclass(frozen=True)
class Universal(_Quantifier):
    """``forall var in ctx_type : body``."""

    var: str
    ctx_type: str
    body: Formula

    def __repr__(self) -> str:
        return f"forall {self.var} in {self.ctx_type} : ({self.body!r})"


@dataclass(frozen=True)
class Existential(_Quantifier):
    """``exists var in ctx_type : body``."""

    var: str
    ctx_type: str
    body: Formula

    def __repr__(self) -> str:
        return f"exists {self.var} in {self.ctx_type} : ({self.body!r})"


# -- fluent construction helpers ----------------------------------------------


def forall(var: str, ctx_type: str, body: Formula) -> Universal:
    """Build a universal quantification (fluent helper)."""
    return Universal(var, ctx_type, body)


def exists(var: str, ctx_type: str, body: Formula) -> Existential:
    """Build an existential quantification (fluent helper)."""
    return Existential(var, ctx_type, body)


def pred(func: str, *args: Union[str, Term, object]) -> Predicate:
    """Build a predicate application.

    Bare strings are treated as variable names; anything else that is
    not already a :class:`Var`/:class:`Literal` becomes a literal::

        pred("velocity_ok", "p1", "p2", 1.5)
    """
    terms = []
    for arg in args:
        if isinstance(arg, (Var, Literal)):
            terms.append(arg)
        elif isinstance(arg, str):
            terms.append(Var(arg))
        else:
            terms.append(Literal(arg))
    return Predicate(func, tuple(terms))


@dataclass(frozen=True)
class Constraint:
    """A named consistency constraint.

    Attributes
    ----------
    name:
        Identifier used in inconsistency reports.
    formula:
        The closed first-order formula that must hold over the pool.
    description:
        Human-readable intent, for documentation and reports.
    """

    name: str
    formula: Formula
    description: str = ""

    def __post_init__(self) -> None:
        free = self.formula.free_variables()
        if free:
            raise ValueError(
                f"constraint {self.name!r} has free variables: {sorted(free)}"
            )

    def relevant_types(self) -> FrozenSet[str]:
        """Context types this constraint quantifies over."""
        return self.formula.quantified_types()

    def __repr__(self) -> str:
        return f"Constraint({self.name!r})"
