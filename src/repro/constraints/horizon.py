"""Temporal horizon extraction: how far back a constraint can *see*.

The async-check ingress (:class:`repro.runtime.snapshot.
SnapshotIngress`) orders arrivals inside a watermark window of
``max_lag`` simulation seconds.  How large must that window be for the
checking semantics to survive asynchrony?  The constraint set itself
answers part of it: a constraint whose predicates only relate contexts
within ``dt`` seconds of each other (``within_time(a, b, dt)``) can
never implicate a pair further apart, so a context released more than
``dt`` behind the stream head could only have mattered to detections
that already fired.

:func:`temporal_horizon` walks every formula (:meth:`~repro.
constraints.ast.Formula.walk`) and returns the largest literal time
bound any time-comparing predicate carries -- a principled *lower*
bound for ``max_lag``.  It is deliberately conservative in the other
direction too: constraints with no recognized temporal predicate
(e.g. pure co-location rules that implicate arbitrarily old pool
members) make the horizon unbounded (``None``), because no finite
window provably covers them.  The operational knob should then come
from deployment knowledge (worst delivery delay + clock skew), not
from the constraints.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .ast import Constraint, Literal, Predicate

__all__ = ["temporal_horizon", "TIME_BOUNDED_PREDICATES"]

#: Builtin predicates whose last literal argument is a time bound in
#: simulation seconds: beyond it, the predicate's truth value cannot
#: link the two contexts (see :mod:`repro.constraints.builtins`).
TIME_BOUNDED_PREDICATES = frozenset({"within_time", "older_than"})


def _literal_bound(node: Predicate) -> Optional[float]:
    """The trailing literal time bound of a time-comparing predicate."""
    for arg in reversed(node.args):
        if isinstance(arg, Literal):
            value = arg.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
            return None  # malformed bound: treat as non-temporal
    return None


def temporal_horizon(
    constraints: Iterable[Constraint],
) -> Optional[float]:
    """Largest time bound any constraint's temporal predicates carry.

    Returns ``None`` when the horizon is unbounded: the set is empty,
    a constraint carries no time-comparing predicate at all, or a
    temporal predicate's bound is not a numeric literal.  A finite
    return is a sound lower bound for
    :attr:`repro.runtime.snapshot.AsyncCheckConfig.max_lag`: a window
    at least that wide guarantees every context pair a constraint can
    relate is ordered before detection sees either member.
    """
    horizon = 0.0
    any_constraint = False
    for constraint in constraints:
        any_constraint = True
        bounded = False
        for node in constraint.formula.walk():
            if (
                isinstance(node, Predicate)
                and node.func in TIME_BOUNDED_PREDICATES
            ):
                bound = _literal_bound(node)
                if bound is None:
                    return None
                bounded = True
                horizon = max(horizon, bound)
        if not bounded:
            # A constraint that never compares timestamps can relate
            # contexts arbitrarily far apart -- no finite window covers
            # it.
            return None
    return horizon if any_constraint else None
