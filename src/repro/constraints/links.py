"""Links: explanations of constraint satisfaction / violation.

Following the link-generation semantics of consistency checking for
pervasive contexts ([16], [17], after Nentwich et al.'s xlinkit [11]),
evaluating a constraint does not merely return true/false: it returns
*links*, each tying together the variable bindings (contexts) that
jointly satisfy or violate the formula.

A violation link of a constraint is exactly what the paper calls a
context inconsistency: the set of contexts that together breach the
constraint.  E.g. the velocity constraint over Figure 1's scenario A
yields the violation links {d2, d3} and {d3, d4}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Set, Tuple

from ..core.context import Context

__all__ = ["Link", "LinkSet", "cross_join", "EMPTY_LINK"]


@dataclass(frozen=True)
class Link:
    """An immutable set of variable-to-context bindings.

    Two links with the same bindings are equal regardless of the order
    they were built in.
    """

    bindings: FrozenSet[Tuple[str, Context]]

    def __post_init__(self) -> None:
        if not isinstance(self.bindings, frozenset):
            object.__setattr__(self, "bindings", frozenset(self.bindings))

    @classmethod
    def of(cls, **bindings: Context) -> "Link":
        """Build a link from keyword bindings: ``Link.of(p1=d2, p2=d3)``."""
        return cls(frozenset(bindings.items()))

    def merge(self, other: "Link") -> "Link":
        """Union of two links' bindings."""
        return Link(self.bindings | other.bindings)

    def extend(self, var: str, ctx: Context) -> "Link":
        """This link plus one extra binding."""
        return Link(self.bindings | {(var, ctx)})

    def contexts(self) -> FrozenSet[Context]:
        """The distinct contexts bound anywhere in this link."""
        return frozenset(ctx for _, ctx in self.bindings)

    def involves(self, ctx: Context) -> bool:
        return any(c == ctx for _, c in self.bindings)

    def as_dict(self) -> Dict[str, Context]:
        return dict(self.bindings)

    def __len__(self) -> int:
        return len(self.bindings)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{var}={ctx.ctx_id}" for var, ctx in sorted(self.bindings, key=str)
        )
        return f"Link({inner})"


#: The trivial link carrying no bindings.
EMPTY_LINK = Link(frozenset())

#: A set of links.
LinkSet = FrozenSet[Link]


def cross_join(left: Iterable[Link], right: Iterable[Link]) -> LinkSet:
    """Pairwise merge of two link sets (the ⊗ of link semantics).

    Used when *both* operands of a connective contribute to the result:
    e.g. the satisfaction links of ``f1 and f2`` are every satisfaction
    link of ``f1`` merged with every satisfaction link of ``f2``.
    """
    left = tuple(left)
    right = tuple(right)
    if not left:
        return frozenset(right)
    if not right:
        return frozenset(left)
    return frozenset(l.merge(r) for l in left for r in right)
