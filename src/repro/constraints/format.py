"""Formatting formulas back to constraint-DSL text.

``format_formula(parse_formula(text))`` produces text that re-parses
to an equal AST (a hypothesis round-trip test asserts this), which
makes constraints loggable, diffable and storable alongside traces.
"""

from __future__ import annotations

from .ast import (
    And,
    Constraint,
    Existential,
    Formula,
    Implies,
    Literal,
    Not,
    Or,
    Predicate,
    Term,
    Universal,
    Var,
)

__all__ = ["format_formula", "format_constraint", "format_term"]

#: Binding strength, loosest first.  Quantifier bodies extend to the
#: right, so a quantifier is the loosest construct.
_PRECEDENCE = {
    Universal: 0,
    Existential: 0,
    Implies: 1,
    Or: 2,
    And: 3,
    Not: 4,
    Predicate: 5,
}


def format_term(term: Term) -> str:
    """One predicate argument as DSL text."""
    if isinstance(term, Var):
        return term.name
    value = term.value
    if isinstance(value, str):
        if "'" in value:
            return f'"{value}"'
        return f"'{value}'"
    if isinstance(value, bool):
        # No boolean literals in the DSL; ints round-trip, booleans
        # would come back as ints.  Be explicit.
        raise ValueError("boolean literals are not expressible in the DSL")
    if isinstance(value, (int, float)):
        return repr(value)
    raise ValueError(f"literal {value!r} is not expressible in the DSL")


def _wrap(child: Formula, parent_level: int) -> str:
    text = format_formula(child)
    if _PRECEDENCE[type(child)] < parent_level:
        return f"({text})"
    return text


def format_formula(formula: Formula) -> str:
    """The formula as DSL text (re-parses to an equal AST)."""
    if isinstance(formula, Predicate):
        args = ", ".join(format_term(arg) for arg in formula.args)
        return f"{formula.func}({args})"
    if isinstance(formula, Not):
        return f"not {_wrap(formula.operand, _PRECEDENCE[Not] + 1)}"
    if isinstance(formula, And):
        return (
            f"{_wrap(formula.left, _PRECEDENCE[And])} and "
            f"{_wrap(formula.right, _PRECEDENCE[And] + 1)}"
        )
    if isinstance(formula, Or):
        return (
            f"{_wrap(formula.left, _PRECEDENCE[Or])} or "
            f"{_wrap(formula.right, _PRECEDENCE[Or] + 1)}"
        )
    if isinstance(formula, Implies):
        # Right-associative: the consequent may be looser (quantifier
        # or implication), the antecedent must be strictly tighter.
        return (
            f"{_wrap(formula.left, _PRECEDENCE[Implies] + 1)} implies "
            f"{_wrap(formula.right, _PRECEDENCE[Implies])}"
        )
    if isinstance(formula, Universal):
        return (
            f"forall {formula.var} in {formula.ctx_type} : "
            f"{format_formula(formula.body)}"
        )
    if isinstance(formula, Existential):
        return (
            f"exists {formula.var} in {formula.ctx_type} : "
            f"{format_formula(formula.body)}"
        )
    raise TypeError(f"cannot format formula node {formula!r}")


def format_constraint(constraint: Constraint) -> str:
    """One-line ``name : formula-text`` rendering of a constraint."""
    return f"{constraint.name}: {format_formula(constraint.formula)}"
