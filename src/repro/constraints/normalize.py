"""Formula normalization: canonical structural keys for sharing.

Different constraints routinely quantify over the same shapes -- the
two call-forwarding velocity rules differ only in literals, and
application packs stamp out families of constraints from one template
with renamed variables.  Compiling (and evaluating) each copy
separately wastes exactly the work this module recovers: a
*canonical key* abstracts a formula from its variable spelling, so
structurally identical bodies collide in caches keyed on it.

The canonicalization follows the normalization idea of pracmln's FOL
grounding machinery (see SNIPPETS.md): variables are replaced by their
*position* -- free variables by their index in the caller-supplied
order, quantifier-bound variables by a de Bruijn-style index assigned
in binding order -- and the tree is folded into nested tuples of plain
hashable values.  Two formulas produce the same key iff one is the
other with variables consistently renamed, which is precisely the
condition under which a compiled kernel (whose variables are
positional parameters already) can be shared between them:

>>> a = pred("same_subject", "x", "y")
>>> b = pred("same_subject", "p", "q")
>>> canonical_key(a, ("x", "y")) == canonical_key(b, ("p", "q"))
True

:class:`~repro.constraints.incremental.IncrementalEngine` keys its
cross-constraint kernel cache on these keys (the ``subexpr_memo_*``
telemetry counters measure the hit rate), and the batched detection
path (:meth:`~repro.constraints.checker.ConstraintChecker.detect_batch`)
uses the same idea one level down: equality-guard probes are keyed on
their ``(type, field, value)`` group -- the canonical form of the
guard subexpression applied to a row -- so identical guards across
different constraints resolve to one index probe per batch.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .ast import (
    And,
    Existential,
    Formula,
    Implies,
    Literal,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
)

__all__ = ["canonical_key"]


def _term_key(term, scope: Dict[str, int]):
    if isinstance(term, Var):
        position = scope.get(term.name)
        if position is None:
            # A free variable outside the declared order: keep its
            # name -- such formulas only equal themselves.
            return ("freevar", term.name)
        return ("var", position)
    assert isinstance(term, Literal)
    value = term.value
    try:
        hash(value)
    except TypeError:
        value = repr(value)
    return ("lit", value)


def _key(formula: Formula, scope: Dict[str, int], depth: int):
    if isinstance(formula, Predicate):
        return (
            "pred",
            formula.func,
            tuple(_term_key(term, scope) for term in formula.args),
        )
    if isinstance(formula, Not):
        return ("not", _key(formula.operand, scope, depth))
    if isinstance(formula, And):
        return (
            "and",
            _key(formula.left, scope, depth),
            _key(formula.right, scope, depth),
        )
    if isinstance(formula, Or):
        return (
            "or",
            _key(formula.left, scope, depth),
            _key(formula.right, scope, depth),
        )
    if isinstance(formula, Implies):
        return (
            "implies",
            _key(formula.left, scope, depth),
            _key(formula.right, scope, depth),
        )
    if isinstance(formula, (Universal, Existential)):
        kind = "forall" if isinstance(formula, Universal) else "exists"
        # Bound variables number from the bottom of a separate
        # namespace; shadowing replaces the outer binding exactly as
        # lexical scoping would resolve it.
        inner = dict(scope)
        inner[formula.var] = depth
        return (
            kind,
            formula.ctx_type,
            _key(formula.body, inner, depth + 1),
        )
    raise TypeError(f"unsupported node {type(formula).__name__}")


def canonical_key(formula: Formula, var_names: Sequence[str] = ()) -> Tuple:
    """Hashable structural key of ``formula``, invariant under renaming.

    ``var_names`` fixes the positions of the formula's free variables
    (the same order a kernel's positional parameters follow); bound
    variables are numbered by binding depth *below* the free range, so
    keys never depend on spelling.  Everything inside the key is
    hashable: unhashable literal values degrade to their ``repr``.
    """
    scope = {name: index for index, name in enumerate(var_names)}
    return _key(formula, scope, -1_000_000)
