"""The constraint checker: an :class:`InconsistencyDetector`.

Bundles a set of named constraints, a predicate registry, the full
evaluator and the incremental engine into the detector interface the
resolution service consumes.  This is the reproduction of the
consistency checking service of the Cabot middleware ([16], [17]).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..core.context import Context
from ..core.inconsistency import Inconsistency
from ..core.resolver import InconsistencyDetector
from .ast import Constraint
from .builtins import FunctionRegistry, standard_registry
from .evaluator import Evaluator
from .incremental import IncrementalEngine

__all__ = ["ConstraintChecker"]


class ConstraintChecker(InconsistencyDetector):
    """Checks new contexts against a set of consistency constraints.

    Parameters
    ----------
    constraints:
        The consistency constraints to enforce.
    registry:
        Predicate function registry; defaults to the standard library
        registry (applications typically extend it).
    incremental:
        Use the incremental fast path where applicable (default).

    The checker is *incremental by contract*: :meth:`detect` returns
    only inconsistencies that involve the newly added context, which is
    exactly the delta a resolution strategy needs on a context addition
    change.
    """

    def __init__(
        self,
        constraints: Iterable[Constraint] = (),
        registry: Optional[FunctionRegistry] = None,
        incremental: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else standard_registry()
        self._constraints: Dict[str, Constraint] = {}
        self._relevant_types: Set[str] = set()
        self._engine = IncrementalEngine(self.registry, enabled=incremental)
        self.evaluator = Evaluator(self.registry)
        #: Detection statistics, for the incremental-speed-up benchmark.
        self.detect_calls = 0
        #: Telemetry bundle (repro.obs); hosts swap in a live one.
        from ..obs.telemetry import NULL_TELEMETRY

        self.telemetry = NULL_TELEMETRY
        for constraint in constraints:
            self.add_constraint(constraint)

    @property
    def telemetry(self):
        return self._telemetry

    @telemetry.setter
    def telemetry(self, telemetry) -> None:
        # Pre-resolve the per-detect counters and the incremental-check
        # span so the hot path pays a plain ``inc`` / re-enter instead
        # of a registry lookup and span allocation per call.
        self._telemetry = telemetry
        self._check_span = telemetry.span_timer("check.incremental")
        if telemetry.enabled:
            self._detect_counter = telemetry.registry.counter(
                "checker_detect_calls_total",
                help="Incremental detect() invocations",
            )
            self._violations_counter = telemetry.registry.counter(
                "checker_violations_total",
                help="Inconsistencies the checker reported",
            )
        else:
            self._detect_counter = None
            self._violations_counter = None

    # -- constraint management -------------------------------------------

    def add_constraint(self, constraint: Constraint) -> None:
        """Register a constraint; names must be unique."""
        if constraint.name in self._constraints:
            raise ValueError(f"constraint {constraint.name!r} already added")
        self._constraints[constraint.name] = constraint
        self._relevant_types |= constraint.relevant_types()

    def constraints(self) -> List[Constraint]:
        return [self._constraints[name] for name in sorted(self._constraints)]

    def constraint(self, name: str) -> Constraint:
        return self._constraints[name]

    # -- InconsistencyDetector interface -------------------------------------

    def is_relevant(self, ctx: Context) -> bool:
        """Whether any constraint quantifies over ``ctx``'s type."""
        return ctx.ctx_type in self._relevant_types

    def detect(
        self, ctx: Context, existing: Sequence[Context], now: float
    ) -> List[Inconsistency]:
        """Inconsistencies that adding ``ctx`` introduces.

        Each distinct (constraint, violating context set) pair yields
        one :class:`Inconsistency`; only violations involving ``ctx``
        are returned.
        """
        self.detect_calls += 1
        self.registry.now = now
        extended = list(existing) + [ctx]
        by_type: Dict[str, List[Context]] = {}
        for context in extended:
            by_type.setdefault(context.ctx_type, []).append(context)

        def domain(ctx_type: str) -> Sequence[Context]:
            return by_type.get(ctx_type, ())

        inconsistencies: List[Inconsistency] = []
        with self._check_span:
            for name in sorted(self._constraints):
                constraint = self._constraints[name]
                if ctx.ctx_type not in constraint.relevant_types():
                    continue
                for contexts in self._engine.new_violations(
                    constraint, ctx, existing, domain
                ):
                    inconsistencies.append(
                        Inconsistency(
                            contexts=frozenset(contexts),
                            constraint=constraint.name,
                            detected_at=now,
                        )
                    )
        if self._detect_counter is not None:
            self._detect_counter.inc()
            if inconsistencies:
                self._violations_counter.inc(len(inconsistencies))
        return inconsistencies

    def forget(self, ctx: Context) -> None:
        """The checker keeps no per-context caches; nothing to drop.

        Present to satisfy the detector protocol: the incremental
        engine evaluates only fresh bindings, so discarded contexts
        simply never appear in future scopes.
        """

    # -- diagnostics --------------------------------------------------------

    def check_all(
        self, contexts: Sequence[Context], now: float = 0.0
    ) -> List[Inconsistency]:
        """Full (non-incremental) check of a whole pool, for tests and
        for the scenario walkthroughs: every current violation of every
        constraint, not only those involving a particular context."""
        self.registry.now = now
        by_type: Dict[str, List[Context]] = {}
        for context in contexts:
            by_type.setdefault(context.ctx_type, []).append(context)

        def domain(ctx_type: str) -> Sequence[Context]:
            return by_type.get(ctx_type, ())

        out: List[Inconsistency] = []
        with self.telemetry.span("check.full", pool=len(contexts)):
            for name in sorted(self._constraints):
                constraint = self._constraints[name]
                for contexts_set in self.evaluator.violations(constraint, domain):
                    out.append(
                        Inconsistency(
                            contexts=frozenset(contexts_set),
                            constraint=constraint.name,
                            detected_at=now,
                        )
                    )
        return out
