"""The constraint checker: an :class:`InconsistencyDetector`.

Bundles a set of named constraints, a predicate registry, the full
evaluator and the incremental engine into the detector interface the
resolution service consumes.  This is the reproduction of the
consistency checking service of the Cabot middleware ([16], [17]).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from ..core.context import Context
from ..core.inconsistency import Inconsistency
from ..core.resolver import InconsistencyDetector
from .ast import Constraint
from .builtins import FunctionRegistry, standard_registry
from .evaluator import Evaluator
from .incremental import GroupPlan, IncrementalEngine
from .index import BatchOverlayView, CandidateIndex, EphemeralScopeIndex

__all__ = ["ConstraintChecker"]


class ConstraintChecker(InconsistencyDetector):
    """Checks new contexts against a set of consistency constraints.

    Parameters
    ----------
    constraints:
        The consistency constraints to enforce.
    registry:
        Predicate function registry; defaults to the standard library
        registry (applications typically extend it).
    incremental:
        Use the incremental fast path where applicable (default).
    kernels:
        Compile constraint bodies to specialized closures and prune
        candidate enumeration through equality-join indexes (default).
        Disable to force the interpreted reference path (the engine's
        ``--no-kernels`` escape hatch).
    batch_kernels:
        Let :meth:`detect_batch` use the vectorized batch-kernel sweep
        and the cross-batch probe memo (default).  Disable (the
        engine's ``--no-batch-kernels`` escape hatch) and
        :meth:`detect_batch` degrades to a sequential emulation with
        identical results -- callers never need to care which path
        ran.  :meth:`detect` itself is unaffected either way.

    The checker is *incremental by contract*: :meth:`detect` returns
    only inconsistencies that involve the newly added context, which is
    exactly the delta a resolution strategy needs on a context addition
    change.

    Hosts that own a :class:`~repro.middleware.pool.ContextPool` call
    :meth:`attach_pool` once; the checker then maintains a persistent
    :class:`~repro.constraints.index.CandidateIndex` through pool
    listeners and stops rebuilding per-type extents on every detect.
    """

    def __init__(
        self,
        constraints: Iterable[Constraint] = (),
        registry: Optional[FunctionRegistry] = None,
        incremental: bool = True,
        kernels: bool = True,
        batch_kernels: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else standard_registry()
        self._constraints: Dict[str, Constraint] = {}
        self._relevant_types: Set[str] = set()
        self._routing: Dict[str, List[Constraint]] = {}
        self._engine = IncrementalEngine(
            self.registry,
            enabled=incremental,
            kernels=kernels,
            batch_kernels=batch_kernels,
        )
        self.batch_kernels = batch_kernels and kernels
        self.evaluator = Evaluator(self.registry, use_kernels=kernels)
        self._pool_index: Optional[CandidateIndex] = None
        # Cross-batch probe memo for detect_batch, stamped by
        # (registry version, pool-index generation); flushed whenever
        # either moves, i.e. on predicate replacement or pool mutation.
        self._probe_memo: Dict = {}
        self._probe_stamp = (-1, -1)
        #: Detection statistics, for the incremental-speed-up benchmark.
        self.detect_calls = 0
        #: Telemetry bundle (repro.obs); hosts swap in a live one.
        from ..obs.telemetry import NULL_TELEMETRY

        self.telemetry = NULL_TELEMETRY
        for constraint in constraints:
            self.add_constraint(constraint)

    @property
    def telemetry(self):
        return self._telemetry

    @telemetry.setter
    def telemetry(self, telemetry) -> None:
        # Pre-resolve the per-detect counters and the incremental-check
        # span so the hot path pays a plain ``inc`` / re-enter instead
        # of a registry lookup and span allocation per call.
        self._telemetry = telemetry
        self._check_span = telemetry.span_timer("check.incremental")
        self._batch_span = telemetry.span_timer("check.batch")
        if telemetry.enabled:
            self._detect_counter = telemetry.registry.counter(
                "checker_detect_calls_total",
                help="Incremental detect() invocations",
            )
            self._violations_counter = telemetry.registry.counter(
                "checker_violations_total",
                help="Inconsistencies the checker reported",
            )
            self._enumerated_counter = telemetry.registry.counter(
                "check_bindings_enumerated",
                help="Candidate bindings evaluated on the fast path",
            )
            self._pruned_counter = telemetry.registry.counter(
                "check_bindings_pruned",
                help="Candidate bindings skipped by equality-join indexes",
            )
            self._kernel_counter = telemetry.registry.counter(
                "check_kernel_hits",
                help="Constraint evaluations served by compiled kernels",
            )
            self._fallback_counter = telemetry.registry.counter(
                "check_interpreter_fallbacks",
                help="Constraint evaluations served by the AST interpreter",
            )
            self._batch_rows_counter = telemetry.registry.counter(
                "batch_kernel_rows_total",
                help="Contexts detected through the batched kernel path",
            )
            self._memo_hits_counter = telemetry.registry.counter(
                "subexpr_memo_hits_total",
                help="Shared-subexpression memo hits (probe + kernel caches)",
            )
            self._memo_misses_counter = telemetry.registry.counter(
                "subexpr_memo_misses_total",
                help="Shared-subexpression memo misses (probe + kernel caches)",
            )
        else:
            self._detect_counter = None
            self._violations_counter = None
            self._enumerated_counter = None
            self._pruned_counter = None
            self._kernel_counter = None
            self._fallback_counter = None
            self._batch_rows_counter = None
            self._memo_hits_counter = None
            self._memo_misses_counter = None

    # -- constraint management -------------------------------------------

    def add_constraint(self, constraint: Constraint) -> None:
        """Register a constraint; names must be unique.

        Registration also (re)builds the type -> constraints routing
        table, compiles the constraint's execution plan (kernel + join
        analysis), and -- when a pool is attached -- makes sure the
        persistent index covers the plan's join fields.
        """
        if constraint.name in self._constraints:
            raise ValueError(f"constraint {constraint.name!r} already added")
        self._constraints[constraint.name] = constraint
        self._relevant_types |= constraint.relevant_types()
        self._rebuild_routing()
        plan = self._engine.plan_for(constraint)
        if self._pool_index is not None:
            for field in plan.join_fields():
                self._pool_index.ensure_field(field)

    def _rebuild_routing(self) -> None:
        # detect() historically scanned sorted(self._constraints) and
        # skipped irrelevant types; the routing table is that same scan
        # precomputed per type (a unit test pins the equivalence).
        routing: Dict[str, List[Constraint]] = {}
        for name in sorted(self._constraints):
            constraint = self._constraints[name]
            for ctx_type in constraint.relevant_types():
                routing.setdefault(ctx_type, []).append(constraint)
        self._routing = routing

    def constraints_for_type(self, ctx_type: str) -> List[Constraint]:
        """Constraints quantifying over ``ctx_type``, in name order."""
        return list(self._routing.get(ctx_type, ()))

    def constraints(self) -> List[Constraint]:
        return [self._constraints[name] for name in sorted(self._constraints)]

    def constraint(self, name: str) -> Constraint:
        return self._constraints[name]

    # -- pool attachment ---------------------------------------------------

    def attach_pool(self, pool) -> None:
        """Maintain a persistent candidate index over ``pool``.

        Seeds the index from the pool's current contents and registers
        it as a pool listener, so additions, discards and expiry keep
        it consistent.  ``detect`` uses the persistent index whenever
        the checking scope it is handed equals the pool contents (the
        common case); strategies that exclude contexts from checking
        fall back to a per-call scope index transparently.
        """
        fields: Set[str] = set()
        for constraint in self._constraints.values():
            fields.update(self._engine.plan_for(constraint).join_fields())
        index = CandidateIndex(fields=sorted(fields))
        index.rebuild(pool)
        pool.add_listener(index)
        self._pool_index = index

    @property
    def pool_index(self) -> Optional[CandidateIndex]:
        """The attached persistent index, if any (diagnostics/tests)."""
        return self._pool_index

    # -- InconsistencyDetector interface -------------------------------------

    def is_relevant(self, ctx: Context) -> bool:
        """Whether any constraint quantifies over ``ctx``'s type."""
        return ctx.ctx_type in self._relevant_types

    def detect(
        self, ctx: Context, existing: Sequence[Context], now: float
    ) -> List[Inconsistency]:
        """Inconsistencies that adding ``ctx`` introduces.

        Each distinct (constraint, violating context set) pair yields
        one :class:`Inconsistency`; only violations involving ``ctx``
        are returned.
        """
        self.detect_calls += 1
        self.registry.now = now
        constraints = self._routing.get(ctx.ctx_type, ())
        # The persistent index is usable iff the scope we were handed
        # is exactly the pool: the scope is always an order-preserving
        # filter of the pool contents, so equal sizes imply equal
        # lists.  Strategies that exclude contexts from checking get a
        # per-call scope index instead (built once, shared across
        # constraints -- never per constraint).
        index = self._pool_index
        if index is not None and index.size == len(existing):
            view = index
        else:
            view = EphemeralScopeIndex(existing)

        dom_cache: Dict[str, List[Context]] = {}

        def domain(ctx_type: str) -> Sequence[Context]:
            # The *extended* scope (existing plus ctx), memoized per
            # type for the duration of this detect call.
            extent = dom_cache.get(ctx_type)
            if extent is None:
                extent = list(view.extent(ctx_type))
                if ctx_type == ctx.ctx_type:
                    extent.append(ctx)
                dom_cache[ctx_type] = extent
            return extent

        engine = self._engine
        enumerated = engine.bindings_enumerated
        pruned = engine.bindings_pruned
        kernel_hits = engine.kernel_hits
        fallbacks = engine.interpreter_fallbacks

        inconsistencies: List[Inconsistency] = []
        with self._check_span:
            for constraint in constraints:
                for contexts in engine.new_violations(
                    constraint, ctx, existing, domain, view=view
                ):
                    inconsistencies.append(
                        Inconsistency(
                            contexts=frozenset(contexts),
                            constraint=constraint.name,
                            detected_at=now,
                        )
                    )
        if self._detect_counter is not None:
            self._detect_counter.inc()
            if inconsistencies:
                self._violations_counter.inc(len(inconsistencies))
            delta = engine.bindings_enumerated - enumerated
            if delta:
                self._enumerated_counter.inc(delta)
            delta = engine.bindings_pruned - pruned
            if delta:
                self._pruned_counter.inc(delta)
            delta = engine.kernel_hits - kernel_hits
            if delta:
                self._kernel_counter.inc(delta)
            delta = engine.interpreter_fallbacks - fallbacks
            if delta:
                self._fallback_counter.inc(delta)
        return inconsistencies

    def detect_batch(
        self,
        batch: Sequence[Context],
        existing: Sequence[Context],
        now: Union[float, Sequence[float]],
    ) -> List[List[Inconsistency]]:
        """Per-context verdicts for a whole batch, in arrival order.

        Semantically this is nothing but the sequential sweep: row
        ``k`` is checked exactly as :meth:`detect` would check it
        against ``existing`` *plus the earlier batch rows*, both
        filtered to contexts still alive at the row's clock
        (``expiry > now_k`` -- the same condition the runtime's expiry
        sweep removes on, so mid-batch expiry is honoured without the
        caller re-sweeping).  ``now`` is one clock for the whole batch
        or one per row (nondecreasing in practice; not required).
        Verdict lists come back in batch order; rows no constraint
        quantifies over get ``[]`` without touching the engine, the
        same rows the resolution service never calls :meth:`detect`
        for.

        What batching buys -- with ``batch_kernels`` enabled -- is the
        cost model, not the answer: candidate-index probes are made
        once per distinct (type, field, value) group per batch instead
        of once per row (memoized across batches until the registry
        version or pool generation moves), and each constraint's
        cross product is swept by one vectorized batch-kernel call
        instead of one Python call per binding.  With the flag off the
        method literally runs the sequential emulation, so results can
        never depend on it.
        """
        if not batch:
            return []
        if isinstance(now, (int, float)):
            nows: List[float] = [float(now)] * len(batch)
        else:
            nows = [float(value) for value in now]
            if len(nows) != len(batch):
                raise ValueError(
                    f"got {len(nows)} clocks for {len(batch)} contexts"
                )
        if not self.batch_kernels:
            return self._detect_batch_sequential(batch, existing, nows)

        index = self._pool_index
        if index is not None and index.size == len(existing):
            # Persistent pool index: the probe memo survives across
            # batches as long as neither the registry nor the pool
            # moved (their versions are the stamp).
            stamp = (self.registry.version, index.generation)
            if stamp != self._probe_stamp:
                self._probe_memo.clear()
                self._probe_stamp = stamp
            overlay = BatchOverlayView(index, self._probe_memo)
        else:
            overlay = BatchOverlayView(EphemeralScopeIndex(existing), {})

        engine = self._engine
        registry = self.registry
        routing = self._routing
        enumerated = engine.bindings_enumerated
        pruned = engine.bindings_pruned
        kernel_hits = engine.kernel_hits
        fallbacks = engine.interpreter_fallbacks
        plan_hits = engine.subexpr_memo_hits
        plan_misses = engine.subexpr_memo_misses

        results: List[List[Inconsistency]] = []
        relevant_rows = 0
        total_violations = 0
        # One domain closure for the whole batch; the current row sits
        # in a cell and the per-row cache is cleared between rows
        # (hoisting the per-context closure + dict allocation the
        # sequential path pays on every detect call).
        row_cell: List[Optional[Context]] = [None]
        dom_cache: Dict[str, List[Context]] = {}

        def domain(ctx_type: str) -> Sequence[Context]:
            extent = dom_cache.get(ctx_type)
            if extent is None:
                extent = list(overlay.extent(ctx_type))
                row = row_cell[0]
                if row is not None and ctx_type == row.ctx_type:
                    extent.append(row)
                dom_cache[ctx_type] = extent
            return extent

        # Fusion units per type, resolved once per batch: constraints
        # sharing a quantified type sequence and join structure run as
        # one fused pool sweep (see ``IncrementalEngine.fusion_plan``);
        # verdicts are re-emitted below in routing order, so fusion is
        # invisible in the results.
        unit_cache: Dict[str, List] = {}

        with self._batch_span:
            for ctx, row_now in zip(batch, nows, strict=True):
                constraints = routing.get(ctx.ctx_type, ())
                if not constraints:
                    results.append([])
                    overlay.append(ctx)
                    continue
                relevant_rows += 1
                self.detect_calls += 1
                registry.now = row_now
                overlay.set_cutoff(row_now)
                row_cell[0] = ctx
                if dom_cache:
                    dom_cache.clear()
                units = unit_cache.get(ctx.ctx_type)
                if units is None:
                    units = engine.fusion_plan(constraints)
                    unit_cache[ctx.ctx_type] = units
                found: Dict[str, List] = {}
                for unit in units:
                    if isinstance(unit, GroupPlan):
                        fused = engine.new_violations_group(
                            unit, ctx, existing, domain, view=overlay
                        )
                        for name, vios in zip(
                            unit.names, fused, strict=True
                        ):
                            found[name] = vios
                    else:
                        found[unit.name] = engine.new_violations(
                            unit,
                            ctx,
                            existing,
                            domain,
                            view=overlay,
                            batched=True,
                        )
                inconsistencies: List[Inconsistency] = []
                for constraint in constraints:
                    for contexts in found[constraint.name]:
                        inconsistencies.append(
                            Inconsistency(
                                contexts=frozenset(contexts),
                                constraint=constraint.name,
                                detected_at=row_now,
                            )
                        )
                total_violations += len(inconsistencies)
                results.append(inconsistencies)
                overlay.append(ctx)

        if self._detect_counter is not None:
            if relevant_rows:
                self._detect_counter.inc(relevant_rows)
            if total_violations:
                self._violations_counter.inc(total_violations)
            delta = engine.bindings_enumerated - enumerated
            if delta:
                self._enumerated_counter.inc(delta)
            delta = engine.bindings_pruned - pruned
            if delta:
                self._pruned_counter.inc(delta)
            delta = engine.kernel_hits - kernel_hits
            if delta:
                self._kernel_counter.inc(delta)
            delta = engine.interpreter_fallbacks - fallbacks
            if delta:
                self._fallback_counter.inc(delta)
            self._batch_rows_counter.inc(len(batch))
            hits = overlay.memo_hits + engine.subexpr_memo_hits - plan_hits
            if hits:
                self._memo_hits_counter.inc(hits)
            misses = (
                overlay.memo_misses + engine.subexpr_memo_misses - plan_misses
            )
            if misses:
                self._memo_misses_counter.inc(misses)
        return results

    def _detect_batch_sequential(
        self,
        batch: Sequence[Context],
        existing: Sequence[Context],
        nows: Sequence[float],
    ) -> List[List[Inconsistency]]:
        """The reference semantics of :meth:`detect_batch`, one
        :meth:`detect` per row over the explicitly materialised scope
        (earlier rows appended, per-row expiry filter applied)."""
        results: List[List[Inconsistency]] = []
        admitted = list(existing)
        # Our materialised scopes are NOT pool filters (batch rows are
        # appended), so detect()'s size-equality shortcut onto the
        # persistent pool index must not fire -- park the index and
        # let every row build an ephemeral scope view.
        saved = self._pool_index
        self._pool_index = None
        try:
            for ctx, row_now in zip(batch, nows, strict=True):
                if ctx.ctx_type in self._relevant_types:
                    scope = [c for c in admitted if c.expiry > row_now]
                    results.append(self.detect(ctx, scope, row_now))
                else:
                    results.append([])
                admitted.append(ctx)
        finally:
            self._pool_index = saved
        return results

    def forget(self, ctx: Context) -> None:
        """The checker keeps no per-context caches; nothing to drop.

        Present to satisfy the detector protocol: the incremental
        engine evaluates only fresh bindings, so discarded contexts
        simply never appear in future scopes.  (The persistent
        candidate index is maintained through *pool* listeners, not
        through this hook: a forgotten context leaves the index when
        the owning pool actually removes it.)
        """

    # -- diagnostics --------------------------------------------------------

    def check_all(
        self, contexts: Optional[Sequence[Context]] = None, now: float = 0.0
    ) -> List[Inconsistency]:
        """Full (non-incremental) check of a whole pool, for tests and
        for the scenario walkthroughs: every current violation of every
        constraint, not only those involving a particular context.

        With ``contexts=None`` the attached pool's persistent index
        supplies the extents directly -- no per-call ``by_type``
        rebuild."""
        self.registry.now = now
        if contexts is None:
            if self._pool_index is None:
                raise ValueError(
                    "check_all() without contexts requires an attached pool"
                )
            view = self._pool_index
            pool_size = view.size

            def domain(ctx_type: str) -> Sequence[Context]:
                return view.extent(ctx_type)

        else:
            pool_size = len(contexts)
            by_type: Dict[str, List[Context]] = {}
            for context in contexts:
                by_type.setdefault(context.ctx_type, []).append(context)

            def domain(ctx_type: str) -> Sequence[Context]:
                return by_type.get(ctx_type, ())

        out: List[Inconsistency] = []
        with self.telemetry.span("check.full", pool=pool_size):
            for name in sorted(self._constraints):
                constraint = self._constraints[name]
                for contexts_set in self.evaluator.violations(constraint, domain):
                    out.append(
                        Inconsistency(
                            contexts=frozenset(contexts_set),
                            constraint=constraint.name,
                            detected_at=now,
                        )
                    )
        return out
