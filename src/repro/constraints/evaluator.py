"""Full (non-incremental) evaluation of constraint formulas with links.

The evaluator computes, for each formula, a truth value plus the
*satisfaction links* and *violation links* that explain it, following
the link-generation semantics of [16]/[17] (after xlinkit [11]):

* a true predicate yields one satisfaction link over its bound
  contexts; a false one yields one violation link;
* ``not`` swaps the two link sets;
* ``and``: violation links are the union of the conjuncts' violation
  links; satisfaction links are the cross-join (every way of
  satisfying both);
* ``or`` is dual; ``implies`` desugars to ``(not left) or right``;
* ``forall v in T``: each element of the domain that falsifies the
  body contributes violation links extended with ``v``'s binding; a
  satisfied universal yields one empty satisfaction link (per-element
  satisfaction products would explode combinatorially and are never
  needed to *explain a violation*, which is what inconsistency
  detection consumes);
* ``exists v in T``: each witness contributes satisfaction links; a
  violated existential yields one *empty* violation link -- the
  violation is attributable to the enclosing bindings (nothing in the
  domain supports them), not to every domain element.  E.g. a checkout
  read with no earlier shelf read yields the inconsistency {read}, not
  one inconsistency per unrelated read in the pool.

The top-level violation links of a constraint are the paper's context
inconsistencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.context import Context
from .ast import (
    And,
    Constraint,
    Existential,
    Formula,
    Implies,
    Literal,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
)
from .builtins import FunctionRegistry
from .compile import CompiledKernel, compile_kernel
from .links import EMPTY_LINK, Link, LinkSet, cross_join

__all__ = ["EvalResult", "Evaluator", "Domain"]

#: A domain provider: maps a context type to its current extent.
Domain = Callable[[str], Sequence[Context]]


@dataclass(frozen=True)
class EvalResult:
    """Truth value plus explanatory links."""

    value: bool
    sat_links: LinkSet
    vio_links: LinkSet

    def negate(self) -> "EvalResult":
        return EvalResult(not self.value, self.vio_links, self.sat_links)


_TRUE = EvalResult(True, frozenset({EMPTY_LINK}), frozenset())
_FALSE = EvalResult(False, frozenset(), frozenset({EMPTY_LINK}))


class Evaluator:
    """Evaluates formulas over a context domain with link generation.

    Parameters
    ----------
    registry:
        Predicate function registry.
    max_links:
        Safety cap on the size of any link set produced by a cross
        join; prevents pathological formulas from exploding.  The cap
        is generous (default 4096) and never binds in the paper's
        workloads.
    use_kernels:
        When true (the default), :meth:`truth` dispatches to compiled
        kernels (:mod:`repro.constraints.compile`) for in-fragment
        formulas; out-of-fragment formulas -- and all link generation
        -- use the interpreter below regardless.
    """

    def __init__(
        self,
        registry: FunctionRegistry,
        max_links: int = 4096,
        use_kernels: bool = True,
    ) -> None:
        self._registry = registry
        self._max_links = max_links
        self._use_kernels = use_kernels
        self._kernel_cache: Dict[Formula, Optional[CompiledKernel]] = {}
        self._kernel_version = -1

    # -- public API -----------------------------------------------------------

    def evaluate(
        self,
        formula: Formula,
        domain: Domain,
        env: Optional[Mapping[str, Context]] = None,
    ) -> EvalResult:
        """Evaluate ``formula`` with variables bound per ``env``."""
        return self._eval(formula, domain, dict(env) if env else {})

    def truth(
        self,
        formula: Formula,
        domain: Domain,
        env: Optional[Mapping[str, Context]] = None,
    ) -> bool:
        """Truth value only, skipping all link generation.

        Much cheaper than :meth:`evaluate`; detection hot paths check
        truth first and generate links only for actual violations.
        """
        if self._use_kernels:
            kernel = self.kernel_for(formula)
            if kernel is not None:
                bound = env or {}
                return kernel.fn(
                    *[bound[name] for name in kernel.var_names], domain
                )
        return self._truth(formula, domain, dict(env) if env else {})

    def kernel_for(self, formula: Formula) -> Optional[CompiledKernel]:
        """The cached compiled kernel for ``formula``, if compilable.

        Kernel parameters follow ``sorted(formula.free_variables())``.
        Returns ``None`` for out-of-fragment formulas, for unhashable
        ones (a :class:`Literal` holding e.g. a list defeats the
        cache), and always when kernels are disabled.  The cache is
        flushed whenever the registry version moves, so replaced
        predicates -- and late registrations that bring a formula into
        the fragment -- take effect.
        """
        if not self._use_kernels or not isinstance(formula, Formula):
            # Non-Formula garbage falls through to the interpreter,
            # which raises the canonical "cannot evaluate" TypeError.
            return None
        if self._kernel_version != self._registry.version:
            self._kernel_cache.clear()
            self._kernel_version = self._registry.version
        try:
            return self._kernel_cache[formula]
        except KeyError:
            pass
        except TypeError:
            return None
        names = tuple(sorted(formula.free_variables()))
        kernel = compile_kernel(formula, names, self._registry)
        self._kernel_cache[formula] = kernel
        return kernel

    def _truth(
        self, formula: Formula, domain: Domain, env: Dict[str, Context]
    ) -> bool:
        if isinstance(formula, Predicate):
            fn = self._registry.resolve(formula.func)
            args = [
                env[a.name] if isinstance(a, Var) else a.value
                for a in formula.args
            ]
            return bool(fn(*args))
        if isinstance(formula, Not):
            return not self._truth(formula.operand, domain, env)
        if isinstance(formula, And):
            return self._truth(formula.left, domain, env) and self._truth(
                formula.right, domain, env
            )
        if isinstance(formula, Or):
            return self._truth(formula.left, domain, env) or self._truth(
                formula.right, domain, env
            )
        if isinstance(formula, Implies):
            return not self._truth(formula.left, domain, env) or self._truth(
                formula.right, domain, env
            )
        if isinstance(formula, Universal):
            for element in domain(formula.ctx_type):
                env[formula.var] = element
                if not self._truth(formula.body, domain, env):
                    env.pop(formula.var, None)
                    return False
            env.pop(formula.var, None)
            return True
        if isinstance(formula, Existential):
            for element in domain(formula.ctx_type):
                env[formula.var] = element
                if self._truth(formula.body, domain, env):
                    env.pop(formula.var, None)
                    return True
            env.pop(formula.var, None)
            return False
        raise TypeError(f"cannot evaluate formula node {formula!r}")

    def check(self, constraint: Constraint, domain: Domain) -> EvalResult:
        """Evaluate a closed constraint over the domain."""
        return self._eval(constraint.formula, domain, {})

    def violations(
        self, constraint: Constraint, domain: Domain
    ) -> List[FrozenSet[Context]]:
        """The distinct context sets violating the constraint now.

        Empty links (violations not attributable to specific contexts,
        e.g. a failed ``exists`` over an empty domain) are skipped: an
        inconsistency must involve at least one context.
        """
        if self.truth(constraint.formula, domain):
            return []
        result = self.check(constraint, domain)
        if result.value:
            return []
        seen = set()
        out: List[FrozenSet[Context]] = []
        for link in result.vio_links:
            contexts = link.contexts()
            if contexts and contexts not in seen:
                seen.add(contexts)
                out.append(contexts)
        return out

    # -- recursive evaluation --------------------------------------------------

    def _eval(
        self, formula: Formula, domain: Domain, env: Dict[str, Context]
    ) -> EvalResult:
        if isinstance(formula, Predicate):
            return self._eval_predicate(formula, env)
        if isinstance(formula, Not):
            return self._eval(formula.operand, domain, env).negate()
        if isinstance(formula, And):
            return self._eval_and(formula, domain, env)
        if isinstance(formula, Or):
            return self._eval_or(formula, domain, env)
        if isinstance(formula, Implies):
            desugared = Or(Not(formula.left), formula.right)
            return self._eval(desugared, domain, env)
        if isinstance(formula, Universal):
            return self._eval_universal(formula, domain, env)
        if isinstance(formula, Existential):
            return self._eval_existential(formula, domain, env)
        raise TypeError(f"cannot evaluate formula node {formula!r}")

    def _eval_predicate(
        self, formula: Predicate, env: Mapping[str, Context]
    ) -> EvalResult:
        fn = self._registry.resolve(formula.func)
        args = []
        bindings: List[Tuple[str, Context]] = []
        for term in formula.args:
            if isinstance(term, Var):
                try:
                    ctx = env[term.name]
                except KeyError:
                    raise NameError(
                        f"unbound variable {term.name!r} in predicate "
                        f"{formula.func!r}"
                    ) from None
                args.append(ctx)
                bindings.append((term.name, ctx))
            else:
                args.append(term.value)
        value = bool(fn(*args))
        link = Link(frozenset(bindings))
        if value:
            return EvalResult(True, frozenset({link}), frozenset())
        return EvalResult(False, frozenset(), frozenset({link}))

    def _eval_and(
        self, formula: And, domain: Domain, env: Dict[str, Context]
    ) -> EvalResult:
        left = self._eval(formula.left, domain, env)
        right = self._eval(formula.right, domain, env)
        value = left.value and right.value
        if value:
            sat = self._capped(cross_join(left.sat_links, right.sat_links))
            return EvalResult(True, sat, frozenset())
        # Violation explained by whichever conjunct(s) failed.
        vio = frozenset()
        if not left.value:
            vio |= left.vio_links
        if not right.value:
            vio |= right.vio_links
        return EvalResult(False, frozenset(), self._capped(vio))

    def _eval_or(
        self, formula: Or, domain: Domain, env: Dict[str, Context]
    ) -> EvalResult:
        left = self._eval(formula.left, domain, env)
        right = self._eval(formula.right, domain, env)
        value = left.value or right.value
        if not value:
            vio = self._capped(cross_join(left.vio_links, right.vio_links))
            return EvalResult(False, frozenset(), vio)
        sat = frozenset()
        if left.value:
            sat |= left.sat_links
        if right.value:
            sat |= right.sat_links
        return EvalResult(True, self._capped(sat), frozenset())

    def _eval_universal(
        self, formula: Universal, domain: Domain, env: Dict[str, Context]
    ) -> EvalResult:
        extent = domain(formula.ctx_type)
        vio: set = set()
        all_true = True
        for element in extent:
            env[formula.var] = element
            sub = self._eval(formula.body, domain, env)
            if not sub.value:
                all_true = False
                for link in sub.vio_links:
                    vio.add(link.extend(formula.var, element))
        env.pop(formula.var, None)
        if all_true:
            return _TRUE
        return EvalResult(False, frozenset(), self._capped(frozenset(vio)))

    def _eval_existential(
        self, formula: Existential, domain: Domain, env: Dict[str, Context]
    ) -> EvalResult:
        extent = domain(formula.ctx_type)
        sat: set = set()
        any_true = False
        for element in extent:
            env[formula.var] = element
            sub = self._eval(formula.body, domain, env)
            if sub.value:
                any_true = True
                for link in sub.sat_links:
                    sat.add(link.extend(formula.var, element))
        env.pop(formula.var, None)
        if any_true:
            return EvalResult(True, self._capped(frozenset(sat)), frozenset())
        # Violated: no element supports the enclosing bindings; the
        # explanation is the (empty) link -- outer connectives supply
        # the culpable bindings.
        return _FALSE

    def _capped(self, links: LinkSet) -> LinkSet:
        if len(links) <= self._max_links:
            return links
        # Deterministic truncation: keep the smallest links (they make
        # the most precise inconsistencies).
        kept = sorted(links, key=lambda l: (len(l), repr(l)))[: self._max_links]
        return frozenset(kept)
